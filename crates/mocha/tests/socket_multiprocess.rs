//! End-to-end test of the socket runtime across OS process boundaries.
//!
//! Spawns real `mochad` daemons on ephemeral loopback ports — one home
//! (coordinator) process and two worker processes — and drives a full
//! acquire → transfer → release workload over real UDP. Entry consistency
//! is asserted at the end: 2 workers × 10 increments under the lock must
//! leave the shared counter at exactly 20, observed by the home process
//! (which received every release's UR=3 dissemination push).
//!
//! Skips gracefully (passing) when the environment provides no loopback
//! sockets.

use std::io::{BufRead, BufReader, Write};
use std::net::UdpSocket;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::{channel, Receiver};
use std::time::Duration;

const LINE_TIMEOUT: Duration = Duration::from_secs(60);

/// A child daemon with its stdout turned into a line channel.
struct Daemon {
    child: Child,
    lines: Receiver<String>,
}

impl Daemon {
    fn spawn(hostfile: &std::path::Path, site: u32, workload: &str) -> Daemon {
        Daemon::spawn_with_store(hostfile, site, workload, None)
    }

    fn spawn_with_store(
        hostfile: &std::path::Path,
        site: u32,
        workload: &str,
        store_dir: Option<&std::path::Path>,
    ) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_mochad"));
        cmd.arg("--hostfile")
            .arg(hostfile)
            .arg("--site")
            .arg(site.to_string())
            .arg("--ur")
            .arg("3")
            .arg("--workload")
            .arg(workload);
        if let Some(dir) = store_dir {
            cmd.arg("--store-dir").arg(dir);
        }
        let mut child = cmd
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn mochad");
        let stdout = child.stdout.take().expect("piped stdout");
        let (tx, lines) = channel();
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if tx.send(line).is_err() {
                    break;
                }
            }
        });
        Daemon { child, lines }
    }

    /// Next stdout line starting with `prefix`, panicking on timeout.
    fn expect_line(&self, prefix: &str) -> String {
        let deadline = std::time::Instant::now() + LINE_TIMEOUT;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            match self.lines.recv_timeout(remaining) {
                Ok(line) if line.starts_with(prefix) => return line,
                Ok(_other) => continue,
                Err(_) => panic!("timed out waiting for a {prefix:?} line from mochad"),
            }
        }
    }

    fn wait_success(mut self) -> Vec<String> {
        let status = self.child.wait().expect("wait mochad");
        assert!(status.success(), "mochad exited with {status}");
        self.lines.iter().collect()
    }
}

/// Reserves `n` distinct loopback UDP ports. The sockets are dropped just
/// before the daemons bind, so a clash is possible but vanishingly rare.
fn reserve_ports(n: usize) -> Option<Vec<u16>> {
    let mut holds = Vec::new();
    for _ in 0..n {
        let sock = UdpSocket::bind("127.0.0.1:0").ok()?;
        holds.push(sock);
    }
    Some(
        holds
            .iter()
            .map(|s| s.local_addr().expect("local addr").port())
            .collect(),
    )
}

#[test]
fn two_workers_increment_across_processes() {
    let Some(ports) = reserve_ports(3) else {
        eprintln!("skipping: no loopback sockets in this environment");
        return;
    };
    let dir = std::env::temp_dir().join(format!("mocha-mp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let hostfile = dir.join("hosts.txt");
    let contents: String = ports
        .iter()
        .enumerate()
        .map(|(i, p)| format!("site{i}=127.0.0.1:{p}\n"))
        .collect();
    std::fs::write(&hostfile, contents).expect("write hostfile");

    // Home first: its READY gates the workers so the coordinator's socket
    // is live before acquires start (MochaNet would retry through the
    // skew regardless; this keeps the test quiet and fast).
    let mut home = Daemon::spawn(&hostfile, 0, "serve");
    home.expect_line("READY");

    let worker_a = Daemon::spawn(&hostfile, 1, "incr:10");
    let worker_b = Daemon::spawn(&hostfile, 2, "incr:10");

    let final_a = worker_a.expect_line("FINAL ");
    let final_b = worker_b.expect_line("FINAL ");
    let out_a = worker_a.wait_success();
    let out_b = worker_b.wait_success();
    assert!(out_a.iter().any(|l| l.starts_with("METRICS ")));
    assert!(out_b.iter().any(|l| l.starts_with("METRICS ")));

    // Each worker's last read (under the lock) saw at least its own 10
    // increments and never more than the global total.
    for line in [&final_a, &final_b] {
        let n: i64 = line["FINAL ".len()..].trim().parse().expect("FINAL value");
        assert!((10..=20).contains(&n), "implausible FINAL: {line}");
    }

    // Entry consistency across processes: the home acquires the lock and
    // must observe every increment from both (now exited) workers.
    let stdin = home.child.stdin.as_mut().expect("piped stdin");
    stdin.write_all(b"read\n").expect("request read");
    stdin.flush().expect("flush");
    let value = home.expect_line("VALUE ");
    assert_eq!(value.trim(), "VALUE 20", "lost or duplicated increments");

    // EOF on stdin shuts the home down; it must report metrics on exit.
    drop(home.child.stdin.take());
    let out_home = home.wait_success();
    assert!(out_home.iter().any(|l| l.starts_with("METRICS ")));

    let _ = std::fs::remove_dir_all(&dir);
}

/// A durable `mochad` is SIGKILLed mid-life and restarted from the same
/// `--store-dir`: the new process must report that it replayed its
/// journal (`RECOVERED 1`, not a fresh boot's `RECOVERED 0`) and must
/// still serve the value it had durably applied before the kill.
#[test]
fn killed_durable_daemon_recovers_from_its_journal() {
    let Some(ports) = reserve_ports(3) else {
        eprintln!("skipping: no loopback sockets in this environment");
        return;
    };
    let dir = std::env::temp_dir().join(format!("mocha-kill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let store_dir = dir.join("store");
    let hostfile = dir.join("hosts.txt");
    let contents: String = ports
        .iter()
        .enumerate()
        .map(|(i, p)| format!("site{i}=127.0.0.1:{p}\n"))
        .collect();
    std::fs::write(&hostfile, contents).expect("write hostfile");

    let mut home = Daemon::spawn(&hostfile, 0, "serve");
    home.expect_line("READY");

    // The durable worker sits in serve mode, applying the writer's UR=3
    // dissemination pushes into its write-ahead log as they arrive.
    let mut worker = Daemon::spawn_with_store(&hostfile, 2, "serve", Some(&store_dir));
    assert_eq!(
        worker.expect_line("RECOVERED ").trim(),
        "RECOVERED 0",
        "first boot starts from an empty store"
    );
    worker.expect_line("READY");

    let writer = Daemon::spawn(&hostfile, 1, "incr:5");
    assert_eq!(writer.expect_line("FINAL ").trim(), "FINAL 5");
    writer.wait_success();

    // Force the worker through a lock acquire so every push it was sent
    // is applied (and journaled) before the kill.
    let stdin = worker.child.stdin.as_mut().expect("piped stdin");
    stdin.write_all(b"read\n").expect("request read");
    stdin.flush().expect("flush");
    assert_eq!(worker.expect_line("VALUE ").trim(), "VALUE 5");

    // Crash, not shutdown: SIGKILL gives the process no chance to flush
    // anything it had not already made durable.
    worker.child.kill().expect("kill worker");
    let _ = worker.child.wait();

    // Same site, same store: the restarted daemon replays snapshot + WAL,
    // announces its recovered version, and rejoins.
    let mut worker = Daemon::spawn_with_store(&hostfile, 2, "serve", Some(&store_dir));
    assert_eq!(
        worker.expect_line("RECOVERED ").trim(),
        "RECOVERED 1",
        "restart must come back from the journal"
    );
    worker.expect_line("READY");
    let stdin = worker.child.stdin.as_mut().expect("piped stdin");
    stdin.write_all(b"read\n").expect("request read");
    stdin.flush().expect("flush");
    assert_eq!(
        worker.expect_line("VALUE ").trim(),
        "VALUE 5",
        "recovered state must serve the pre-kill value"
    );

    drop(worker.child.stdin.take());
    worker.wait_success();
    drop(home.child.stdin.take());
    home.wait_success();

    let _ = std::fs::remove_dir_all(&dir);
}
