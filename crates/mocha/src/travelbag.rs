//! The Mocha "travel bag": `Parameter` and `Result` objects.
//!
//! The paper's `Mocha` object hands each remotely evaluated thread "a
//! Parameter object from which the remotely evaluated task may retrieve the
//! initial execution parameters" and "a Result object in which the task may
//! place results" (§2). Both are string-keyed bags of primitive values,
//! serialized for the trip across the network.

use std::collections::BTreeMap;
use std::fmt;

use mocha_wire::io::{ByteReader, ByteWriter, WireError};

use crate::error::MochaError;

/// A value stored in a travel bag.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A 32-bit integer (`p.add("param1", 5)`).
    I32(i32),
    /// A 64-bit integer.
    I64(i64),
    /// A double (`mocha.parameter.getdouble("start")`).
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
    /// Raw bytes (serialized objects).
    Bytes(Vec<u8>),
}

impl Value {
    /// The stored type's name, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::I32(_) => "i32",
            Value::I64(_) => "i64",
            Value::F64(_) => "f64",
            Value::Bool(_) => "bool",
            Value::Str(_) => "str",
            Value::Bytes(_) => "bytes",
        }
    }

    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Value::I32(v) => {
                w.put_u8(0);
                w.put_i32(*v);
            }
            Value::I64(v) => {
                w.put_u8(1);
                w.put_i64(*v);
            }
            Value::F64(v) => {
                w.put_u8(2);
                w.put_f64(*v);
            }
            Value::Bool(v) => {
                w.put_u8(3);
                w.put_bool(*v);
            }
            Value::Str(v) => {
                w.put_u8(4);
                w.put_str(v);
            }
            Value::Bytes(v) => {
                w.put_u8(5);
                w.put_bytes(v);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Value, WireError> {
        match r.get_u8()? {
            0 => Ok(Value::I32(r.get_i32()?)),
            1 => Ok(Value::I64(r.get_i64()?)),
            2 => Ok(Value::F64(r.get_f64()?)),
            3 => Ok(Value::Bool(r.get_bool()?)),
            4 => Ok(Value::Str(r.get_string()?)),
            5 => Ok(Value::Bytes(r.get_bytes()?.to_vec())),
            tag => Err(WireError::BadTag { what: "Value", tag }),
        }
    }
}

macro_rules! value_from {
    ($ty:ty, $variant:ident) => {
        impl From<$ty> for Value {
            fn from(v: $ty) -> Value {
                Value::$variant(v.into())
            }
        }
    };
}
value_from!(i32, I32);
value_from!(i64, I64);
value_from!(f64, F64);
value_from!(bool, Bool);
value_from!(String, Str);
value_from!(&str, Str);
value_from!(Vec<u8>, Bytes);

/// A string-keyed bag of values, used for both spawn parameters and task
/// results.
///
/// ```
/// use mocha::{TravelBag, Value};
///
/// let mut p = TravelBag::new();
/// p.add("param1", 5);
/// p.add("start", 2.5);
/// assert_eq!(p.get_i32("param1").unwrap(), 5);
/// assert_eq!(p.get_f64("start").unwrap(), 2.5);
///
/// let bytes = p.encode();
/// let q = TravelBag::decode(&bytes).unwrap();
/// assert_eq!(p, q);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TravelBag {
    entries: BTreeMap<String, Value>,
}

/// The paper's `Parameter` object.
pub type Parameter = TravelBag;

impl TravelBag {
    /// Creates an empty bag.
    pub fn new() -> TravelBag {
        TravelBag::default()
    }

    /// Adds (or replaces) a value. Accepts anything convertible to
    /// [`Value`], mirroring the paper's overloaded `add` methods.
    pub fn add(&mut self, key: impl Into<String>, value: impl Into<Value>) -> &mut Self {
        self.entries.insert(key.into(), value.into());
        self
    }

    /// Looks up a raw value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    fn typed<T>(
        &self,
        key: &str,
        requested: &'static str,
        extract: impl FnOnce(&Value) -> Option<T>,
    ) -> Result<T, MochaError> {
        let value = self
            .entries
            .get(key)
            .ok_or_else(|| MochaError::MissingParameter {
                key: key.to_string(),
            })?;
        extract(value).ok_or_else(|| MochaError::ParameterType {
            key: key.to_string(),
            requested,
            actual: value.type_name(),
        })
    }

    /// Retrieves an `i32` (the paper's `getint`).
    ///
    /// # Errors
    ///
    /// [`MochaError::MissingParameter`] if absent,
    /// [`MochaError::ParameterType`] if stored as a different type.
    pub fn get_i32(&self, key: &str) -> Result<i32, MochaError> {
        self.typed(key, "i32", |v| match v {
            Value::I32(x) => Some(*x),
            _ => None,
        })
    }

    /// Retrieves an `i64`.
    ///
    /// # Errors
    ///
    /// See [`get_i32`](Self::get_i32).
    pub fn get_i64(&self, key: &str) -> Result<i64, MochaError> {
        self.typed(key, "i64", |v| match v {
            Value::I64(x) => Some(*x),
            _ => None,
        })
    }

    /// Retrieves an `f64` (the paper's `getdouble`).
    ///
    /// # Errors
    ///
    /// See [`get_i32`](Self::get_i32).
    pub fn get_f64(&self, key: &str) -> Result<f64, MochaError> {
        self.typed(key, "f64", |v| match v {
            Value::F64(x) => Some(*x),
            _ => None,
        })
    }

    /// Retrieves a `bool`.
    ///
    /// # Errors
    ///
    /// See [`get_i32`](Self::get_i32).
    pub fn get_bool(&self, key: &str) -> Result<bool, MochaError> {
        self.typed(key, "bool", |v| match v {
            Value::Bool(x) => Some(*x),
            _ => None,
        })
    }

    /// Retrieves a string.
    ///
    /// # Errors
    ///
    /// See [`get_i32`](Self::get_i32).
    pub fn get_str(&self, key: &str) -> Result<&str, MochaError> {
        match self.get(key) {
            Some(Value::Str(x)) => Ok(x.as_str()),
            Some(other) => Err(MochaError::ParameterType {
                key: key.to_string(),
                requested: "str",
                actual: other.type_name(),
            }),
            None => Err(MochaError::MissingParameter {
                key: key.to_string(),
            }),
        }
    }

    /// Retrieves raw bytes.
    ///
    /// # Errors
    ///
    /// See [`get_i32`](Self::get_i32).
    pub fn get_bytes(&self, key: &str) -> Result<&[u8], MochaError> {
        match self.get(key) {
            Some(Value::Bytes(x)) => Ok(x.as_slice()),
            Some(other) => Err(MochaError::ParameterType {
                key: key.to_string(),
                requested: "bytes",
                actual: other.type_name(),
            }),
            None => Err(MochaError::MissingParameter {
                key: key.to_string(),
            }),
        }
    }

    /// Serializes the bag for the wire.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(self.entries.len() as u32);
        for (k, v) in &self.entries {
            w.put_str(k);
            v.encode(&mut w);
        }
        w.into_bytes()
    }

    /// Deserializes a bag.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<TravelBag, WireError> {
        let mut r = ByteReader::new(bytes);
        let n = r.get_u32()? as usize;
        if n.saturating_mul(6) > r.remaining() {
            return Err(WireError::LengthOverrun {
                declared: n * 6,
                remaining: r.remaining(),
            });
        }
        let mut entries = BTreeMap::new();
        for _ in 0..n {
            let k = r.get_string()?;
            let v = Value::decode(&mut r)?;
            entries.insert(k, v);
        }
        r.finish()?;
        Ok(TravelBag { entries })
    }
}

impl fmt::Display for TravelBag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v:?}")?;
        }
        write!(f, "}}")
    }
}

impl<'a> IntoIterator for &'a TravelBag {
    type Item = (&'a str, &'a Value);
    type IntoIter = Box<dyn Iterator<Item = (&'a str, &'a Value)> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl FromIterator<(String, Value)> for TravelBag {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        TravelBag {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_typed_get() {
        let mut bag = TravelBag::new();
        bag.add("i", 42)
            .add("l", 42i64)
            .add("d", 1.5)
            .add("b", true)
            .add("s", "hello")
            .add("raw", vec![1u8, 2]);
        assert_eq!(bag.get_i32("i").unwrap(), 42);
        assert_eq!(bag.get_i64("l").unwrap(), 42);
        assert_eq!(bag.get_f64("d").unwrap(), 1.5);
        assert!(bag.get_bool("b").unwrap());
        assert_eq!(bag.get_str("s").unwrap(), "hello");
        assert_eq!(bag.get_bytes("raw").unwrap(), &[1, 2]);
        assert_eq!(bag.len(), 6);
        assert!(!bag.is_empty());
    }

    #[test]
    fn missing_parameter_is_the_paper_exception() {
        let bag = TravelBag::new();
        assert_eq!(
            bag.get_f64("start"),
            Err(MochaError::MissingParameter {
                key: "start".into()
            })
        );
    }

    #[test]
    fn wrong_type_reports_both_types() {
        let mut bag = TravelBag::new();
        bag.add("x", 5);
        assert_eq!(
            bag.get_f64("x"),
            Err(MochaError::ParameterType {
                key: "x".into(),
                requested: "f64",
                actual: "i32",
            })
        );
    }

    #[test]
    fn encode_decode_roundtrips() {
        let mut bag = TravelBag::new();
        bag.add("param1", 5)
            .add("start", 0.0)
            .add("name", "Myhello");
        let bytes = bag.encode();
        assert_eq!(TravelBag::decode(&bytes).unwrap(), bag);
        // Empty bag too.
        let empty = TravelBag::new();
        assert_eq!(TravelBag::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(TravelBag::decode(&[9, 9, 9]).is_err());
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        assert!(matches!(
            TravelBag::decode(w.as_slice()),
            Err(WireError::LengthOverrun { .. })
        ));
    }

    #[test]
    fn replacement_overwrites() {
        let mut bag = TravelBag::new();
        bag.add("k", 1);
        bag.add("k", 2);
        assert_eq!(bag.get_i32("k").unwrap(), 2);
        assert_eq!(bag.len(), 1);
    }

    #[test]
    fn display_and_iteration_are_ordered() {
        let mut bag = TravelBag::new();
        bag.add("b", 2).add("a", 1);
        let keys: Vec<&str> = bag.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
        assert_eq!(bag.to_string(), "{a=I32(1), b=I32(2)}");
    }

    #[test]
    fn from_iterator_collects() {
        let bag: TravelBag = vec![("x".to_string(), Value::I32(1))].into_iter().collect();
        assert_eq!(bag.get_i32("x").unwrap(), 1);
    }
}
