//! Error types for the Mocha runtime.

use std::error::Error;
use std::fmt;

use mocha_wire::io::WireError;
use mocha_wire::{LockId, ReplicaId, SiteId};

/// Errors surfaced by Mocha's public API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MochaError {
    /// A travel-bag parameter was missing (the paper's
    /// `MochaParameterException`).
    MissingParameter {
        /// The requested key.
        key: String,
    },
    /// A travel-bag parameter existed but had a different type.
    ParameterType {
        /// The requested key.
        key: String,
        /// Type that was requested.
        requested: &'static str,
        /// Type actually stored.
        actual: &'static str,
    },
    /// A replica was accessed outside a `lock()`/`unlock()` region.
    NotLocked {
        /// The guarding lock.
        lock: LockId,
    },
    /// A replica id was not registered at this site.
    UnknownReplica {
        /// The unknown replica.
        replica: ReplicaId,
    },
    /// A lock id was never created/registered.
    UnknownLock {
        /// The unknown lock.
        lock: LockId,
    },
    /// The coordinator broke the caller's lock (lease expiry) while it was
    /// held; updates made under it may have been discarded.
    LockBroken {
        /// The broken lock.
        lock: LockId,
    },
    /// The site was blacklisted by the coordinator after a detected
    /// failure and may no longer make requests.
    Blacklisted {
        /// This site.
        site: SiteId,
    },
    /// The home site / coordinator could not be reached.
    HomeUnreachable,
    /// A spawn request failed (unknown task class or remote error).
    SpawnFailed {
        /// The task class that failed to spawn.
        task_class: String,
        /// Human-readable reason.
        reason: String,
    },
    /// The runtime has shut down.
    Shutdown,
    /// A malformed message arrived where a well-formed one was required.
    Wire(WireError),
    /// Serialization of a complex shared object failed (the value contains
    /// something the pickle format cannot represent).
    ObjectEncode {
        /// The object's type name.
        type_name: String,
        /// Human-readable reason.
        reason: String,
    },
    /// Deserialization of a complex shared object failed.
    ObjectDecode {
        /// The object's advertised type name.
        type_name: String,
        /// Human-readable reason.
        reason: String,
    },
    /// An availability configuration was invalid (e.g. `UR` of zero).
    InvalidAvailability {
        /// The rejected value.
        ur: usize,
    },
}

impl fmt::Display for MochaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MochaError::MissingParameter { key } => {
                write!(f, "parameter {key:?} not present in travel bag")
            }
            MochaError::ParameterType {
                key,
                requested,
                actual,
            } => write!(
                f,
                "parameter {key:?} requested as {requested} but stored as {actual}"
            ),
            MochaError::NotLocked { lock } => {
                write!(f, "replica accessed without holding {lock}")
            }
            MochaError::UnknownReplica { replica } => {
                write!(f, "replica {replica} not registered at this site")
            }
            MochaError::UnknownLock { lock } => write!(f, "lock {lock} was never registered"),
            MochaError::LockBroken { lock } => {
                write!(f, "{lock} was broken by the coordinator while held")
            }
            MochaError::Blacklisted { site } => {
                write!(f, "{site} was blacklisted after a detected failure")
            }
            MochaError::HomeUnreachable => write!(f, "home site unreachable"),
            MochaError::SpawnFailed { task_class, reason } => {
                write!(f, "spawn of {task_class:?} failed: {reason}")
            }
            MochaError::Shutdown => write!(f, "runtime has shut down"),
            MochaError::Wire(e) => write!(f, "malformed message: {e}"),
            MochaError::ObjectEncode { type_name, reason } => {
                write!(f, "failed to encode shared object {type_name:?}: {reason}")
            }
            MochaError::ObjectDecode { type_name, reason } => {
                write!(f, "failed to decode shared object {type_name:?}: {reason}")
            }
            MochaError::InvalidAvailability { ur } => {
                write!(f, "invalid availability: UR must be at least 1, got {ur}")
            }
        }
    }
}

impl Error for MochaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MochaError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for MochaError {
    fn from(e: WireError) -> Self {
        MochaError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = MochaError::MissingParameter {
            key: "start".into(),
        };
        assert!(e.to_string().contains("start"));
        let e = MochaError::LockBroken { lock: LockId(3) };
        assert!(e.to_string().contains("lock3"));
        let e = MochaError::ObjectEncode {
            type_name: "Catalog".into(),
            reason: "unrepresentable map key".into(),
        };
        assert!(e.to_string().contains("encode"));
        assert!(e.to_string().contains("Catalog"));
    }

    #[test]
    fn wire_errors_convert_and_chain() {
        let w = WireError::BadUtf8;
        let e: MochaError = w.clone().into();
        assert_eq!(e, MochaError::Wire(w));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MochaError>();
    }
}
