//! Runtime configuration.

use std::time::Duration;

use mocha_net::NetConfig;
use mocha_wire::codec::CodecKind;

/// Availability configuration for a `ReplicaLock` (paper §4).
///
/// `R` (how many sites hold copies) is implicit in registration; this
/// struct configures `UR`, "the number of up-to-date copies of the shared
/// object". With `ur == 1` only the producing site holds the current value;
/// with `ur == k` the releasing daemon pushes the new value to `k − 1`
/// other registered sites at every release, purely for availability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AvailabilityConfig {
    /// Number of up-to-date copies to maintain (≥ 1).
    pub ur: usize,
    /// Retained for configuration compatibility; dissemination is always
    /// acknowledged before the release message is sent (and before
    /// `unlock()` returns) — the coordinator's up-to-date set must never
    /// be optimistic, or a grantee could see `VERSIONOK` while the push to
    /// it is still in flight (a lost-update hazard found by the stress
    /// tests).
    pub wait_for_acks: bool,
}

impl Default for AvailabilityConfig {
    fn default() -> Self {
        AvailabilityConfig {
            ur: 1,
            wait_for_acks: false,
        }
    }
}

/// Dissemination hot-path tuning: delta transfer and the concurrent push
/// window.
///
/// Both default **off**, which preserves the paper-faithful behaviour the
/// calibration benchmarks (Figure 12's `UR` scaling) assert against:
/// sequential full-payload pushes. Turning them on makes replica movement
/// proportional to *what changed* (delta) and release latency proportional
/// to one RTT instead of `UR` (pipeline). Neither switch affects
/// correctness — a receiver that cannot use a delta NACKs back to a full
/// transfer, and the pipelined window keeps the same per-target
/// timeout/replacement semantics as the sequential path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PushConfig {
    /// Send edit scripts against the receiver's last-acked version instead
    /// of full payloads when the sender's shadow copy permits it.
    pub delta: bool,
    /// Keep every remaining push target in flight at once instead of
    /// send-one-await-ack.
    pub pipeline: bool,
}

/// Object-directory and home-migration tuning.
///
/// Both switches default **off**, which preserves the paper's
/// creator-is-home-forever placement: every lock is coordinated at the
/// cluster's fixed home site and no new wire messages are ever sent, so
/// the Figure 12 calibration and all existing benches are byte-identical
/// to before. With `hash_directory` on, every site hosts a coordinator
/// and locks hash onto sites through a virtual-shard consistent-hash
/// ring; with `migration` also on, a coordinator that sees a remote site
/// dominate a lock's acquire traffic hands the coordinator role to it
/// via a version-fenced offer/accept/commit handshake. Neither switch
/// affects correctness: a site holding a stale directory entry is
/// redirected by a `StaleHome` NACK on first contact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HomeConfig {
    /// Place each lock's coordinator by consistent hash instead of at the
    /// fixed cluster home.
    pub hash_directory: bool,
    /// Dynamically migrate a lock's coordinator to the site dominating
    /// its acquire traffic (requires `hash_directory`).
    pub migration: bool,
    /// Decayed acquire-count lead a remote site needs over the current
    /// home before a migration is offered.
    pub migrate_threshold: u32,
    /// Virtual shards per site on the consistent-hash ring.
    pub virtual_shards: u32,
}

impl Default for HomeConfig {
    fn default() -> Self {
        HomeConfig {
            hash_directory: false,
            migration: false,
            migrate_threshold: 4,
            virtual_shards: 16,
        }
    }
}

/// Deliberate protocol faults for invariant-oracle testing.
///
/// Each flag re-introduces a specific protocol bug so the mutant harness
/// in `mocha-check` can prove the corresponding invariant actually fires.
/// The flags are inert unless the crate is compiled with the
/// `fault-injection` cargo feature: [`FaultPlan::active`] collapses to the
/// all-off default otherwise, so workspace feature unification can never
/// change production behaviour — only code that *sets* a flag at runtime
/// AND builds with the feature sees a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Grant an exclusive lock even while another holder exists
    /// (violates the single-writer invariant).
    pub grant_second_writer: bool,
    /// Mark a grantee up-to-date at grant time, before its transfer
    /// completes (violates up-to-date-set freshness).
    pub optimistic_up_to_date: bool,
    /// Skip the daemon's staleness guard and apply any incoming version
    /// (violates per-site version monotonicity under reordering).
    pub accept_any_version: bool,
    /// Replay a stale write-ahead log at recovery: the restored daemon
    /// resumes one release behind what it durably held (violates version
    /// monotonicity across an incarnation boundary).
    pub stale_recovery: bool,
    /// Commit a home migration without fencing: the old coordinator sends
    /// `MigrateCommit` but keeps serving the lock, so both sites act as
    /// home (violates the single-home invariant, `split_home`).
    pub commit_unfenced: bool,
}

impl FaultPlan {
    /// The effective plan: identical to `self` when built with the
    /// `fault-injection` feature, all-off otherwise.
    #[must_use]
    pub fn active(self) -> FaultPlan {
        if cfg!(feature = "fault-injection") {
            self
        } else {
            FaultPlan::default()
        }
    }

    /// Whether any fault flag is set (before feature gating).
    #[must_use]
    pub fn any(self) -> bool {
        self.grant_second_writer
            || self.optimistic_up_to_date
            || self.accept_any_version
            || self.stale_recovery
            || self.commit_unfenced
    }

    /// Names of the enabled flags, for trace files.
    #[must_use]
    pub fn enabled_names(self) -> Vec<&'static str> {
        let mut names = Vec::new();
        if self.grant_second_writer {
            names.push("grant_second_writer");
        }
        if self.optimistic_up_to_date {
            names.push("optimistic_up_to_date");
        }
        if self.accept_any_version {
            names.push("accept_any_version");
        }
        if self.stale_recovery {
            names.push("stale_recovery");
        }
        if self.commit_unfenced {
            names.push("commit_unfenced");
        }
        names
    }

    /// Parses a plan from flag names (the trace-file representation).
    ///
    /// # Errors
    ///
    /// Returns the first unknown name.
    pub fn from_names<S: AsRef<str>>(names: &[S]) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for name in names {
            match name.as_ref() {
                "grant_second_writer" => plan.grant_second_writer = true,
                "optimistic_up_to_date" => plan.optimistic_up_to_date = true,
                "accept_any_version" => plan.accept_any_version = true,
                "stale_recovery" => plan.stale_recovery = true,
                "commit_unfenced" => plan.commit_unfenced = true,
                other => return Err(format!("unknown fault flag {other:?}")),
            }
        }
        Ok(plan)
    }
}

/// Complete configuration for a Mocha deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MochaConfig {
    /// Transport configuration (protocol mode, MochaNet/TCP tuning).
    pub net: NetConfig,
    /// Marshaling codec (JDK 1.1-style or the optimized bulk library).
    pub codec: CodecKind,
    /// Default lock lease: how long a thread may hold a lock before the
    /// coordinator suspects it has failed (threads can extend via the
    /// per-acquire hint).
    pub default_lease: Duration,
    /// How often the coordinator scans held locks for expired leases.
    pub lease_scan_interval: Duration,
    /// How long the coordinator waits for a heartbeat ack before declaring
    /// a suspected owner dead and breaking its lock.
    pub heartbeat_timeout: Duration,
    /// How long the coordinator collects `PollResponse`s during failure
    /// recovery before forwarding the freshest version found.
    pub recovery_poll_window: Duration,
    /// Whether lease-based lock breaking is enabled at all (the ablation
    /// benchmark turns it off).
    pub break_locks: bool,
    /// Ablation switch: route replica transfers through the home site
    /// (store and forward) instead of daemon-to-daemon. The paper's design
    /// sends data directly to "exploit locality"; enabling this quantifies
    /// what that optimisation buys.
    pub relay_transfers: bool,
    /// Deliberate protocol faults for oracle testing; inert unless the
    /// `fault-injection` feature is compiled in.
    pub faults: FaultPlan,
    /// Dissemination hot-path tuning (delta transfer, concurrent push
    /// window). Defaults to the paper-faithful sequential/full-payload
    /// behaviour.
    pub push: PushConfig,
    /// Object-directory placement and dynamic home migration. Defaults to
    /// the paper-faithful fixed-home behaviour.
    pub home: HomeConfig,
}

impl Default for MochaConfig {
    fn default() -> Self {
        MochaConfig {
            net: NetConfig::default(),
            codec: CodecKind::default(),
            default_lease: Duration::from_secs(5),
            lease_scan_interval: Duration::from_millis(500),
            heartbeat_timeout: Duration::from_millis(800),
            recovery_poll_window: Duration::from_millis(400),
            break_locks: true,
            relay_transfers: false,
            faults: FaultPlan::default(),
            push: PushConfig::default(),
            home: HomeConfig::default(),
        }
    }
}

impl MochaConfig {
    /// Configuration matching the paper's first prototype (all traffic
    /// over MochaNet, JDK 1.1 marshaling).
    pub fn basic() -> MochaConfig {
        MochaConfig {
            net: NetConfig::basic(),
            ..MochaConfig::default()
        }
    }

    /// Configuration matching the paper's second prototype (hybrid
    /// protocol, JDK 1.1 marshaling).
    pub fn hybrid() -> MochaConfig {
        MochaConfig {
            net: NetConfig::hybrid(),
            ..MochaConfig::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        self.net.validate()?;
        if self.default_lease.is_zero() {
            return Err("default_lease must be positive".into());
        }
        if self.lease_scan_interval.is_zero() {
            return Err("lease_scan_interval must be positive".into());
        }
        if self.heartbeat_timeout.is_zero() {
            return Err("heartbeat_timeout must be positive".into());
        }
        if self.recovery_poll_window.is_zero() {
            return Err("recovery_poll_window must be positive".into());
        }
        if self.home.migration && !self.home.hash_directory {
            return Err("home.migration requires home.hash_directory".into());
        }
        if self.home.hash_directory && self.home.virtual_shards == 0 {
            return Err("home.virtual_shards must be positive".into());
        }
        if self.home.migration && self.home.migrate_threshold == 0 {
            return Err("home.migrate_threshold must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use mocha_net::ProtocolMode;

    #[test]
    fn defaults_validate() {
        MochaConfig::default().validate().unwrap();
        MochaConfig::basic().validate().unwrap();
        MochaConfig::hybrid().validate().unwrap();
    }

    #[test]
    fn prototypes_select_modes() {
        assert_eq!(MochaConfig::basic().net.mode, ProtocolMode::Basic);
        assert_eq!(MochaConfig::hybrid().net.mode, ProtocolMode::Hybrid);
    }

    #[test]
    fn zero_durations_rejected() {
        let mut c = MochaConfig::default();
        c.default_lease = Duration::ZERO;
        assert!(c.validate().is_err());
        let mut c = MochaConfig::default();
        c.heartbeat_timeout = Duration::ZERO;
        assert!(c.validate().is_err());
        let mut c = MochaConfig::default();
        c.lease_scan_interval = Duration::ZERO;
        assert!(c.validate().is_err());
        let mut c = MochaConfig::default();
        c.recovery_poll_window = Duration::ZERO;
        assert!(c.validate().is_err());
    }

    #[test]
    fn availability_default_is_no_dissemination() {
        let a = AvailabilityConfig::default();
        assert_eq!(a.ur, 1);
        assert!(!a.wait_for_acks);
    }

    #[test]
    fn push_config_defaults_to_paper_behaviour() {
        let p = PushConfig::default();
        assert!(!p.delta);
        assert!(!p.pipeline);
        assert_eq!(MochaConfig::default().push, PushConfig::default());
    }

    #[test]
    fn home_config_defaults_to_paper_behaviour() {
        let h = HomeConfig::default();
        assert!(!h.hash_directory);
        assert!(!h.migration);
        assert_eq!(MochaConfig::default().home, HomeConfig::default());

        let mut c = MochaConfig::default();
        c.home.migration = true;
        assert!(c.validate().is_err(), "migration without directory");
        c.home.hash_directory = true;
        c.validate().unwrap();
        c.home.migrate_threshold = 0;
        assert!(c.validate().is_err(), "zero threshold");
        let mut c = MochaConfig::default();
        c.home.hash_directory = true;
        c.home.virtual_shards = 0;
        assert!(c.validate().is_err(), "zero shards");
    }

    #[test]
    fn fault_plan_names_roundtrip() {
        let plan = FaultPlan {
            grant_second_writer: true,
            accept_any_version: true,
            stale_recovery: true,
            commit_unfenced: true,
            ..FaultPlan::default()
        };
        let names = plan.enabled_names();
        assert_eq!(
            names,
            vec![
                "grant_second_writer",
                "accept_any_version",
                "stale_recovery",
                "commit_unfenced"
            ]
        );
        assert_eq!(FaultPlan::from_names(&names).unwrap(), plan);
        assert!(FaultPlan::from_names(&["bogus"]).is_err());
        assert!(plan.any());
        assert!(!FaultPlan::default().any());
    }

    #[test]
    fn fault_plan_inert_without_feature() {
        let plan = FaultPlan {
            grant_second_writer: true,
            optimistic_up_to_date: true,
            accept_any_version: true,
            stale_recovery: true,
            commit_unfenced: true,
        };
        if cfg!(feature = "fault-injection") {
            assert_eq!(plan.active(), plan);
        } else {
            assert_eq!(plan.active(), FaultPlan::default());
        }
    }
}
