//! The home-site synchronization thread (paper §3 Figure 7, plus §4
//! failure handling).
//!
//! The coordinator grants and queues locks, tracks the version number of
//! each lock's replica set, remembers which sites hold the current version
//! (`lastLockOwner` generalised to an *up-to-date set* once push-based
//! dissemination exists), and directs daemon-to-daemon transfers. It never
//! relays replica data itself.
//!
//! Failure handling (§4):
//!
//! * **Non-owner failure** — a transfer directive to a dead daemon fails
//!   (transport timeout); the coordinator polls all registered daemons for
//!   their newest version and forwards the freshest available, which may be
//!   *older* than the lost version ("weakened consistency").
//! * **Owner failure** — grants carry a lease (the thread's declared hold
//!   time, or a default); a periodic scan finds over-held locks, confirms
//!   death with a heartbeat, then breaks the lock, blacklists the site and
//!   grants to the next waiter.
//! * Failed sites are removed from membership and "prevented from making
//!   future requests".

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::time::Duration;

use mocha_net::{ports, MsgClass};
use mocha_sim::{SimTime, Work};
use mocha_wire::message::{LockMode, VersionFlag};
use mocha_wire::{LockId, Msg, ReplicaId, RequestId, SiteId, ThreadId, Version};

use crate::cmd::{timer_ns, CmdSink, SendTag};
use crate::config::MochaConfig;
use crate::directory::Directory;

const SCAN_TOKEN: u64 = timer_ns::COORD;
const HEARTBEAT_SUB: u64 = 1 << 48;
const RECOVERY_SUB: u64 = 2 << 48;
const MIGRATE_SUB: u64 = 4 << 48;

/// When a lock's hottest per-site acquire counter reaches this ceiling,
/// every counter is halved — a decaying window so old traffic stops
/// outvoting the current access pattern.
const HEAT_CEILING: u32 = 32;

/// A queued lock requester.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Requester {
    site: SiteId,
    thread: ThreadId,
    lease: Duration,
    mode: LockMode,
}

/// One current holder of a lock (a single exclusive holder, or any number
/// of concurrent shared holders).
#[derive(Debug, Clone, Copy)]
struct OwnerState {
    who: Requester,
    deadline: SimTime,
    /// A heartbeat is in flight to confirm suspected failure.
    suspected: bool,
}

/// An in-progress §4 recovery: polling daemons for the freshest surviving
/// version on behalf of a waiting grantee.
#[derive(Debug)]
struct Recovery {
    req: RequestId,
    dest: SiteId,
    responses: Vec<(SiteId, Version)>,
    expected: usize,
    /// A state-rebuild poll (directory mode): the coordinator has no
    /// trustworthy version for this lock yet (churn re-homed it here), so
    /// grants are deferred until the poll adopts the freshest surviving
    /// version — instead of the §4 data-supply poll that runs after a
    /// grant.
    rebuild: bool,
}

/// Per-lock coordinator state (the paper's `Lock` object).
#[derive(Debug, Default)]
struct LockState {
    version: Version,
    /// Current holders: empty (free), one exclusive, or several shared.
    holders: Vec<OwnerState>,
    queue: VecDeque<Requester>,
    /// Site that produced the current version (the paper's
    /// `lastLockOwner`).
    last_owner: Option<SiteId>,
    /// Sites known to hold the current version (owner + dissemination
    /// targets).
    up_to_date: BTreeSet<SiteId>,
    /// Last version each site is known to have held (the owner and its
    /// acknowledged dissemination targets, recorded at every release) —
    /// the coordinator-side mirror of the daemons' delta-base tables.
    site_versions: BTreeMap<SiteId, Version>,
    /// All sites registered for this lock's replicas (the `R` set).
    members: BTreeSet<SiteId>,
    /// Replicas associated with this lock.
    replicas: BTreeSet<ReplicaId>,
    /// Recovery in progress, if any.
    recovery: Option<Recovery>,
    /// Decayed per-site acquire counters (only maintained when dynamic
    /// home migration is enabled): the evidence a remote site dominates.
    heat: BTreeMap<SiteId, u32>,
    /// Directory mode only: this state was created locally (first contact
    /// or churn re-home) rather than installed by a `MigrateCommit`, so
    /// its version may trail surviving replicas elsewhere. Grants are
    /// deferred behind a member poll until the flag clears — otherwise a
    /// survivor holding a stale copy would be told it is current.
    rebuilt: bool,
}

/// An in-flight outgoing home migration for one lock.
#[derive(Debug, Clone, Copy)]
struct OutgoingMigration {
    /// Candidate new home.
    target: SiteId,
    /// Fence epoch this migration will commit under.
    epoch: u64,
    /// The candidate has sent `MigrateAccept`; commit at the next moment
    /// the lock is free.
    accepted: bool,
}

/// An incoming home migration for one lock: SYNC traffic buffered between
/// `MigrateAccept` and `MigrateCommit`, so the handshake window never
/// produces redirect ping-pong. The buffer is bounded in time — if the
/// offering site dies or the commit never arrives, the held traffic is
/// re-processed (and then routes to whichever home is authoritative).
#[derive(Debug)]
struct PendingInstall {
    /// The coordinator that offered the handshake.
    from: SiteId,
    /// Fence epoch of the offer.
    epoch: u64,
    /// Routed SYNC traffic held until the commit installs the lock here.
    msgs: Vec<(SiteId, Msg)>,
}

/// Statistics the coordinator accumulates, for tests and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoordinatorStats {
    /// Locks granted.
    pub grants: u64,
    /// Grants that required a replica transfer.
    pub grants_with_transfer: u64,
    /// Locks broken after owner failure.
    pub locks_broken: u64,
    /// Recoveries started after a transfer-source failure.
    pub recoveries: u64,
    /// Recoveries that completed with an older version than expected
    /// (weakened consistency).
    pub stale_recoveries: u64,
    /// Requests ignored because the sender was blacklisted.
    pub blacklisted_requests: u64,
    /// Home migrations committed away from this coordinator.
    pub migrations: u64,
    /// SYNC messages redirected with a `StaleHome` NACK because this
    /// coordinator is not (or no longer) the lock's home.
    pub stale_home_redirects: u64,
}

/// The synchronization thread's state machine.
#[derive(Debug)]
pub struct SyncCoordinator {
    home: SiteId,
    cfg: MochaConfig,
    locks: HashMap<LockId, LockState>,
    blacklist: BTreeSet<SiteId>,
    next_req: RequestId,
    /// Outstanding heartbeats: req → (lock, suspected site).
    pending_heartbeats: HashMap<RequestId, (LockId, SiteId)>,
    /// Timer token ↔ heartbeat req mapping.
    heartbeat_timers: HashMap<u64, RequestId>,
    scan_running: bool,
    stats: CoordinatorStats,
    /// State log for surrogate recovery (§4): every state-mutating message
    /// accepted, in order. A production system would write this to stable
    /// storage; the harness extracts it when promoting a surrogate.
    log: Vec<(SiteId, Msg)>,
    /// Consistent-hash object directory, present only when
    /// `home.hash_directory` is on. `None` preserves the legacy
    /// single-coordinator behaviour exactly.
    dir: Option<Directory>,
    /// In-flight outgoing migrations by lock.
    outgoing: HashMap<LockId, OutgoingMigration>,
    /// Lock state retired at commit-send (the fence), kept with its fence
    /// epoch until the new home's `HomeUpdate` confirms it is live —
    /// reinstated if the commit send fails. Only an update at or above the
    /// fence epoch releases it: a reordered announcement from an *earlier*
    /// migration of the same lock must not discard a newer retirement.
    retired: HashMap<LockId, (u64, LockState)>,
    /// Incoming migrations by lock (see [`PendingInstall`]).
    incoming: HashMap<LockId, PendingInstall>,
}

impl SyncCoordinator {
    /// Creates the coordinator for the home site.
    pub fn new(home: SiteId, cfg: MochaConfig) -> SyncCoordinator {
        SyncCoordinator {
            home,
            cfg,
            locks: HashMap::new(),
            blacklist: BTreeSet::new(),
            next_req: RequestId(1),
            pending_heartbeats: HashMap::new(),
            heartbeat_timers: HashMap::new(),
            scan_running: false,
            stats: CoordinatorStats::default(),
            log: Vec::new(),
            dir: None,
            outgoing: HashMap::new(),
            retired: HashMap::new(),
            incoming: HashMap::new(),
        }
    }

    /// Creates a coordinator for `home` in hash-directory mode: every site
    /// in `sites` hosts a coordinator, and this one owns exactly the locks
    /// the shared consistent-hash ring (plus migration overrides) maps to
    /// `home`. Traffic for any other lock is answered with a `StaleHome`
    /// redirect and forwarded to the right coordinator.
    pub fn with_directory(home: SiteId, cfg: MochaConfig, sites: &[SiteId]) -> SyncCoordinator {
        let mut c = SyncCoordinator::new(home, cfg);
        c.dir = Some(Directory::new(sites, cfg.home.virtual_shards));
        c
    }

    /// The object directory, when running in hash-directory mode.
    pub fn directory(&self) -> Option<&Directory> {
        self.dir.as_ref()
    }

    /// Adds a site to the directory ring (membership growth). No-op in
    /// legacy fixed-home mode.
    ///
    /// Growing the ring re-maps ~1/n of the hash space onto the newcomer,
    /// but the newcomer has no state for any existing lock — so every lock
    /// with *installed state here* whose ring home just moved is pinned by
    /// an override to this site, and the pin is gossiped (`HomeUpdate`) to
    /// the lock's members and the newcomer. The re-map therefore only
    /// applies to locks with no live state; installed locks move later, if
    /// at all, through the fenced migration handshake.
    pub fn add_ring_site(&mut self, site: SiteId, sink: &mut CmdSink) {
        let Some(dir) = self.dir.as_mut() else {
            return;
        };
        dir.add_site(site);
        let me = self.home;
        let mut pinned: Vec<(LockId, u64)> = Vec::new();
        for &lock in self.locks.keys() {
            if dir.home_of(lock) != Some(me) {
                let epoch = dir.epoch_of(lock);
                dir.record(lock, me, epoch);
                pinned.push((lock, epoch));
            }
        }
        for (lock, epoch) in pinned {
            sink.note(format!(
                "{site} joined the ring; pinning live {lock} at {me} (epoch {epoch})"
            ));
            let mut targets: BTreeSet<SiteId> = self
                .locks
                .get(&lock)
                .map(|s| s.members.iter().copied().collect())
                .unwrap_or_default();
            targets.insert(site);
            targets.remove(&me);
            for target in targets {
                let update = Msg::HomeUpdate {
                    lock,
                    home: me,
                    epoch,
                };
                sink.send(target, ports::DAEMON, update.clone(), MsgClass::Control);
                sink.send(target, ports::SYNC, update, MsgClass::Control);
            }
        }
    }

    /// Removes a dead site from the directory ring, dropping any migration
    /// overrides that pointed at it — their locks fall back to ring
    /// placement on a surviving site, whose coordinator rebuilds state
    /// from member re-announcements and a deferred-grant recovery poll.
    /// Abandons any in-flight migration toward the dead site, and releases
    /// any traffic buffered for a handshake the dead site offered (the
    /// commit can no longer arrive; the messages re-route to whichever
    /// home the updated ring makes authoritative). Returns the locks whose
    /// override was dropped.
    pub fn remove_ring_site(
        &mut self,
        site: SiteId,
        now: SimTime,
        sink: &mut CmdSink,
    ) -> Vec<LockId> {
        self.outgoing.retain(|_, m| m.target != site);
        let orphaned = match self.dir.as_mut() {
            Some(dir) => dir.remove_site(site),
            None => Vec::new(),
        };
        let stranded: Vec<LockId> = self
            .incoming
            .iter()
            .filter(|(_, p)| p.from == site)
            .map(|(&lock, _)| lock)
            .collect();
        for lock in stranded {
            sink.cancel_timer(timer_ns::COORD | MIGRATE_SUB | u64::from(lock.as_raw()));
            if let Some(pending) = self.incoming.remove(&lock) {
                sink.note(format!(
                    "offerer {site} left before committing {lock}; releasing {n} buffered message(s)",
                    n = pending.msgs.len()
                ));
                for (from, msg) in pending.msgs {
                    self.on_msg(now, from, msg, sink);
                }
            }
        }
        orphaned
    }

    /// The surrogate-recovery state log.
    pub fn log(&self) -> &[(SiteId, Msg)] {
        &self.log
    }

    /// Every site registered for any lock (broadcast targets for
    /// [`Msg::SyncMoved`]).
    pub fn all_members(&self) -> Vec<SiteId> {
        let mut members: Vec<SiteId> = self
            .locks
            .values()
            .flat_map(|l| l.members.iter().copied())
            .collect();
        members.sort_unstable();
        members.dedup();
        members
    }

    /// Reconstructs a coordinator at `home` by replaying a predecessor's
    /// state log — the paper's sketched synchronization-thread recovery.
    /// Outgoing messages generated during replay are discarded (they were
    /// already sent by the predecessor); holder leases restart at `now`.
    pub fn replay(
        home: SiteId,
        cfg: MochaConfig,
        log: &[(SiteId, Msg)],
        now: SimTime,
    ) -> SyncCoordinator {
        let mut c = SyncCoordinator::new(home, cfg);
        let mut discard = CmdSink::new();
        for (from, msg) in log {
            c.on_msg(now, *from, msg.clone(), &mut discard);
            discard.drain();
        }
        c.scan_running = false;
        c
    }

    /// Restarts background machinery after a [`replay`](Self::replay):
    /// timer commands emitted during replay were discarded, so the lease
    /// scan must be re-armed if any lock is currently held — a holder that
    /// died with the old home is then detected and broken normally.
    pub fn resume(&mut self, sink: &mut CmdSink) {
        if self.cfg.break_locks && self.locks.values().any(|l| !l.holders.is_empty()) {
            self.scan_running = true;
            sink.set_timer(SCAN_TOKEN, self.cfg.lease_scan_interval);
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CoordinatorStats {
        self.stats
    }

    /// The home site this coordinator runs at.
    pub fn home(&self) -> SiteId {
        self.home
    }

    /// Sites currently blacklisted after detected failures.
    pub fn blacklist(&self) -> impl Iterator<Item = SiteId> + '_ {
        self.blacklist.iter().copied()
    }

    /// Current version of a lock's replica set (for tests/harness).
    pub fn lock_version(&self, lock: LockId) -> Option<Version> {
        self.locks.get(&lock).map(|l| l.version)
    }

    /// Current owner site of a lock, if held exclusively (or the first
    /// shared holder).
    pub fn lock_owner(&self, lock: LockId) -> Option<SiteId> {
        self.locks
            .get(&lock)
            .and_then(|l| l.holders.first().map(|o| o.who.site))
    }

    /// All current holder sites of a lock.
    pub fn lock_holders(&self, lock: LockId) -> Vec<SiteId> {
        self.locks
            .get(&lock)
            .map(|l| l.holders.iter().map(|o| o.who.site).collect())
            .unwrap_or_default()
    }

    /// All lock ids the coordinator knows about.
    pub fn known_locks(&self) -> Vec<LockId> {
        let mut locks: Vec<LockId> = self.locks.keys().copied().collect();
        locks.sort_unstable();
        locks
    }

    /// The registered member set of a lock.
    pub fn lock_members(&self, lock: LockId) -> Vec<SiteId> {
        self.locks
            .get(&lock)
            .map(|l| l.members.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Read-only snapshots of every lock's coordinator-side state, sorted
    /// by lock id — the invariant oracle's view of this coordinator.
    pub fn lock_views(&self) -> Vec<crate::invariants::LockView> {
        let mut views: Vec<crate::invariants::LockView> = self
            .locks
            .iter()
            .map(|(lock, s)| crate::invariants::LockView {
                lock: *lock,
                version: s.version,
                holders: s
                    .holders
                    .iter()
                    .map(|h| crate::invariants::HolderView {
                        site: h.who.site,
                        thread: h.who.thread,
                        mode: h.who.mode,
                        suspected: h.suspected,
                    })
                    .collect(),
                up_to_date: s.up_to_date.iter().copied().collect(),
                members: s.members.iter().copied().collect(),
                recovering: s.recovery.is_some(),
            })
            .collect();
        views.sort_by_key(|v| v.lock);
        views
    }

    /// Feeds the coordinator's protocol-relevant state into `h`, in a
    /// deterministic order, for explorer state fingerprinting.
    pub fn hash_state(&self, h: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        self.home.hash(h);
        for view in self.lock_views() {
            view.lock.hash(h);
            view.version.hash(h);
            view.recovering.hash(h);
            for holder in &view.holders {
                holder.site.hash(h);
                holder.thread.hash(h);
                holder.mode.hash(h);
                holder.suspected.hash(h);
            }
            view.up_to_date.hash(h);
            view.members.hash(h);
        }
        // Queued requesters matter: they decide future grant order; the
        // per-site version records steer future freshness bookkeeping.
        let mut locks: Vec<&LockId> = self.locks.keys().collect();
        locks.sort_unstable();
        for lock in locks {
            for r in &self.locks[lock].queue {
                r.site.hash(h);
                r.thread.hash(h);
                r.mode.hash(h);
            }
            for (site, version) in &self.locks[lock].site_versions {
                site.hash(h);
                version.hash(h);
            }
            for (site, count) in &self.locks[lock].heat {
                site.hash(h);
                count.hash(h);
            }
            // Directory placement steers future routing and fencing.
            if let Some(dir) = &self.dir {
                dir.home_of(*lock).hash(h);
                dir.epoch_of(*lock).hash(h);
            }
            if let Some(state) = self.locks.get(lock) {
                state.rebuilt.hash(h);
            }
        }
        // Migration staging decides whether traffic is buffered or served
        // and whether a failed commit can be rolled back.
        let mut staged: Vec<(&LockId, &PendingInstall)> = self.incoming.iter().collect();
        staged.sort_by_key(|(lock, _)| **lock);
        for (lock, pending) in staged {
            lock.hash(h);
            pending.from.hash(h);
            pending.epoch.hash(h);
            pending.msgs.len().hash(h);
        }
        let mut retired: Vec<(&LockId, u64)> = self
            .retired
            .iter()
            .map(|(lock, (fence, _))| (lock, *fence))
            .collect();
        retired.sort_unstable();
        for (lock, fence) in retired {
            lock.hash(h);
            fence.hash(h);
        }
        self.blacklist.hash(h);
        self.scan_running.hash(h);
    }

    /// Last version `site` is known to have held for `lock`, as recorded
    /// at releases — `None` if the site never appeared as an owner or an
    /// acknowledged dissemination target.
    pub fn site_version(&self, lock: LockId, site: SiteId) -> Option<Version> {
        self.locks
            .get(&lock)
            .and_then(|s| s.site_versions.get(&site).copied())
    }

    fn fresh_req(&mut self) -> RequestId {
        let r = self.next_req;
        self.next_req = self.next_req.next();
        r
    }

    /// The lock a SYNC message is *routed by* — the messages that must
    /// reach the lock's current home (and only those; poll answers,
    /// heartbeat acks and the migration handshake are correlated by
    /// request id or handled at any coordinator).
    fn routed_lock(msg: &Msg) -> Option<LockId> {
        match msg {
            Msg::AcquireLock { lock, .. }
            | Msg::ReleaseLock { lock, .. }
            | Msg::RegisterReplica { lock, .. } => Some(*lock),
            _ => None,
        }
    }

    /// `Some((home, epoch))` when this coordinator is not the lock's home
    /// under the directory. Always `None` in legacy fixed-home mode, and
    /// for locks with installed state here (mid-handshake the old home
    /// keeps serving until the fence).
    fn foreign_home(&self, lock: LockId) -> Option<(SiteId, u64)> {
        let dir = self.dir.as_ref()?;
        if self.locks.contains_key(&lock) {
            return None;
        }
        match dir.home_of(lock) {
            Some(home) if home != self.home => Some((home, dir.epoch_of(lock))),
            _ => None,
        }
    }

    /// Handles a protocol message addressed to the SYNC port.
    pub fn on_msg(&mut self, now: SimTime, from: SiteId, msg: Msg, sink: &mut CmdSink) {
        // One event handling's worth of JVM dispatch.
        sink.charge(Work::events(1));
        if let Some(lock) = Self::routed_lock(&msg) {
            // A migration toward this site is in flight: hold the traffic
            // until `MigrateCommit` installs the lock here.
            if let Some(pending) = self.incoming.get_mut(&lock) {
                pending.msgs.push((from, msg));
                return;
            }
            // Not this coordinator's lock: NACK the sender's stale
            // directory entry and forward the message to the real home, so
            // correctness never depends on directory freshness.
            if let Some((home, epoch)) = self.foreign_home(lock) {
                self.stats.stale_home_redirects += 1;
                sink.note(format!(
                    "redirecting {lock} traffic from {from}: home is {home} (epoch {epoch})"
                ));
                sink.send(
                    from,
                    ports::DAEMON,
                    Msg::StaleHome { lock, home, epoch },
                    MsgClass::Control,
                );
                sink.send(home, ports::SYNC, msg, MsgClass::Control);
                return;
            }
        }
        if matches!(
            msg,
            Msg::AcquireLock { .. }
                | Msg::ReleaseLock { .. }
                | Msg::RegisterReplica { .. }
                | Msg::SiteRecovered { .. }
        ) {
            self.log.push((from, msg.clone()));
        }
        match msg {
            Msg::AcquireLock {
                lock,
                site,
                thread,
                lease_hint_ms,
                mode,
            } => self.on_acquire(now, lock, site, thread, lease_hint_ms, mode, sink),
            Msg::ReleaseLock {
                lock,
                site,
                new_version,
                disseminated_to,
            } => self.on_release(now, lock, site, new_version, &disseminated_to, sink),
            Msg::RegisterReplica {
                lock,
                replica,
                site,
                name,
            } => self.on_register(lock, replica, site, &name, sink),
            Msg::PollResponse {
                lock,
                version,
                site,
                req,
            } => self.on_poll_response(now, lock, version, site, req, sink),
            Msg::HeartbeatAck { site, req, holding } => {
                self.on_heartbeat_ack(now, site, req, holding, sink);
            }
            Msg::SiteRecovered { site, versions } => {
                self.on_site_recovered(site, &versions, sink);
            }
            Msg::MigrateOffer { lock, epoch, req } => {
                self.on_migrate_offer(from, lock, epoch, req, sink);
            }
            Msg::MigrateAccept {
                lock, epoch, site, ..
            } => self.on_migrate_accept(now, lock, epoch, site, sink),
            Msg::MigrateCommit {
                lock,
                epoch,
                version,
                last_owner,
                members,
                up_to_date,
                site_versions,
                replicas,
                ..
            } => self.on_migrate_commit(
                now,
                from,
                lock,
                epoch,
                version,
                last_owner,
                &members,
                &up_to_date,
                &site_versions,
                &replicas,
                sink,
            ),
            Msg::HomeUpdate { lock, home, epoch } => self.on_home_update(lock, home, epoch),
            other => {
                sink.note(format!(
                    "coordinator ignoring unexpected {other:?} from {from}"
                ));
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_acquire(
        &mut self,
        now: SimTime,
        lock: LockId,
        site: SiteId,
        thread: ThreadId,
        lease_hint_ms: u32,
        mode: LockMode,
        sink: &mut CmdSink,
    ) {
        if self.blacklist.contains(&site) {
            self.stats.blacklisted_requests += 1;
            sink.note(format!("{site} is blacklisted; ignoring acquire of {lock}"));
            return;
        }
        let lease = if lease_hint_ms == 0 {
            self.cfg.default_lease
        } else {
            Duration::from_millis(u64::from(lease_hint_ms))
        };
        let requester = Requester {
            site,
            thread,
            lease,
            mode,
        };
        // In directory mode an unknown lock may be one whose coordinator
        // state died with a re-homed site: mark it rebuilt so the first
        // grant waits behind a member poll instead of inventing
        // `Version::INITIAL` as current.
        let dir_mode = self.dir.is_some();
        {
            let state = self.locks.entry(lock).or_insert_with(|| LockState {
                rebuilt: dir_mode,
                ..LockState::default()
            });
            state.members.insert(site);
        }
        self.note_heat(lock, site);
        let Some(state) = self.locks.get_mut(&lock) else {
            return;
        };
        // After a surrogate takeover, clients re-send acquires that may
        // already be queued or granted. A queued duplicate is dropped (its
        // grant will come); a duplicate from the exact (site, thread) the
        // replayed state considers a *holder* gets its grant re-sent — the
        // original grant may have died with the old home. A *different*
        // thread at a holding site is a new request and must queue.
        if state
            .holders
            .iter()
            .any(|h| h.who.site == site && h.who.thread == thread)
        {
            let version = state.version;
            let flag = if version == Version::INITIAL || state.up_to_date.contains(&site) {
                VersionFlag::VersionOk
            } else {
                VersionFlag::NeedNewVersion
            };
            sink.send(
                site,
                ports::APP,
                Msg::Grant {
                    lock,
                    version,
                    flag,
                },
                MsgClass::Control,
            );
            if flag == VersionFlag::NeedNewVersion {
                self.direct_transfer(lock, site, sink);
            }
            return;
        }
        if state
            .queue
            .iter()
            .any(|r| r.site == site && r.thread == thread)
        {
            return;
        }
        // A rebuilt state has no trustworthy version yet: queue the
        // requester and poll the member daemons for the freshest surviving
        // copy first — the grant flows from `finish_recovery` once the
        // poll adopts it (or its window expires with nothing better).
        if state.rebuilt {
            state.queue.push_back(requester);
            self.start_rebuild(lock, sink);
            return;
        }
        let compatible = match mode {
            // Exclusive needs the lock free and nobody queued ahead.
            LockMode::Exclusive => state.holders.is_empty() && state.queue.is_empty(),
            // Shared joins current shared holders, but never jumps the
            // queue (a waiting exclusive would starve otherwise).
            LockMode::Shared => {
                state.queue.is_empty()
                    && state.holders.iter().all(|h| h.who.mode == LockMode::Shared)
            }
        };
        // Mutant-harness hook: re-introduce the "grant while held" bug so
        // the single-writer invariant can be shown to fire. Inert unless
        // built with `fault-injection` AND the flag is set at runtime.
        let compatible = compatible || self.cfg.faults.active().grant_second_writer;
        if compatible {
            self.grant(now, lock, requester, sink);
        } else if let Some(state) = self.locks.get_mut(&lock) {
            state.queue.push_back(requester);
        }
    }

    /// Grants `lock` to `to`, deciding whether fresh replica data must be
    /// transferred and directing the transfer if so.
    fn grant(&mut self, now: SimTime, lock: LockId, to: Requester, sink: &mut CmdSink) {
        let break_locks = self.cfg.break_locks;
        let faults = self.cfg.faults.active();
        let Some(state) = self.locks.get_mut(&lock) else {
            sink.note(format!("grant of unknown {lock} dropped"));
            return;
        };
        let version = state.version;
        let current = version == Version::INITIAL || state.up_to_date.contains(&to.site);
        let deadline = now + to.lease;
        state.holders.push(OwnerState {
            who: to,
            deadline,
            suspected: false,
        });
        // Mutant-harness hook: optimistically mark the grantee up-to-date
        // before its transfer completes (the freshness bug the oracle's
        // StaleUpToDate invariant exists to catch).
        if faults.optimistic_up_to_date {
            state.up_to_date.insert(to.site);
        }
        debug_assert!(
            faults.grant_second_writer
                || state.holders.len() <= 1
                || state.holders.iter().all(|h| h.who.mode == LockMode::Shared),
            "exclusive {lock} granted alongside existing holders: {:?}",
            state.holders
        );
        self.stats.grants += 1;
        let flag = if current {
            VersionFlag::VersionOk
        } else {
            VersionFlag::NeedNewVersion
        };
        sink.send(
            to.site,
            ports::APP,
            Msg::Grant {
                lock,
                version,
                flag,
            },
            MsgClass::Control,
        );
        if flag == VersionFlag::NeedNewVersion {
            self.stats.grants_with_transfer += 1;
            self.direct_transfer(lock, to.site, sink);
        }
        if break_locks && !self.scan_running {
            self.scan_running = true;
            sink.set_timer(SCAN_TOKEN, self.cfg.lease_scan_interval);
        }
    }

    /// Asks the freshest daemon to send its replicas to `dest`.
    fn direct_transfer(&mut self, lock: LockId, dest: SiteId, sink: &mut CmdSink) {
        let req = self.fresh_req();
        let Some(state) = self.locks.get_mut(&lock) else {
            sink.note(format!("transfer for unknown {lock} dropped"));
            return;
        };
        // Prefer the last owner; otherwise any up-to-date site.
        let source = state
            .last_owner
            .filter(|s| *s != dest)
            .or_else(|| state.up_to_date.iter().copied().find(|s| *s != dest));
        match source {
            Some(source) => {
                let version = state.version;
                // Ablation: optionally force the data through the home
                // site instead of the direct daemon-to-daemon path.
                let data_dest = if self.cfg.relay_transfers && source != self.home {
                    sink.send(
                        self.home,
                        ports::DAEMON,
                        Msg::ExpectRelay { lock, dest, req },
                        MsgClass::Control,
                    );
                    self.home
                } else {
                    dest
                };
                sink.send_tagged(
                    source,
                    ports::DAEMON,
                    Msg::TransferReplica {
                        lock,
                        dest: data_dest,
                        version,
                        req,
                    },
                    MsgClass::Control,
                    SendTag::TransferDirective {
                        lock,
                        from: source,
                        dest,
                        req,
                    },
                );
            }
            None => {
                // No known current copy (e.g. after failures): recover.
                self.start_recovery(lock, dest, sink);
            }
        }
    }

    fn on_release(
        &mut self,
        now: SimTime,
        lock: LockId,
        site: SiteId,
        new_version: Version,
        disseminated_to: &[SiteId],
        sink: &mut CmdSink,
    ) {
        let Some(state) = self.locks.get_mut(&lock) else {
            sink.note(format!("release of unknown {lock} from {site}"));
            return;
        };
        let Some(idx) = state.holders.iter().position(|h| h.who.site == site) else {
            // Stale release: the lock was broken while this site
            // (slowly) finished. Its updates are discarded.
            sink.note(format!("stale release of {lock} from {site} ignored"));
            return;
        };
        state.holders.swap_remove(idx);
        if new_version > state.version {
            state.version = new_version;
            state.up_to_date.clear();
            state.up_to_date.insert(site);
            state.site_versions.insert(site, new_version);
            for s in disseminated_to {
                state.up_to_date.insert(*s);
                state.site_versions.insert(*s, new_version);
            }
            state.last_owner = Some(site);
        } else {
            // Read-only hold: the releaser now also has the current copy.
            state.up_to_date.insert(site);
            state.site_versions.insert(site, state.version);
        }
        self.grant_next_batch(now, lock, sink);
        // The lock may now be free: land an accepted migration, or see
        // whether the traffic pattern warrants offering one.
        self.try_commit(lock, sink);
        self.maybe_migrate(lock, sink);
    }

    /// Grants the next compatible batch from the queue: one exclusive
    /// requester, or every consecutive shared requester at the front.
    fn grant_next_batch(&mut self, now: SimTime, lock: LockId, sink: &mut CmdSink) {
        if !self.locks.get(&lock).is_some_and(|s| s.holders.is_empty()) {
            return; // still held (remaining shared holders)
        }
        let mut granted_any = false;
        while let Some(state) = self.locks.get_mut(&lock) {
            let Some(next) = state.queue.front().copied() else {
                break;
            };
            if self.blacklist.contains(&next.site) {
                state.queue.pop_front();
                self.stats.blacklisted_requests += 1;
                continue;
            }
            // An exclusive grant stands alone; shared grants batch.
            if granted_any && next.mode == LockMode::Exclusive {
                break;
            }
            state.queue.pop_front();
            self.grant(now, lock, next, sink);
            granted_any = true;
            if next.mode == LockMode::Exclusive {
                break;
            }
        }
    }

    fn on_register(
        &mut self,
        lock: LockId,
        replica: ReplicaId,
        site: SiteId,
        name: &str,
        sink: &mut CmdSink,
    ) {
        // A (re-)registration signals the site is alive — a rebooted node
        // rejoining after its previous incarnation was blacklisted (§1's
        // "remote node reboot"). Lift the ban; the lease machinery will
        // re-detect it if it is still misbehaving.
        if self.blacklist.remove(&site) {
            sink.note(format!("{site} re-registered; blacklist lifted"));
        }
        // Directory mode: a registration may be the first contact for a
        // lock whose prior coordinator state died elsewhere — mark the
        // fresh state rebuilt so the first grant polls before trusting
        // `Version::INITIAL`.
        let dir_mode = self.dir.is_some();
        let state = self.locks.entry(lock).or_insert_with(|| LockState {
            rebuilt: dir_mode,
            ..LockState::default()
        });
        let new_member = state.members.insert(site);
        state.replicas.insert(replica);
        // Propagate membership so every daemon can disseminate (§4: the
        // ReplicaLock "keeps track of the daemon threads associated with
        // these application threads").
        if new_member {
            let others: Vec<SiteId> = state
                .members
                .iter()
                .copied()
                .filter(|s| *s != site)
                .collect();
            for other in &others {
                sink.send(
                    *other,
                    ports::DAEMON,
                    Msg::RegisterReplica {
                        lock,
                        replica,
                        site,
                        name: name.to_string(),
                    },
                    MsgClass::Control,
                );
                // Tell the new member about the existing one, too.
                sink.send(
                    site,
                    ports::DAEMON,
                    Msg::RegisterReplica {
                        lock,
                        replica,
                        site: *other,
                        name: name.to_string(),
                    },
                    MsgClass::Control,
                );
            }
        } else {
            // Known member registering another replica under the same
            // lock: still propagate the replica association.
            let others: Vec<SiteId> = state
                .members
                .iter()
                .copied()
                .filter(|s| *s != site)
                .collect();
            for other in others {
                sink.send(
                    other,
                    ports::DAEMON,
                    Msg::RegisterReplica {
                        lock,
                        replica,
                        site,
                        name: name.to_string(),
                    },
                    MsgClass::Control,
                );
            }
        }
    }

    /// Handles a durable site's recovery announcement: it rebooted and
    /// holds exactly these versions, replayed off its snapshot and
    /// write-ahead log. Records them in the dissemination bookkeeping
    /// (replacing anything its previous incarnation was credited with) and
    /// forwards the announcement to each lock's other member daemons, so
    /// their next transfer or push to the rebooted site can ship a
    /// `(recovered → current)` edit script instead of a full payload.
    fn on_site_recovered(
        &mut self,
        site: SiteId,
        versions: &[(LockId, Version)],
        sink: &mut CmdSink,
    ) {
        // Like re-registration, an announcement proves the site is alive.
        if self.blacklist.remove(&site) {
            sink.note(format!("{site} recovered; blacklist lifted"));
        }
        for (lock, version) in versions {
            if !self.locks.contains_key(lock) {
                // In directory mode, an announcement for a lock the ring
                // now homes here is how churn re-homing rebuilds
                // coordinator state: create it marked rebuilt so the first
                // grant still polls the full member set. (No creation while
                // a migration toward this site is buffering — its commit
                // installs the real state.)
                let is_home = self
                    .dir
                    .as_ref()
                    .is_some_and(|d| d.home_of(*lock) == Some(self.home));
                if !is_home || self.incoming.contains_key(lock) {
                    // Legacy mode keeps the old behaviour: a surrogate
                    // that never saw the lock skips it; re-registration
                    // rebuilds membership and transfers fall back to
                    // full payloads.
                    continue;
                }
                self.locks.insert(
                    *lock,
                    LockState {
                        rebuilt: true,
                        ..LockState::default()
                    },
                );
            }
            let Some(state) = self.locks.get_mut(lock) else {
                continue;
            };
            state.members.insert(site);
            state.site_versions.insert(site, *version);
            if state.rebuilt && *version > state.version {
                // Rebuilding from announcements: adopt the freshest
                // surviving version rather than letting a default-INITIAL
                // state call stale replicas current.
                state.version = *version;
                state.last_owner = Some(site);
                state.up_to_date.clear();
                state.up_to_date.insert(site);
            } else if *version == state.version && state.version > Version::INITIAL {
                state.up_to_date.insert(site);
            } else {
                // The recovered copy is stale (writes happened past its
                // snapshot, or its WAL tail was truncated): it must catch
                // up before counting as current.
                state.up_to_date.remove(&site);
            }
            let others: Vec<SiteId> = state
                .members
                .iter()
                .copied()
                .filter(|s| *s != site)
                .collect();
            for other in others {
                sink.send(
                    other,
                    ports::DAEMON,
                    Msg::SiteRecovered {
                        site,
                        versions: vec![(*lock, *version)],
                    },
                    MsgClass::Control,
                );
            }
        }
    }

    /// Records acquire traffic for migration heat tracking, with a decaying
    /// window: when any counter reaches the ceiling, all are halved.
    fn note_heat(&mut self, lock: LockId, site: SiteId) {
        if self.dir.is_none() || !self.cfg.home.migration {
            return;
        }
        let Some(state) = self.locks.get_mut(&lock) else {
            return;
        };
        let count = state.heat.entry(site).or_insert(0);
        *count += 1;
        if *count >= HEAT_CEILING {
            state.heat.retain(|_, c| {
                *c /= 2;
                *c > 0
            });
        }
    }

    /// Offers the coordinator role to a remote site that dominates this
    /// lock's acquire traffic. Only called with the lock free; the offer
    /// does not pause service — the lock keeps being granted here until
    /// the fence at commit-send.
    fn maybe_migrate(&mut self, lock: LockId, sink: &mut CmdSink) {
        if !self.cfg.home.migration
            || self.outgoing.contains_key(&lock)
            || self.retired.contains_key(&lock)
        {
            return;
        }
        let Some(dir) = self.dir.as_ref() else {
            return;
        };
        let me = self.home;
        let threshold = self.cfg.home.migrate_threshold;
        let Some(state) = self.locks.get(&lock) else {
            return;
        };
        if !state.holders.is_empty() || !state.queue.is_empty() || state.recovery.is_some() {
            return;
        }
        let local = state.heat.get(&me).copied().unwrap_or(0);
        let candidate = state
            .heat
            .iter()
            .filter(|(site, _)| **site != me && !self.blacklist.contains(site))
            .max_by_key(|(_, count)| **count)
            .map(|(site, count)| (*site, *count));
        let Some((target, heat)) = candidate else {
            return;
        };
        if heat < local.saturating_add(threshold) {
            return;
        }
        let epoch = dir.epoch_of(lock) + 1;
        let req = self.fresh_req();
        self.outgoing.insert(
            lock,
            OutgoingMigration {
                target,
                epoch,
                accepted: false,
            },
        );
        sink.note(format!(
            "offering home of {lock} to {target} (heat {heat} vs local {local}, epoch {epoch})"
        ));
        sink.send_tagged(
            target,
            ports::SYNC,
            Msg::MigrateOffer { lock, epoch, req },
            MsgClass::Control,
            SendTag::Migrate {
                lock,
                site: target,
                epoch,
            },
        );
    }

    /// A coordinator elsewhere wants to hand this site a lock's home role.
    /// Accept and start buffering the lock's SYNC traffic until the commit
    /// installs its state here.
    fn on_migrate_offer(
        &mut self,
        from: SiteId,
        lock: LockId,
        epoch: u64,
        req: RequestId,
        sink: &mut CmdSink,
    ) {
        let Some(dir) = self.dir.as_ref() else {
            sink.note(format!(
                "ignoring migrate offer for {lock} from {from}: not in hash-directory mode"
            ));
            return;
        };
        // A replayed offer for a lock already installed here (or one whose
        // fence epoch our directory has already moved past) must not start
        // buffering live traffic — answer with the authoritative placement
        // instead of an accept.
        if self.locks.contains_key(&lock) || epoch <= dir.epoch_of(lock) {
            sink.note(format!(
                "rejecting stale migrate offer for {lock} from {from} (epoch {epoch})"
            ));
            let update = Msg::HomeUpdate {
                lock,
                home: dir.home_of(lock).unwrap_or(self.home),
                epoch: dir.epoch_of(lock),
            };
            sink.send(from, ports::DAEMON, update.clone(), MsgClass::Control);
            sink.send(from, ports::SYNC, update, MsgClass::Control);
            return;
        }
        let pending = self.incoming.entry(lock).or_insert_with(|| PendingInstall {
            from,
            epoch,
            msgs: Vec::new(),
        });
        pending.from = from;
        pending.epoch = epoch;
        // Bound the buffering window: the offerer commits only once the
        // lock goes free, which can take a full lease — but if the commit
        // never arrives (offerer died, lock never freed), the buffered
        // traffic must not be swallowed forever. On expiry it is
        // re-processed and redirects to whichever home is authoritative.
        sink.set_timer(
            timer_ns::COORD | MIGRATE_SUB | u64::from(lock.as_raw()),
            self.cfg.default_lease + self.cfg.heartbeat_timeout,
        );
        sink.send(
            from,
            ports::SYNC,
            Msg::MigrateAccept {
                lock,
                epoch,
                site: self.home,
                req,
            },
            MsgClass::Control,
        );
    }

    /// The candidate accepted: commit now if the lock is free, else at the
    /// next release that leaves it free.
    fn on_migrate_accept(
        &mut self,
        _now: SimTime,
        lock: LockId,
        epoch: u64,
        site: SiteId,
        sink: &mut CmdSink,
    ) {
        let Some(migration) = self.outgoing.get_mut(&lock) else {
            return; // aborted in the meantime
        };
        if migration.epoch != epoch || migration.target != site {
            return; // stale accept from an earlier attempt
        }
        migration.accepted = true;
        self.try_commit(lock, sink);
    }

    /// Commits an accepted migration if the lock is currently free. The
    /// commit-send IS the fence: this coordinator retires the lock state in
    /// the same step, so no acquire can ever be granted by both homes.
    fn try_commit(&mut self, lock: LockId, sink: &mut CmdSink) {
        let Some(migration) = self.outgoing.get(&lock).copied() else {
            return;
        };
        if !migration.accepted {
            return;
        }
        {
            let Some(state) = self.locks.get(&lock) else {
                self.outgoing.remove(&lock);
                return;
            };
            if !state.holders.is_empty() || !state.queue.is_empty() || state.recovery.is_some() {
                return; // busy again; retried at the next release
            }
        }
        self.outgoing.remove(&lock);
        let req = self.fresh_req();
        let OutgoingMigration { target, epoch, .. } = migration;
        let msg = {
            let Some(state) = self.locks.get(&lock) else {
                return;
            };
            Msg::MigrateCommit {
                lock,
                epoch,
                version: state.version,
                last_owner: state.last_owner,
                members: state.members.iter().copied().collect(),
                up_to_date: state.up_to_date.iter().copied().collect(),
                site_versions: state.site_versions.iter().map(|(s, v)| (*s, *v)).collect(),
                replicas: state.replicas.iter().copied().collect(),
                req,
            }
        };
        self.stats.migrations += 1;
        if self.cfg.faults.active().commit_unfenced {
            // Mutant-harness hook: skip the fence — keep serving the lock
            // after handing its home away, so both coordinators own it and
            // the per-lock split-home invariant can be shown to fire.
            sink.note(format!(
                "MUTANT commit_unfenced: {lock} committed to {target} without retiring"
            ));
        } else if let Some(state) = self.locks.remove(&lock) {
            self.retired.insert(lock, (epoch, state));
            if let Some(dir) = self.dir.as_mut() {
                dir.record(lock, target, epoch);
            }
            sink.note(format!("home of {lock} migrated to {target} (epoch {epoch})"));
        }
        sink.send_tagged(
            target,
            ports::SYNC,
            msg,
            MsgClass::Control,
            SendTag::Migrate {
                lock,
                site: target,
                epoch,
            },
        );
    }

    /// Installs a lock whose home was migrated here, gossips the new
    /// placement, and drains any traffic buffered during the handshake.
    #[allow(clippy::too_many_arguments)]
    fn on_migrate_commit(
        &mut self,
        now: SimTime,
        from: SiteId,
        lock: LockId,
        epoch: u64,
        version: Version,
        last_owner: Option<SiteId>,
        members: &[SiteId],
        up_to_date: &[SiteId],
        site_versions: &[(SiteId, Version)],
        replicas: &[ReplicaId],
        sink: &mut CmdSink,
    ) {
        sink.cancel_timer(timer_ns::COORD | MIGRATE_SUB | u64::from(lock.as_raw()));
        let Some(current_epoch) = self.dir.as_ref().map(|d| d.epoch_of(lock)) else {
            sink.note(format!(
                "ignoring migrate commit for {lock} from {from}: not in hash-directory mode"
            ));
            return;
        };
        // Epoch fence: a delayed or replayed commit must never re-install
        // state at a site the directory has since moved past — that would
        // recreate exactly the split-home condition the fence prevents.
        // (An equal epoch with state already installed is a duplicate of a
        // commit we applied; only the fence re-ack is worth resending.)
        let stale =
            epoch < current_epoch || (epoch == current_epoch && self.locks.contains_key(&lock));
        if stale {
            sink.note(format!(
                "stale migrate commit for {lock} from {from} (epoch {epoch} < {current_epoch}); redirecting"
            ));
            let authoritative = self
                .dir
                .as_ref()
                .and_then(|d| d.home_of(lock))
                .unwrap_or(self.home);
            let update = Msg::HomeUpdate {
                lock,
                home: authoritative,
                epoch: current_epoch,
            };
            sink.send(from, ports::DAEMON, update.clone(), MsgClass::Control);
            sink.send(from, ports::SYNC, update, MsgClass::Control);
            // Anything buffered for this dead handshake re-routes to the
            // authoritative home.
            if let Some(pending) = self.incoming.remove(&lock) {
                for (buffered_from, buffered_msg) in pending.msgs {
                    self.on_msg(now, buffered_from, buffered_msg, sink);
                }
            }
            return;
        }
        let mut state = LockState {
            version,
            last_owner,
            ..LockState::default()
        };
        state.members.extend(members.iter().copied());
        state.up_to_date.extend(up_to_date.iter().copied());
        state
            .site_versions
            .extend(site_versions.iter().copied());
        state.replicas.extend(replicas.iter().copied());
        self.locks.insert(lock, state);
        if let Some(dir) = self.dir.as_mut() {
            dir.record(lock, self.home, epoch);
        }
        // Gossip the new placement to every member daemon and coordinator,
        // and always to the committer — receiving it is its fence ack.
        let mut targets: BTreeSet<SiteId> = members.iter().copied().collect();
        targets.insert(from);
        targets.remove(&self.home);
        for target in targets {
            let update = Msg::HomeUpdate {
                lock,
                home: self.home,
                epoch,
            };
            sink.send(target, ports::DAEMON, update.clone(), MsgClass::Control);
            sink.send(target, ports::SYNC, update, MsgClass::Control);
        }
        if let Some(pending) = self.incoming.remove(&lock) {
            for (buffered_from, buffered_msg) in pending.msgs {
                self.on_msg(now, buffered_from, buffered_msg, sink);
            }
        }
    }

    /// Directory gossip: a lock's home moved. Also serves as the fence ack
    /// releasing any retired state held against commit-send failure — but
    /// only at or above the epoch the retirement was fenced at: a
    /// reordered `HomeUpdate` from an *earlier* migration of the same lock
    /// must not discard the fallback of a newer in-flight commit.
    fn on_home_update(&mut self, lock: LockId, home: SiteId, epoch: u64) {
        if home != self.home
            && self
                .retired
                .get(&lock)
                .is_some_and(|(fence, _)| epoch >= *fence)
        {
            self.retired.remove(&lock);
        }
        if let Some(dir) = self.dir.as_mut() {
            dir.record(lock, home, epoch);
        }
    }

    fn on_poll_response(
        &mut self,
        now: SimTime,
        lock: LockId,
        version: Version,
        site: SiteId,
        req: RequestId,
        sink: &mut CmdSink,
    ) {
        let Some(state) = self.locks.get_mut(&lock) else {
            return;
        };
        let Some(recovery) = state.recovery.as_mut() else {
            return;
        };
        if recovery.req != req {
            return; // stale poll answer
        }
        recovery.responses.push((site, version));
        if recovery.responses.len() >= recovery.expected {
            sink.cancel_timer(timer_ns::COORD | RECOVERY_SUB | u64::from(lock.as_raw()));
            self.finish_recovery(now, lock, sink);
        }
    }

    fn on_heartbeat_ack(
        &mut self,
        now: SimTime,
        site: SiteId,
        req: RequestId,
        holding: bool,
        sink: &mut CmdSink,
    ) {
        let Some((lock, suspect)) = self.pending_heartbeats.remove(&req) else {
            return;
        };
        debug_assert_eq!(site, suspect);
        let token = timer_ns::COORD | HEARTBEAT_SUB | req.as_raw();
        self.heartbeat_timers.remove(&token);
        sink.cancel_timer(token);
        if holding {
            // The owner is alive and still working: extend its lease one
            // more period.
            if let Some(state) = self.locks.get_mut(&lock) {
                for owner in &mut state.holders {
                    if owner.who.site == site {
                        owner.suspected = false;
                        owner.deadline = now + owner.who.lease;
                    }
                }
            }
        } else {
            // Phantom hold: the site is alive but no longer holds the
            // lock — its release was lost (e.g. with a dead coordinator).
            // Treat it as released without penalising the site.
            sink.note(format!(
                "phantom hold of {lock} at {site}: release was lost; clearing"
            ));
            if let Some(state) = self.locks.get_mut(&lock) {
                if let Some(idx) = state.holders.iter().position(|h| h.who.site == site) {
                    state.holders.swap_remove(idx);
                    // The site still has the data it wrote.
                    state.up_to_date.insert(site);
                    state.site_versions.insert(site, state.version);
                    if state.last_owner.is_none() {
                        state.last_owner = Some(site);
                    }
                }
            }
            self.grant_next_batch(now, lock, sink);
        }
    }

    /// Handles a coordinator timer. Returns `true` if the token belonged
    /// to this component.
    pub fn on_timer(&mut self, now: SimTime, token: u64, sink: &mut CmdSink) -> bool {
        if timer_ns::of(token) != timer_ns::COORD {
            return false;
        }
        if token == SCAN_TOKEN {
            self.scan_leases(now, sink);
            return true;
        }
        if token & HEARTBEAT_SUB != 0 {
            if let Some(req) = self.heartbeat_timers.remove(&token) {
                if let Some((lock, site)) = self.pending_heartbeats.remove(&req) {
                    // Heartbeat unanswered: the owner is dead.
                    self.break_lock(now, lock, site, sink);
                }
            }
            return true;
        }
        if token & MIGRATE_SUB != 0 {
            // An incoming handshake's commit never arrived: stop buffering
            // and re-process the held traffic (it re-routes to whichever
            // home is authoritative; a late commit can still install).
            let lock = LockId((token & 0xffff_ffff) as u32);
            if let Some(pending) = self.incoming.remove(&lock) {
                sink.note(format!(
                    "migrate commit for {lock} from {from} never arrived; releasing {n} buffered message(s)",
                    from = pending.from,
                    n = pending.msgs.len()
                ));
                for (from, msg) in pending.msgs {
                    self.on_msg(now, from, msg, sink);
                }
            }
            return true;
        }
        if token & RECOVERY_SUB != 0 {
            let lock = LockId((token & 0xffff_ffff) as u32);
            self.finish_recovery(now, lock, sink);
            return true;
        }
        true
    }

    /// Periodic lease scan: suspect owners that have held their lock past
    /// the declared lease, and confirm with a heartbeat (paper §4: "the
    /// synchronization thread can confirm this suspicion by sending a
    /// 'heartbeat' message").
    fn scan_leases(&mut self, now: SimTime, sink: &mut CmdSink) {
        sink.charge(Work::events(1));
        let mut to_probe = Vec::new();
        for (lock, state) in &mut self.locks {
            for owner in &mut state.holders {
                if !owner.suspected && now > owner.deadline {
                    owner.suspected = true;
                    to_probe.push((*lock, owner.who.site));
                }
            }
        }
        for (lock, site) in to_probe {
            let req = self.fresh_req();
            self.pending_heartbeats.insert(req, (lock, site));
            let token = timer_ns::COORD | HEARTBEAT_SUB | req.as_raw();
            self.heartbeat_timers.insert(token, req);
            sink.send_tagged(
                site,
                ports::APP,
                Msg::Heartbeat { lock, req },
                MsgClass::Control,
                SendTag::Heartbeat { lock, site, req },
            );
            sink.set_timer(token, self.cfg.heartbeat_timeout);
        }
        // Keep scanning only while some lock is held; otherwise go idle
        // (the next grant re-arms the scan). This lets simulations
        // quiesce.
        if self.locks.values().any(|l| !l.holders.is_empty()) {
            sink.set_timer(SCAN_TOKEN, self.cfg.lease_scan_interval);
        } else {
            self.scan_running = false;
        }
    }

    /// Breaks a lock whose owner failed: blacklists the owner, revokes its
    /// grant, and passes the lock (with the freshest surviving data) to
    /// the next waiter.
    fn break_lock(&mut self, now: SimTime, lock: LockId, dead: SiteId, sink: &mut CmdSink) {
        let Some(state) = self.locks.get_mut(&lock) else {
            return;
        };
        let Some(idx) = state.holders.iter().position(|h| h.who.site == dead) else {
            return; // released in the meantime
        };
        self.stats.locks_broken += 1;
        state.holders.swap_remove(idx);
        let version = state.version;
        self.fail_site_in_lock(lock, dead);
        self.blacklist.insert(dead);
        // A live-but-slow owner must learn its grant is void.
        sink.send(
            dead,
            ports::APP,
            Msg::LockRevoked { lock, version },
            MsgClass::Control,
        );
        sink.note(format!("broke {lock}: owner {dead} presumed failed"));
        self.grant_next_batch(now, lock, sink);
    }

    /// Removes a failed site from a lock's membership and freshness sets.
    fn fail_site_in_lock(&mut self, lock: LockId, dead: SiteId) {
        let Some(state) = self.locks.get_mut(&lock) else {
            return;
        };
        state.members.remove(&dead);
        state.up_to_date.remove(&dead);
        state.site_versions.remove(&dead);
        state.heat.remove(&dead);
        if state.last_owner == Some(dead) {
            state.last_owner = state.up_to_date.iter().copied().next();
        }
    }

    /// Called by the driver when a tagged send failed at the transport
    /// level (the §4 timeout detections).
    pub fn on_send_failed(&mut self, now: SimTime, tag: &SendTag, sink: &mut CmdSink) {
        match tag {
            SendTag::TransferDirective {
                lock, from, dest, ..
            } => {
                sink.note(format!(
                    "transfer directive to {from} for {lock} timed out; recovering"
                ));
                self.fail_site_in_lock(*lock, *from);
                self.start_recovery(*lock, *dest, sink);
            }
            SendTag::Heartbeat { lock, site, req } => {
                let token = timer_ns::COORD | HEARTBEAT_SUB | req.as_raw();
                self.heartbeat_timers.remove(&token);
                self.pending_heartbeats.remove(req);
                sink.cancel_timer(token);
                self.break_lock(now, *lock, *site, sink);
            }
            SendTag::Migrate { lock, site, epoch } => {
                // The counterpart coordinator is unreachable. An offer (or
                // unacked commit-retry window) simply aborts; a fenced
                // commit reinstates the retired lock here, re-recording
                // this site as home under a fresher epoch so the failed
                // fence can never win. Only the retirement fenced at THIS
                // attempt's epoch is reinstated — a stale tag must not
                // resurrect state a newer migration already moved.
                self.outgoing.remove(lock);
                match self.retired.remove(lock) {
                    Some((fence, state)) if fence == *epoch => {
                        sink.note(format!(
                            "migrate commit of {lock} to {site} failed; reinstating home here"
                        ));
                        self.locks.insert(*lock, state);
                        if let Some(dir) = self.dir.as_mut() {
                            dir.record(*lock, self.home, epoch + 1);
                        }
                    }
                    Some(other) => {
                        // A different attempt's retirement: put it back.
                        self.retired.insert(*lock, other);
                        sink.note(format!(
                            "stale migrate failure for {lock} (epoch {epoch}) ignored"
                        ));
                    }
                    None => {
                        sink.note(format!("migrate offer of {lock} to {site} failed; aborted"));
                    }
                }
                self.fail_site_in_lock(*lock, *site);
            }
            _ => {}
        }
    }

    /// Polls every member daemon for its newest version of `lock`'s
    /// replicas, so the freshest surviving copy can be forwarded to
    /// `dest`.
    fn start_recovery(&mut self, lock: LockId, dest: SiteId, sink: &mut CmdSink) {
        let req = self.fresh_req();
        let window = self.cfg.recovery_poll_window;
        let Some(state) = self.locks.get_mut(&lock) else {
            sink.note(format!("recovery for unknown {lock} dropped"));
            return;
        };
        if state.recovery.is_some() {
            return; // already recovering; the grantee will be served by it
        }
        self.stats.recoveries += 1;
        let members: Vec<SiteId> = state.members.iter().copied().collect();
        state.recovery = Some(Recovery {
            req,
            dest,
            responses: Vec::new(),
            expected: members.len(),
            rebuild: false,
        });
        for m in &members {
            sink.send(
                *m,
                ports::DAEMON,
                Msg::PollVersion { lock, req },
                MsgClass::Control,
            );
        }
        sink.set_timer(
            timer_ns::COORD | RECOVERY_SUB | u64::from(lock.as_raw()),
            window,
        );
    }

    /// Starts the state-rebuild poll for a rebuilt lock (directory mode):
    /// every known member daemon is asked for its newest version, and the
    /// queued grants wait until `finish_recovery` adopts the freshest
    /// surviving answer — this is how a coordinator that inherited a lock
    /// through churn avoids calling stale replicas current.
    fn start_rebuild(&mut self, lock: LockId, sink: &mut CmdSink) {
        let req = self.fresh_req();
        let window = self.cfg.recovery_poll_window;
        let me = self.home;
        let Some(state) = self.locks.get_mut(&lock) else {
            return;
        };
        if state.recovery.is_some() {
            return; // poll already running; queued grants ride on it
        }
        self.stats.recoveries += 1;
        sink.note(format!(
            "rebuilding {lock} at {me}: polling members for the freshest surviving version"
        ));
        let members: Vec<SiteId> = state.members.iter().copied().collect();
        state.recovery = Some(Recovery {
            req,
            dest: me,
            responses: Vec::new(),
            expected: members.len(),
            rebuild: true,
        });
        for m in &members {
            sink.send(
                *m,
                ports::DAEMON,
                Msg::PollVersion { lock, req },
                MsgClass::Control,
            );
        }
        sink.set_timer(
            timer_ns::COORD | RECOVERY_SUB | u64::from(lock.as_raw()),
            window,
        );
    }

    /// Concludes a recovery with whatever poll responses arrived.
    fn finish_recovery(&mut self, now: SimTime, lock: LockId, sink: &mut CmdSink) {
        let Some(state) = self.locks.get_mut(&lock) else {
            return;
        };
        let Some(recovery) = state.recovery.take() else {
            return;
        };
        if recovery.rebuild {
            // State-rebuild poll (directory mode): adopt the freshest
            // surviving version as current, remember who has it, then let
            // the deferred grants through. A silent majority only weakens
            // what the §4 model already concedes — the freshest *answering*
            // replica defines current.
            let best = recovery.responses.iter().max_by_key(|(_, v)| *v).copied();
            if let Some((site, version)) = best {
                if version > state.version {
                    state.version = version;
                    state.last_owner = Some(site);
                    state.up_to_date.clear();
                }
            }
            for (site, version) in &recovery.responses {
                state.site_versions.insert(*site, *version);
                if *version == state.version && state.version > Version::INITIAL {
                    state.up_to_date.insert(*site);
                }
            }
            state.rebuilt = false;
            let adopted = state.version;
            sink.note(format!(
                "rebuilt {lock} from {0} member answers: adopted version {adopted}",
                recovery.responses.len()
            ));
            self.grant_next_batch(now, lock, sink);
            return;
        }
        let expected_version = state.version;
        let best = recovery
            .responses
            .iter()
            .filter(|(site, _)| *site != recovery.dest)
            .max_by_key(|(_, v)| *v)
            .copied();
        let dest_version = recovery
            .responses
            .iter()
            .find(|(site, _)| *site == recovery.dest)
            .map(|(_, v)| *v);
        match best {
            Some((site, version))
                if version > Version::INITIAL
                    && version >= dest_version.unwrap_or(Version::INITIAL) =>
            {
                if version < expected_version {
                    self.stats.stale_recoveries += 1;
                    sink.note(format!(
                        "recovery of {lock}: freshest surviving version {version} < expected {expected_version} (weakened consistency)"
                    ));
                    // The lost newer version is gone for good; adopt the
                    // surviving one as current so the system converges.
                    state.version = version;
                }
                state.last_owner = Some(site);
                state.up_to_date.insert(site);
                state.site_versions.insert(site, state.version);
                let req = recovery.req;
                let dest = recovery.dest;
                sink.send_tagged(
                    site,
                    ports::DAEMON,
                    Msg::TransferReplica {
                        lock,
                        dest,
                        version,
                        req,
                    },
                    MsgClass::Control,
                    SendTag::TransferDirective {
                        lock,
                        from: site,
                        dest,
                        req,
                    },
                );
            }
            _ => {
                // No surviving copy anywhere (or the grantee itself holds
                // the best one): unblock the grantee with what it has.
                let version = dest_version.unwrap_or(Version::INITIAL);
                if version < expected_version {
                    self.stats.stale_recoveries += 1;
                    state.version = version;
                }
                sink.note(format!(
                    "recovery of {lock}: no fresher copy available; {0} proceeds with local state",
                    recovery.dest
                ));
                sink.send(
                    recovery.dest,
                    ports::DAEMON,
                    Msg::ReplicaData {
                        lock,
                        version,
                        updates: Vec::new(),
                        req: recovery.req,
                    },
                    MsgClass::Control,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::Cmd;

    const HOME: SiteId = SiteId(0);
    const S1: SiteId = SiteId(1);
    const S2: SiteId = SiteId(2);
    const T0: ThreadId = ThreadId(0);
    const L: LockId = LockId(1);

    fn coord() -> SyncCoordinator {
        SyncCoordinator::new(HOME, MochaConfig::default())
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + Duration::from_millis(ms)
    }

    fn acquire(site: SiteId) -> Msg {
        Msg::AcquireLock {
            lock: L,
            site,
            thread: T0,
            lease_hint_ms: 0,
            mode: LockMode::Exclusive,
        }
    }

    fn acquire_shared(site: SiteId) -> Msg {
        Msg::AcquireLock {
            lock: L,
            site,
            thread: T0,
            lease_hint_ms: 0,
            mode: LockMode::Shared,
        }
    }

    fn release(site: SiteId, v: u64) -> Msg {
        Msg::ReleaseLock {
            lock: L,
            site,
            new_version: Version(v),
            disseminated_to: vec![],
        }
    }

    /// Extracts (to, msg) pairs from sink commands.
    fn sends(sink: &mut CmdSink) -> Vec<(SiteId, Msg)> {
        sink.drain()
            .into_iter()
            .filter_map(|c| match c {
                Cmd::Send { to, msg, .. } => Some((to, msg)),
                _ => None,
            })
            .collect()
    }

    fn grant_flag(msgs: &[(SiteId, Msg)], to: SiteId) -> Option<VersionFlag> {
        msgs.iter().find_map(|(site, m)| match m {
            Msg::Grant { flag, .. } if *site == to => Some(*flag),
            _ => None,
        })
    }

    #[test]
    fn release_records_per_site_versions() {
        let mut c = coord();
        let mut sink = CmdSink::new();
        c.on_msg(t(0), S1, acquire(S1), &mut sink);
        sink.drain();
        // S1 wrote v1 and pushed it to S2.
        c.on_msg(
            t(1),
            S1,
            Msg::ReleaseLock {
                lock: L,
                site: S1,
                new_version: Version(1),
                disseminated_to: vec![S2],
            },
            &mut sink,
        );
        assert_eq!(c.site_version(L, S1), Some(Version(1)));
        assert_eq!(c.site_version(L, S2), Some(Version(1)));
        assert_eq!(c.site_version(L, HOME), None);
        // S2 writes v2 without dissemination: its record advances, S1's
        // stays at the version it last held.
        c.on_msg(t(2), S2, acquire(S2), &mut sink);
        sink.drain();
        c.on_msg(t(3), S2, release(S2, 2), &mut sink);
        assert_eq!(c.site_version(L, S2), Some(Version(2)));
        assert_eq!(c.site_version(L, S1), Some(Version(1)));
        assert_eq!(c.site_version(L, SiteId(9)), None);
    }

    #[test]
    fn first_acquire_grants_immediately_with_version_ok() {
        let mut c = coord();
        let mut sink = CmdSink::new();
        c.on_msg(t(0), S1, acquire(S1), &mut sink);
        let msgs = sends(&mut sink);
        assert_eq!(grant_flag(&msgs, S1), Some(VersionFlag::VersionOk));
        assert_eq!(c.lock_owner(L), Some(S1));
        assert_eq!(c.stats().grants, 1);
        assert_eq!(c.stats().grants_with_transfer, 0);
    }

    #[test]
    fn second_acquire_queues_until_release() {
        let mut c = coord();
        let mut sink = CmdSink::new();
        c.on_msg(t(0), S1, acquire(S1), &mut sink);
        sink.drain();
        c.on_msg(t(1), S2, acquire(S2), &mut sink);
        assert!(sends(&mut sink).is_empty(), "S2 should be queued");
        c.on_msg(t(2), S1, release(S1, 1), &mut sink);
        let msgs = sends(&mut sink);
        // S2 was never up to date and version advanced: needs data.
        assert_eq!(grant_flag(&msgs, S2), Some(VersionFlag::NeedNewVersion));
        // A transfer directive went to the last owner's daemon.
        assert!(msgs
            .iter()
            .any(|(to, m)| *to == S1
                && matches!(m, Msg::TransferReplica { dest, .. } if *dest == S2)));
        assert_eq!(c.lock_owner(L), Some(S2));
    }

    #[test]
    fn reacquire_by_last_owner_needs_no_transfer() {
        let mut c = coord();
        let mut sink = CmdSink::new();
        c.on_msg(t(0), S1, acquire(S1), &mut sink);
        sink.drain();
        c.on_msg(t(1), S1, release(S1, 1), &mut sink);
        sink.drain();
        c.on_msg(t(2), S1, acquire(S1), &mut sink);
        let msgs = sends(&mut sink);
        assert_eq!(grant_flag(&msgs, S1), Some(VersionFlag::VersionOk));
        assert_eq!(c.stats().grants_with_transfer, 0);
    }

    #[test]
    fn dissemination_set_counts_as_up_to_date() {
        let mut c = coord();
        let mut sink = CmdSink::new();
        c.on_msg(t(0), S1, acquire(S1), &mut sink);
        sink.drain();
        // S1 releases having pushed to S2 (UR = 2).
        c.on_msg(
            t(1),
            S1,
            Msg::ReleaseLock {
                lock: L,
                site: S1,
                new_version: Version(1),
                disseminated_to: vec![S2],
            },
            &mut sink,
        );
        sink.drain();
        c.on_msg(t(2), S2, acquire(S2), &mut sink);
        let msgs = sends(&mut sink);
        // S2 already holds the current version: no transfer needed.
        assert_eq!(grant_flag(&msgs, S2), Some(VersionFlag::VersionOk));
        assert_eq!(c.stats().grants_with_transfer, 0);
    }

    #[test]
    fn read_only_release_keeps_version_and_freshness() {
        let mut c = coord();
        let mut sink = CmdSink::new();
        c.on_msg(t(0), S1, acquire(S1), &mut sink);
        sink.drain();
        c.on_msg(t(1), S1, release(S1, 1), &mut sink);
        sink.drain();
        c.on_msg(t(2), S2, acquire(S2), &mut sink);
        sink.drain();
        // S2 releases without writing (same version).
        c.on_msg(t(3), S2, release(S2, 1), &mut sink);
        sink.drain();
        assert_eq!(c.lock_version(L), Some(Version(1)));
        // Now both S1 and S2 are up to date; S2 re-acquiring needs nothing.
        c.on_msg(t(4), S2, acquire(S2), &mut sink);
        let msgs = sends(&mut sink);
        assert_eq!(grant_flag(&msgs, S2), Some(VersionFlag::VersionOk));
    }

    #[test]
    fn fifo_order_among_queued_requesters() {
        let mut c = coord();
        let mut sink = CmdSink::new();
        c.on_msg(t(0), S1, acquire(S1), &mut sink);
        sink.drain();
        c.on_msg(t(1), S2, acquire(S2), &mut sink);
        let s3 = SiteId(3);
        c.on_msg(t(2), s3, acquire(s3), &mut sink);
        sink.drain();
        c.on_msg(t(3), S1, release(S1, 1), &mut sink);
        sink.drain();
        assert_eq!(c.lock_owner(L), Some(S2));
        c.on_msg(t(4), S2, release(S2, 2), &mut sink);
        sink.drain();
        assert_eq!(c.lock_owner(L), Some(s3));
    }

    #[test]
    fn stale_release_after_break_is_ignored() {
        let cfg = MochaConfig {
            default_lease: Duration::from_millis(100),
            ..MochaConfig::default()
        };
        let mut c = SyncCoordinator::new(HOME, cfg);
        let mut sink = CmdSink::new();
        c.on_msg(t(0), S1, acquire(S1), &mut sink);
        c.on_msg(t(1), S2, acquire(S2), &mut sink);
        sink.drain();
        // Lease expires; scan suspects S1.
        c.on_timer(t(700), SCAN_TOKEN, &mut sink);
        let msgs = sends(&mut sink);
        let hb_req = msgs
            .iter()
            .find_map(|(to, m)| match m {
                Msg::Heartbeat { req, .. } if *to == S1 => Some(*req),
                _ => None,
            })
            .expect("heartbeat sent");
        // Heartbeat times out.
        let token = timer_ns::COORD | HEARTBEAT_SUB | hb_req.as_raw();
        c.on_timer(t(1600), token, &mut sink);
        let msgs = sends(&mut sink);
        assert_eq!(c.stats().locks_broken, 1);
        assert!(c.blacklist().any(|s| s == S1));
        // S2 got the lock.
        assert!(grant_flag(&msgs, S2).is_some());
        assert_eq!(c.lock_owner(L), Some(S2));
        // S1's belated release changes nothing.
        c.on_msg(t(1700), S1, release(S1, 99), &mut sink);
        assert_eq!(c.lock_owner(L), Some(S2));
        assert_ne!(c.lock_version(L), Some(Version(99)));
        // And S1 can no longer acquire.
        c.on_msg(t(1800), S1, acquire(S1), &mut sink);
        assert!(c.stats().blacklisted_requests >= 1);
    }

    #[test]
    fn heartbeat_ack_extends_lease_instead_of_breaking() {
        let cfg = MochaConfig {
            default_lease: Duration::from_millis(100),
            ..MochaConfig::default()
        };
        let mut c = SyncCoordinator::new(HOME, cfg);
        let mut sink = CmdSink::new();
        c.on_msg(t(0), S1, acquire(S1), &mut sink);
        sink.drain();
        c.on_timer(t(700), SCAN_TOKEN, &mut sink);
        let msgs = sends(&mut sink);
        let hb_req = msgs
            .iter()
            .find_map(|(_, m)| match m {
                Msg::Heartbeat { req, .. } => Some(*req),
                _ => None,
            })
            .expect("heartbeat sent");
        // Owner answers in time.
        c.on_msg(
            t(750),
            S1,
            Msg::HeartbeatAck {
                site: S1,
                req: hb_req,
                holding: true,
            },
            &mut sink,
        );
        sink.drain();
        // The (now stale) heartbeat timer fires but must not break.
        let token = timer_ns::COORD | HEARTBEAT_SUB | hb_req.as_raw();
        c.on_timer(t(1600), token, &mut sink);
        assert_eq!(c.stats().locks_broken, 0);
        assert_eq!(c.lock_owner(L), Some(S1));
    }

    #[test]
    fn transfer_source_failure_starts_recovery_and_polls() {
        let mut c = coord();
        let mut sink = CmdSink::new();
        // Register three members so there is someone to poll.
        for (s, r) in [(S1, 1u32), (S2, 1), (HOME, 1)] {
            c.on_msg(
                t(0),
                s,
                Msg::RegisterReplica {
                    lock: L,
                    replica: ReplicaId(r),
                    site: s,
                    name: "x".into(),
                },
                &mut sink,
            );
        }
        sink.drain();
        c.on_msg(t(1), S1, acquire(S1), &mut sink);
        sink.drain();
        c.on_msg(t(2), S1, release(S1, 1), &mut sink);
        sink.drain();
        c.on_msg(t(3), S2, acquire(S2), &mut sink);
        sink.drain();
        // The directive to S1 fails (S1 died).
        let tag = SendTag::TransferDirective {
            lock: L,
            from: S1,
            dest: S2,
            req: RequestId(1),
        };
        c.on_send_failed(t(4), &tag, &mut sink);
        let msgs = sends(&mut sink);
        let polls: Vec<SiteId> = msgs
            .iter()
            .filter_map(|(to, m)| match m {
                Msg::PollVersion { .. } => Some(*to),
                _ => None,
            })
            .collect();
        // S1 was removed from membership; remaining members are polled.
        assert!(!polls.contains(&S1));
        assert!(polls.contains(&S2) && polls.contains(&HOME));
        assert_eq!(c.stats().recoveries, 1);
    }

    #[test]
    fn recovery_forwards_freshest_surviving_version() {
        let mut c = coord();
        let mut sink = CmdSink::new();
        for s in [HOME, S1, S2] {
            c.on_msg(
                t(0),
                s,
                Msg::RegisterReplica {
                    lock: L,
                    replica: ReplicaId(1),
                    site: s,
                    name: "x".into(),
                },
                &mut sink,
            );
        }
        c.on_msg(t(1), S1, acquire(S1), &mut sink);
        sink.drain();
        c.on_msg(t(2), S1, release(S1, 5), &mut sink);
        sink.drain();
        c.on_msg(t(3), S2, acquire(S2), &mut sink);
        sink.drain();
        c.on_send_failed(
            t(4),
            &SendTag::TransferDirective {
                lock: L,
                from: S1,
                dest: S2,
                req: RequestId(1),
            },
            &mut sink,
        );
        // Find the poll request id.
        let msgs = sends(&mut sink);
        let poll_req = msgs
            .iter()
            .find_map(|(_, m)| match m {
                Msg::PollVersion { req, .. } => Some(*req),
                _ => None,
            })
            .expect("polls sent");
        // HOME answers with version 3 (older than the lost 5), S2 with 0.
        c.on_msg(
            t(5),
            HOME,
            Msg::PollResponse {
                lock: L,
                version: Version(3),
                site: HOME,
                req: poll_req,
            },
            &mut sink,
        );
        sink.drain();
        c.on_msg(
            t(6),
            S2,
            Msg::PollResponse {
                lock: L,
                version: Version(0),
                site: S2,
                req: poll_req,
            },
            &mut sink,
        );
        let msgs = sends(&mut sink);
        // The freshest available (HOME at v3) is told to transfer to S2.
        assert!(msgs
            .iter()
            .any(|(to, m)| *to == HOME
                && matches!(m, Msg::TransferReplica { dest, .. } if *dest == S2)));
        assert_eq!(c.stats().stale_recoveries, 1);
        // The adopted version is the surviving one.
        assert_eq!(c.lock_version(L), Some(Version(3)));
    }

    #[test]
    fn recovery_with_no_copies_unblocks_dest_with_empty_data() {
        let mut c = coord();
        let mut sink = CmdSink::new();
        for s in [S1, S2] {
            c.on_msg(
                t(0),
                s,
                Msg::RegisterReplica {
                    lock: L,
                    replica: ReplicaId(1),
                    site: s,
                    name: "x".into(),
                },
                &mut sink,
            );
        }
        c.on_msg(t(1), S1, acquire(S1), &mut sink);
        sink.drain();
        c.on_msg(t(2), S1, release(S1, 5), &mut sink);
        sink.drain();
        c.on_msg(t(3), S2, acquire(S2), &mut sink);
        sink.drain();
        c.on_send_failed(
            t(4),
            &SendTag::TransferDirective {
                lock: L,
                from: S1,
                dest: S2,
                req: RequestId(1),
            },
            &mut sink,
        );
        sink.drain();
        // Recovery window expires with no responses.
        let token = timer_ns::COORD | RECOVERY_SUB | u64::from(L.as_raw());
        c.on_timer(t(500), token, &mut sink);
        let msgs = sends(&mut sink);
        assert!(msgs.iter().any(|(to, m)| *to == S2
            && matches!(m, Msg::ReplicaData { updates, .. } if updates.is_empty())));
    }

    #[test]
    fn registration_propagates_membership_both_ways() {
        let mut c = coord();
        let mut sink = CmdSink::new();
        c.on_msg(
            t(0),
            S1,
            Msg::RegisterReplica {
                lock: L,
                replica: ReplicaId(7),
                site: S1,
                name: "idx".into(),
            },
            &mut sink,
        );
        assert!(sends(&mut sink).is_empty(), "first member: nobody to tell");
        c.on_msg(
            t(1),
            S2,
            Msg::RegisterReplica {
                lock: L,
                replica: ReplicaId(7),
                site: S2,
                name: "idx".into(),
            },
            &mut sink,
        );
        let msgs = sends(&mut sink);
        // S1 learns about S2 and vice versa.
        assert!(msgs
            .iter()
            .any(|(to, m)| *to == S1
                && matches!(m, Msg::RegisterReplica { site, .. } if *site == S2)));
        assert!(msgs
            .iter()
            .any(|(to, m)| *to == S2
                && matches!(m, Msg::RegisterReplica { site, .. } if *site == S1)));
        assert_eq!(c.lock_members(L), vec![S1, S2]);
    }

    #[test]
    fn lease_hint_overrides_default() {
        let mut c = coord();
        let mut sink = CmdSink::new();
        c.on_msg(
            t(0),
            S1,
            Msg::AcquireLock {
                lock: L,
                site: S1,
                thread: T0,
                lease_hint_ms: 50,
                mode: LockMode::Exclusive,
            },
            &mut sink,
        );
        sink.drain();
        // At t=100 the 50 ms lease has expired; scan should suspect.
        c.on_timer(t(100), SCAN_TOKEN, &mut sink);
        let msgs = sends(&mut sink);
        assert!(msgs.iter().any(|(_, m)| matches!(m, Msg::Heartbeat { .. })));
    }

    #[test]
    fn shared_grants_batch_and_block_exclusive() {
        let mut c = coord();
        let mut sink = CmdSink::new();
        // Two shared holders granted concurrently.
        c.on_msg(t(0), S1, acquire_shared(S1), &mut sink);
        c.on_msg(t(1), S2, acquire_shared(S2), &mut sink);
        let grants = sends(&mut sink)
            .iter()
            .filter(|(_, m)| matches!(m, Msg::Grant { .. }))
            .count();
        assert_eq!(grants, 2, "both shared requests granted immediately");
        assert_eq!(c.lock_holders(L).len(), 2);
        // An exclusive request queues behind them.
        let s3 = SiteId(3);
        c.on_msg(t(2), s3, acquire(s3), &mut sink);
        assert!(sends(&mut sink).is_empty());
        // Releases by both shared holders free it for the exclusive.
        c.on_msg(t(3), S1, release(S1, 0), &mut sink);
        assert!(sends(&mut sink).is_empty(), "one shared holder remains");
        c.on_msg(t(4), S2, release(S2, 0), &mut sink);
        let msgs = sends(&mut sink);
        assert!(grant_flag(&msgs, s3).is_some(), "exclusive granted last");
        assert_eq!(c.lock_holders(L), vec![s3]);
    }

    #[test]
    fn acquire_from_holding_site_with_other_thread_queues() {
        // Regression: a *different* thread at the holding site must queue,
        // not receive a duplicate grant (which would break mutual
        // exclusion). Only the exact (site, thread) holder is re-granted.
        let mut c = coord();
        let mut sink = CmdSink::new();
        c.on_msg(t(0), S1, acquire(S1), &mut sink); // thread T0 holds
        sink.drain();
        c.on_msg(
            t(1),
            S1,
            Msg::AcquireLock {
                lock: L,
                site: S1,
                thread: ThreadId(1), // different thread, same site
                lease_hint_ms: 0,
                mode: LockMode::Exclusive,
            },
            &mut sink,
        );
        assert!(sends(&mut sink).is_empty(), "must queue, not grant");
        assert_eq!(c.lock_holders(L), vec![S1]);
        // The exact holder re-asking (lost grant after takeover) IS
        // re-granted.
        c.on_msg(t(2), S1, acquire(S1), &mut sink); // same (S1, T0)
        let msgs = sends(&mut sink);
        assert!(msgs
            .iter()
            .any(|(to, m)| *to == S1 && matches!(m, Msg::Grant { .. })));
        // Still exactly one holder.
        assert_eq!(c.lock_holders(L), vec![S1]);
    }

    /// Delivers SYNC-port sends between the given coordinators until the
    /// cluster quiesces, collecting every other send as `(to, msg)` for
    /// inspection. Version polls addressed to member daemons are answered
    /// by a stand-in holding nothing (`Version::INITIAL`), so rebuild and
    /// recovery polls conclude instead of stalling the pump.
    fn pump(
        coords: &mut [SyncCoordinator],
        sinks: &mut [CmdSink],
        now: SimTime,
        observed: &mut Vec<(SiteId, Msg)>,
    ) {
        loop {
            let mut queue: Vec<(usize, SiteId, Msg)> = Vec::new();
            for i in 0..coords.len() {
                let from = coords[i].home();
                for cmd in sinks[i].drain() {
                    if let Cmd::Send { to, port, msg, .. } = cmd {
                        if port == ports::SYNC {
                            if let Some(j) = coords.iter().position(|c| c.home() == to) {
                                queue.push((j, from, msg));
                                continue;
                            }
                        }
                        if port == ports::DAEMON {
                            if let Msg::PollVersion { lock, req } = msg {
                                queue.push((
                                    i,
                                    to,
                                    Msg::PollResponse {
                                        lock,
                                        version: Version::INITIAL,
                                        site: to,
                                        req,
                                    },
                                ));
                                continue;
                            }
                        }
                        observed.push((to, msg));
                    }
                }
            }
            if queue.is_empty() {
                break;
            }
            for (j, from, msg) in queue {
                coords[j].on_msg(now, from, msg, &mut sinks[j]);
            }
        }
    }

    fn hash_cfg(threshold: u32) -> MochaConfig {
        let mut cfg = MochaConfig::default();
        cfg.home.hash_directory = true;
        cfg.home.migration = threshold > 0;
        if threshold > 0 {
            cfg.home.migrate_threshold = threshold;
        }
        cfg
    }

    fn hash_pair(threshold: u32) -> (Vec<SyncCoordinator>, Vec<CmdSink>, usize, usize) {
        let cfg = hash_cfg(threshold);
        let sites = [SiteId(0), SiteId(1)];
        let coords: Vec<SyncCoordinator> = sites
            .iter()
            .map(|s| SyncCoordinator::with_directory(*s, cfg, &sites))
            .collect();
        let sinks = vec![CmdSink::new(), CmdSink::new()];
        let home = coords[0].directory().unwrap().home_of(L).unwrap();
        let home_idx = home.0 as usize;
        (coords, sinks, home_idx, 1 - home_idx)
    }

    #[test]
    fn foreign_acquire_redirects_and_forwards() {
        let (mut coords, mut sinks, home_idx, other_idx) = hash_pair(0);
        let requester = SiteId(other_idx as u32); // any site works as sender
        // The acquire lands at the WRONG coordinator: it must NACK the
        // sender's stale directory entry and forward, and the true home
        // must still grant — correctness independent of directory
        // freshness.
        coords[other_idx].on_msg(t(0), requester, acquire(requester), &mut sinks[other_idx]);
        let mut observed = Vec::new();
        pump(&mut coords, &mut sinks, t(0), &mut observed);
        assert_eq!(coords[other_idx].stats().stale_home_redirects, 1);
        let home = coords[0].directory().unwrap().home_of(L).unwrap();
        assert!(observed.iter().any(|(to, m)| *to == requester
            && matches!(m, Msg::StaleHome { lock, home: h, .. } if *lock == L && *h == home)));
        assert!(observed
            .iter()
            .any(|(to, m)| *to == requester && matches!(m, Msg::Grant { .. })));
        assert_eq!(coords[home_idx].lock_owner(L), Some(requester));
        assert!(coords[other_idx].known_locks().is_empty());
    }

    #[test]
    fn hot_lock_migrates_to_dominating_site() {
        let (mut coords, mut sinks, home_idx, hot_idx) = hash_pair(2);
        let hot = SiteId(hot_idx as u32);
        let mut observed = Vec::new();
        // The remote site hammers the lock; every message is addressed to
        // the ORIGINAL home, exercising the post-fence redirect path too.
        for v in 1..=4u64 {
            coords[home_idx].on_msg(t(v), hot, acquire(hot), &mut sinks[home_idx]);
            pump(&mut coords, &mut sinks, t(v), &mut observed);
            coords[home_idx].on_msg(t(v), hot, release(hot, v), &mut sinks[home_idx]);
            pump(&mut coords, &mut sinks, t(v), &mut observed);
        }
        // The home role moved to the hot site, exactly once.
        assert_eq!(coords[home_idx].stats().migrations, 1);
        assert!(coords[home_idx].known_locks().is_empty());
        assert_eq!(coords[hot_idx].known_locks(), vec![L]);
        for c in &coords {
            assert_eq!(c.directory().unwrap().home_of(L), Some(hot));
            assert_eq!(c.directory().unwrap().epoch_of(L), 1);
        }
        // Post-fence traffic to the old home was redirected, not lost:
        // every acquire produced a grant.
        assert!(coords[home_idx].stats().stale_home_redirects >= 1);
        let grants = observed
            .iter()
            .filter(|(to, m)| *to == hot && matches!(m, Msg::Grant { .. }))
            .count();
        assert_eq!(grants, 4);
        // The migrated state carried versions across: the new home knows
        // the last committed version.
        assert_eq!(coords[hot_idx].lock_version(L), Some(Version(4)));
    }

    #[test]
    fn migration_waits_until_lock_is_free() {
        let (mut coords, mut sinks, home_idx, hot_idx) = hash_pair(2);
        let hot = SiteId(hot_idx as u32);
        let mut observed = Vec::new();
        // Build dominance but keep the lock held: re-acquires by the exact
        // holder re-grant without a release.
        coords[home_idx].on_msg(t(0), hot, acquire(hot), &mut sinks[home_idx]);
        pump(&mut coords, &mut sinks, t(0), &mut observed);
        for v in 1..=4u64 {
            coords[home_idx].on_msg(t(v), hot, acquire(hot), &mut sinks[home_idx]);
            pump(&mut coords, &mut sinks, t(v), &mut observed);
        }
        // Held throughout: no migration can have committed.
        assert_eq!(coords[home_idx].stats().migrations, 0);
        assert_eq!(coords[home_idx].lock_owner(L), Some(hot));
        // The release frees the lock and the pending dominance lands it.
        coords[home_idx].on_msg(t(9), hot, release(hot, 1), &mut sinks[home_idx]);
        pump(&mut coords, &mut sinks, t(9), &mut observed);
        assert_eq!(coords[home_idx].stats().migrations, 1);
        assert_eq!(coords[hot_idx].known_locks(), vec![L]);
    }

    #[test]
    fn failed_commit_send_reinstates_retired_lock() {
        let (mut coords, mut sinks, home_idx, hot_idx) = hash_pair(2);
        let hot = SiteId(hot_idx as u32);
        let home = SiteId(home_idx as u32);
        let mut observed = Vec::new();
        coords[home_idx].on_msg(t(1), hot, acquire(hot), &mut sinks[home_idx]);
        pump(&mut coords, &mut sinks, t(1), &mut observed);
        coords[home_idx].on_msg(t(1), hot, release(hot, 1), &mut sinks[home_idx]);
        pump(&mut coords, &mut sinks, t(1), &mut observed);
        coords[home_idx].on_msg(t(2), hot, acquire(hot), &mut sinks[home_idx]);
        pump(&mut coords, &mut sinks, t(2), &mut observed);
        // The second release crosses the threshold: step the handshake by
        // hand so the commit can be failed before delivery.
        coords[home_idx].on_msg(t(2), hot, release(hot, 2), &mut sinks[home_idx]);
        let offer = sinks[home_idx]
            .drain()
            .into_iter()
            .find_map(|c| match c {
                Cmd::Send {
                    msg: m @ Msg::MigrateOffer { .. },
                    ..
                } => Some(m),
                _ => None,
            })
            .expect("offer sent");
        coords[hot_idx].on_msg(t(2), home, offer, &mut sinks[hot_idx]);
        let accept = sinks[hot_idx]
            .drain()
            .into_iter()
            .find_map(|c| match c {
                Cmd::Send {
                    msg: m @ Msg::MigrateAccept { .. },
                    ..
                } => Some(m),
                _ => None,
            })
            .expect("accept sent");
        coords[home_idx].on_msg(t(2), hot, accept, &mut sinks[home_idx]);
        // The fence is down: the lock is retired at the old home...
        assert!(coords[home_idx].known_locks().is_empty());
        // ...but the commit send fails — the new home just died.
        let tag = sinks[home_idx]
            .drain()
            .into_iter()
            .find_map(|c| match c {
                Cmd::Send {
                    tag,
                    msg: Msg::MigrateCommit { .. },
                    ..
                } => Some(tag),
                _ => None,
            })
            .expect("commit sent");
        coords[home_idx].on_send_failed(t(3), &tag, &mut sinks[home_idx]);
        sinks[home_idx].drain();
        // The lock is back home and serves again, under a fresher epoch so
        // the failed fence can never win.
        assert_eq!(coords[home_idx].known_locks(), vec![L]);
        assert_eq!(coords[home_idx].directory().unwrap().home_of(L), Some(home));
        assert_eq!(coords[home_idx].directory().unwrap().epoch_of(L), 2);
        coords[home_idx].on_msg(t(20), home, acquire(home), &mut sinks[home_idx]);
        let msgs = sends(&mut sinks[home_idx]);
        assert!(grant_flag(&msgs, home).is_some());
    }

    /// Drives heat past the migration threshold and steps the handshake by
    /// hand, stopping just after the commit send: the old home has retired
    /// the lock, the new home has only seen (and accepted) the offer.
    /// Returns the captured offer and commit messages plus the commit's
    /// send tag, so tests can replay, lose, or fail them at will.
    fn handshake_to_commit(
        coords: &mut [SyncCoordinator],
        sinks: &mut [CmdSink],
        home_idx: usize,
        hot_idx: usize,
    ) -> (Msg, Msg, SendTag) {
        let hot = SiteId(hot_idx as u32);
        let home = SiteId(home_idx as u32);
        let mut observed = Vec::new();
        coords[home_idx].on_msg(t(1), hot, acquire(hot), &mut sinks[home_idx]);
        pump(coords, sinks, t(1), &mut observed);
        coords[home_idx].on_msg(t(1), hot, release(hot, 1), &mut sinks[home_idx]);
        pump(coords, sinks, t(1), &mut observed);
        coords[home_idx].on_msg(t(2), hot, acquire(hot), &mut sinks[home_idx]);
        pump(coords, sinks, t(2), &mut observed);
        // The second release crosses the threshold and produces the offer.
        coords[home_idx].on_msg(t(2), hot, release(hot, 2), &mut sinks[home_idx]);
        let offer = sinks[home_idx]
            .drain()
            .into_iter()
            .find_map(|c| match c {
                Cmd::Send {
                    msg: m @ Msg::MigrateOffer { .. },
                    ..
                } => Some(m),
                _ => None,
            })
            .expect("offer sent");
        coords[hot_idx].on_msg(t(2), home, offer.clone(), &mut sinks[hot_idx]);
        let accept = sinks[hot_idx]
            .drain()
            .into_iter()
            .find_map(|c| match c {
                Cmd::Send {
                    msg: m @ Msg::MigrateAccept { .. },
                    ..
                } => Some(m),
                _ => None,
            })
            .expect("accept sent");
        coords[home_idx].on_msg(t(2), hot, accept, &mut sinks[home_idx]);
        let (commit, tag) = sinks[home_idx]
            .drain()
            .into_iter()
            .find_map(|c| match c {
                Cmd::Send {
                    msg: m @ Msg::MigrateCommit { .. },
                    tag,
                    ..
                } => Some((m, tag)),
                _ => None,
            })
            .expect("commit sent");
        (offer, commit, tag)
    }

    #[test]
    fn ring_growth_pins_installed_locks() {
        // One-site ring: this coordinator homes every lock and holds live
        // state for L once the first acquire is granted.
        let cfg = hash_cfg(0);
        let shards = cfg.home.virtual_shards;
        let mut coords = vec![SyncCoordinator::with_directory(HOME, cfg, &[HOME])];
        let mut sinks = vec![CmdSink::new()];
        let mut observed = Vec::new();
        coords[0].on_msg(t(0), S1, acquire(S1), &mut sinks[0]);
        pump(&mut coords, &mut sinks, t(0), &mut observed);
        assert!(observed
            .iter()
            .any(|(to, m)| *to == S1 && matches!(m, Msg::Grant { .. })));
        // Pick a joiner the bare ring would hand L to: without the pin,
        // the stateless newcomer would become L's home while this
        // coordinator still serves the granted holder — a split home.
        let joiner = (2..=64)
            .map(SiteId)
            .find(|&s| Directory::new(&[HOME, s], shards).home_of(L) == Some(s))
            .expect("some joiner claims L on the bare ring");
        coords[0].add_ring_site(joiner, &mut sinks[0]);
        let msgs = sends(&mut sinks[0]);
        assert_eq!(coords[0].directory().unwrap().home_of(L), Some(HOME));
        // The pin is gossiped so the joiner's directory agrees.
        assert!(msgs.iter().any(|(to, m)| *to == joiner
            && matches!(m, Msg::HomeUpdate { lock, home, .. } if *lock == L && *home == HOME)));
        // The old home still serves: release + re-acquire flow straight
        // through with no redirect.
        coords[0].on_msg(t(1), S1, release(S1, 1), &mut sinks[0]);
        sinks[0].drain();
        coords[0].on_msg(t(2), S1, acquire(S1), &mut sinks[0]);
        let msgs = sends(&mut sinks[0]);
        assert!(grant_flag(&msgs, S1).is_some());
        assert_eq!(coords[0].stats().stale_home_redirects, 0);
    }

    #[test]
    fn rebuild_poll_adopts_survivor_version() {
        // Single-site ring standing in for the survivor that inherits a
        // dead home's locks: it has no coordinator state for L.
        let mut c = SyncCoordinator::with_directory(HOME, hash_cfg(0), &[HOME]);
        let mut sink = CmdSink::new();
        // A member daemon re-announces its durable version on ring churn.
        c.on_msg(
            t(0),
            S1,
            Msg::SiteRecovered {
                site: S1,
                versions: vec![(L, Version(3))],
            },
            &mut sink,
        );
        sink.drain();
        // The first acquire must NOT be granted VersionOk at INITIAL — it
        // queues behind a member poll.
        c.on_msg(t(1), S2, acquire(S2), &mut sink);
        let msgs = sends(&mut sink);
        assert!(
            grant_flag(&msgs, S2).is_none(),
            "grant deferred behind the rebuild poll"
        );
        let req = msgs
            .iter()
            .find_map(|(_, m)| match m {
                Msg::PollVersion { lock, req } if *lock == L => Some(*req),
                _ => None,
            })
            .expect("rebuild poll sent");
        // Poll answers: S1 still holds version 3, S2 holds nothing.
        c.on_msg(
            t(2),
            S1,
            Msg::PollResponse {
                lock: L,
                version: Version(3),
                site: S1,
                req,
            },
            &mut sink,
        );
        c.on_msg(
            t(2),
            S2,
            Msg::PollResponse {
                lock: L,
                version: Version::INITIAL,
                site: S2,
                req,
            },
            &mut sink,
        );
        let msgs = sends(&mut sink);
        // The grant adopts the freshest surviving version and orders a
        // transfer: the stale requester is never told it is current.
        assert_eq!(grant_flag(&msgs, S2), Some(VersionFlag::NeedNewVersion));
        assert!(msgs.iter().any(|(_, m)| matches!(
            m,
            Msg::Grant { lock, version, .. } if *lock == L && *version == Version(3)
        )));
        assert_eq!(c.lock_version(L), Some(Version(3)));
    }

    #[test]
    fn stranded_migration_buffer_drains_on_timeout() {
        let (mut coords, mut sinks, home_idx, hot_idx) = hash_pair(2);
        let hot = SiteId(hot_idx as u32);
        let home = SiteId(home_idx as u32);
        let mut observed = Vec::new();
        // Build dominance so the second release produces an offer.
        coords[home_idx].on_msg(t(1), hot, acquire(hot), &mut sinks[home_idx]);
        pump(&mut coords, &mut sinks, t(1), &mut observed);
        coords[home_idx].on_msg(t(1), hot, release(hot, 1), &mut sinks[home_idx]);
        pump(&mut coords, &mut sinks, t(1), &mut observed);
        coords[home_idx].on_msg(t(2), hot, acquire(hot), &mut sinks[home_idx]);
        pump(&mut coords, &mut sinks, t(2), &mut observed);
        coords[home_idx].on_msg(t(2), hot, release(hot, 2), &mut sinks[home_idx]);
        let offer = sinks[home_idx]
            .drain()
            .into_iter()
            .find_map(|c| match c {
                Cmd::Send {
                    msg: m @ Msg::MigrateOffer { .. },
                    ..
                } => Some(m),
                _ => None,
            })
            .expect("offer sent");
        // The offer arrives, the accept is LOST, and the offerer never
        // commits: traffic addressed to the proposed new home buffers.
        coords[hot_idx].on_msg(t(2), home, offer, &mut sinks[hot_idx]);
        sinks[hot_idx].drain(); // the accept dies on the wire
        coords[hot_idx].on_msg(t(3), S2, acquire(S2), &mut sinks[hot_idx]);
        assert!(
            sends(&mut sinks[hot_idx]).is_empty(),
            "handshake in flight: the acquire is buffered, not answered"
        );
        // The buffering window expires: the held acquire is re-processed
        // and redirects to the (still-authoritative) old home, which
        // grants — the lock is never permanently swallowed.
        let fired = coords[hot_idx].on_timer(
            t(10),
            timer_ns::COORD | MIGRATE_SUB | u64::from(L.as_raw()),
            &mut sinks[hot_idx],
        );
        assert!(fired);
        observed.clear();
        pump(&mut coords, &mut sinks, t(10), &mut observed);
        assert!(observed.iter().any(|(to, m)| *to == S2
            && matches!(m, Msg::StaleHome { lock, home: h, .. } if *lock == L && *h == home)));
        assert!(observed
            .iter()
            .any(|(to, m)| *to == S2 && matches!(m, Msg::Grant { .. })));
    }

    #[test]
    fn replayed_handshake_messages_are_fenced() {
        let (mut coords, mut sinks, home_idx, hot_idx) = hash_pair(2);
        let hot = SiteId(hot_idx as u32);
        let home = SiteId(home_idx as u32);
        let mut observed = Vec::new();
        let (offer, commit, _tag) =
            handshake_to_commit(&mut coords, &mut sinks, home_idx, hot_idx);
        // The commit lands and the migration completes normally.
        coords[hot_idx].on_msg(t(3), home, commit.clone(), &mut sinks[hot_idx]);
        pump(&mut coords, &mut sinks, t(3), &mut observed);
        assert_eq!(coords[hot_idx].known_locks(), vec![L]);
        assert_eq!(coords[hot_idx].lock_version(L), Some(Version(2)));
        // The new home serves on: the version advances past the commit's
        // snapshot.
        coords[hot_idx].on_msg(t(4), hot, acquire(hot), &mut sinks[hot_idx]);
        pump(&mut coords, &mut sinks, t(4), &mut observed);
        coords[hot_idx].on_msg(t(4), hot, release(hot, 3), &mut sinks[hot_idx]);
        pump(&mut coords, &mut sinks, t(4), &mut observed);
        assert_eq!(coords[hot_idx].lock_version(L), Some(Version(3)));
        // A duplicate of the already-applied commit arrives late: it must
        // not roll the installed state back to the fence-point snapshot.
        coords[hot_idx].on_msg(t(5), home, commit, &mut sinks[hot_idx]);
        let msgs = sends(&mut sinks[hot_idx]);
        assert_eq!(coords[hot_idx].lock_version(L), Some(Version(3)));
        assert!(msgs.iter().any(|(to, m)| *to == home
            && matches!(m, Msg::HomeUpdate { lock, home: h, epoch } if *lock == L && *h == hot && *epoch == 1)));
        // A replayed offer for the installed lock must not start buffering
        // live traffic either: it is answered with the authoritative
        // placement and the lock keeps serving.
        coords[hot_idx].on_msg(t(6), home, offer, &mut sinks[hot_idx]);
        let msgs = sends(&mut sinks[hot_idx]);
        assert!(msgs
            .iter()
            .all(|(_, m)| !matches!(m, Msg::MigrateAccept { .. })));
        assert!(msgs.iter().any(|(to, m)| *to == home
            && matches!(m, Msg::HomeUpdate { lock, home: h, epoch } if *lock == L && *h == hot && *epoch == 1)));
        coords[hot_idx].on_msg(t(7), hot, acquire(hot), &mut sinks[hot_idx]);
        let msgs = sends(&mut sinks[hot_idx]);
        assert!(
            grant_flag(&msgs, hot).is_some(),
            "acquire after the replayed offer is served, not buffered"
        );
    }

    #[test]
    fn stale_home_update_keeps_retired_fallback() {
        let (mut coords, mut sinks, home_idx, hot_idx) = hash_pair(2);
        let hot = SiteId(hot_idx as u32);
        let home = SiteId(home_idx as u32);
        let (_offer, _commit, tag) =
            handshake_to_commit(&mut coords, &mut sinks, home_idx, hot_idx);
        // The fence is down: the lock is retired at the old home.
        assert!(coords[home_idx].known_locks().is_empty());
        // A reordered HomeUpdate from an EARLIER migration attempt (epoch 0
        // predates the fence) arrives while the commit is in flight: it
        // must not discard the fallback kept against commit-send failure.
        coords[home_idx].on_msg(
            t(3),
            hot,
            Msg::HomeUpdate {
                lock: L,
                home: hot,
                epoch: 0,
            },
            &mut sinks[home_idx],
        );
        sinks[home_idx].drain();
        // The commit send then fails — only the retained fallback can
        // bring the lock back.
        coords[home_idx].on_send_failed(t(4), &tag, &mut sinks[home_idx]);
        sinks[home_idx].drain();
        assert_eq!(coords[home_idx].known_locks(), vec![L]);
        assert_eq!(coords[home_idx].directory().unwrap().home_of(L), Some(home));
        assert_eq!(coords[home_idx].directory().unwrap().epoch_of(L), 2);
    }

    #[test]
    fn offerer_departure_releases_buffered_traffic() {
        let (mut coords, mut sinks, home_idx, hot_idx) = hash_pair(2);
        let hot = SiteId(hot_idx as u32);
        let home = SiteId(home_idx as u32);
        let mut observed = Vec::new();
        // Same stranded handshake as the timeout test, but this time the
        // offerer dies before committing.
        coords[home_idx].on_msg(t(1), hot, acquire(hot), &mut sinks[home_idx]);
        pump(&mut coords, &mut sinks, t(1), &mut observed);
        coords[home_idx].on_msg(t(1), hot, release(hot, 1), &mut sinks[home_idx]);
        pump(&mut coords, &mut sinks, t(1), &mut observed);
        coords[home_idx].on_msg(t(2), hot, acquire(hot), &mut sinks[home_idx]);
        pump(&mut coords, &mut sinks, t(2), &mut observed);
        coords[home_idx].on_msg(t(2), hot, release(hot, 2), &mut sinks[home_idx]);
        let offer = sinks[home_idx]
            .drain()
            .into_iter()
            .find_map(|c| match c {
                Cmd::Send {
                    msg: m @ Msg::MigrateOffer { .. },
                    ..
                } => Some(m),
                _ => None,
            })
            .expect("offer sent");
        coords[hot_idx].on_msg(t(2), home, offer, &mut sinks[hot_idx]);
        sinks[hot_idx].drain();
        coords[hot_idx].on_msg(t(3), S2, acquire(S2), &mut sinks[hot_idx]);
        assert!(sends(&mut sinks[hot_idx]).is_empty(), "buffered");
        // The offerer leaves the ring: the commit can never arrive. The
        // buffer must drain immediately — and with the old home gone the
        // surviving coordinator now IS the ring home, so it rebuilds and
        // grants itself.
        coords[hot_idx].remove_ring_site(home, t(4), &mut sinks[hot_idx]);
        let mut survivors = [coords.swap_remove(hot_idx)];
        let mut survivor_sinks = [sinks.swap_remove(hot_idx)];
        observed.clear();
        pump(&mut survivors, &mut survivor_sinks, t(4), &mut observed);
        assert!(
            observed
                .iter()
                .any(|(to, m)| *to == S2 && matches!(m, Msg::Grant { .. })),
            "buffered acquire was re-processed and granted: {observed:?}"
        );
        assert_eq!(survivors[0].lock_owner(L), Some(S2));
    }

    #[test]
    fn break_disabled_never_probes() {
        let cfg = MochaConfig {
            break_locks: false,
            default_lease: Duration::from_millis(10),
            ..MochaConfig::default()
        };
        let mut c = SyncCoordinator::new(HOME, cfg);
        let mut sink = CmdSink::new();
        c.on_msg(t(0), S1, acquire(S1), &mut sink);
        // No scan timer should have been armed.
        let timers = sink
            .drain()
            .iter()
            .filter(|c| matches!(c, Cmd::SetTimer { .. }))
            .count();
        assert_eq!(timers, 0);
    }
}
