//! Remote evaluation: spawn, code shipping, site managers (paper §2).
//!
//! Mocha's model is "an initial *push* of application code followed by
//! *demand pulling* of new application code object classes as they are
//! encountered during execution". We reproduce the mechanics with real
//! bytes on the wire:
//!
//! * a [`TaskRegistry`] declares task classes: the classes they require at
//!   run time, their synthetic "bytecode" (size matters — it is
//!   transferred), a compute cost, and a body closure (the `mochastart`
//!   method);
//! * [`SiteManager::spawn`] sends a `SpawnRequest` plus unsolicited
//!   `CodeResponse` pushes for the initial classes;
//! * the receiving site manager checks its code cache, demand-pulls any
//!   missing classes with `CodeRequest`, then runs the task and returns a
//!   `SpawnResult` travel bag;
//! * task bodies get a [`TaskCtx`] supporting `mochaPrintln` (forwarded as
//!   `RemotePrint`) and recursive spawning.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use mocha_net::{ports, MsgClass};
use mocha_sim::{SimTime, Work};
use mocha_wire::{Msg, RequestId, SiteId};

use crate::cmd::{CmdSink, SendTag, Signal};
use crate::travelbag::{Parameter, TravelBag};

/// The execution context handed to a running task body — the paper's
/// `Mocha` "travel bag" object, minus the shared-object methods (those go
/// through scripts/handles).
#[derive(Debug, Default)]
pub struct TaskCtx {
    prints: Vec<String>,
    spawns: Vec<(SiteId, String, Parameter)>,
}

impl TaskCtx {
    /// Remote printing (`mocha.mochaPrintln`): the line is forwarded to
    /// the spawning site.
    pub fn println(&mut self, text: impl Into<String>) {
        self.prints.push(text.into());
    }

    /// Recursively spawns another task (the paper: a thread may
    /// "recursively spawn other wide area computing threads").
    pub fn spawn(&mut self, dest: SiteId, task_class: impl Into<String>, params: Parameter) {
        self.spawns.push((dest, task_class.into(), params));
    }
}

/// A task body: the `mochastart` method.
pub type TaskBody =
    Arc<dyn Fn(&Parameter, &mut TaskCtx) -> Result<TravelBag, String> + Send + Sync>;

/// Declares one spawnable task class.
#[derive(Clone)]
pub struct TaskSpec {
    /// Classes demand-pulled when the task runs (beyond the task class
    /// itself, which is pushed with the spawn).
    pub requires: Vec<String>,
    /// CPU time the task consumes.
    pub compute: Duration,
    /// The code to run.
    pub body: TaskBody,
}

impl fmt::Debug for TaskSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskSpec")
            .field("requires", &self.requires)
            .field("compute", &self.compute)
            .finish()
    }
}

/// What a site manager will agree to execute on behalf of remote callers
/// — the reproduction's version of Mocha's "secure environment" for
/// shipped code (§1/§2). A 1997 Java security manager sandboxed bytecode;
/// here the sandbox boundary is *which* task classes a site accepts and
/// how much code it will link.
#[derive(Debug, Clone, Default)]
pub enum SecurityPolicy {
    /// Accept any registered task from any site.
    #[default]
    AllowAll,
    /// Accept only the listed task classes.
    Allowlist(Vec<String>),
    /// Refuse all remote evaluation.
    DenyAll,
}

impl SecurityPolicy {
    /// Whether a spawn of `task_class` is permitted.
    pub fn permits(&self, task_class: &str) -> bool {
        match self {
            SecurityPolicy::AllowAll => true,
            SecurityPolicy::Allowlist(classes) => classes.iter().any(|c| c == task_class),
            SecurityPolicy::DenyAll => false,
        }
    }
}

/// All task classes and code units an application ships.
#[derive(Debug, Default)]
pub struct TaskRegistry {
    tasks: HashMap<String, TaskSpec>,
    code: HashMap<String, Vec<u8>>,
}

impl TaskRegistry {
    /// An empty registry.
    pub fn new() -> TaskRegistry {
        TaskRegistry::default()
    }

    /// Registers a task class. A synthetic 4 KiB code unit is created for
    /// it unless [`register_code`](Self::register_code) provided one.
    pub fn register_task(&mut self, name: impl Into<String>, spec: TaskSpec) -> &mut Self {
        let name = name.into();
        self.code
            .entry(name.clone())
            .or_insert_with(|| vec![0xCA; 4096]);
        for dep in &spec.requires {
            self.code
                .entry(dep.clone())
                .or_insert_with(|| vec![0xFE; 4096]);
        }
        self.tasks.insert(name, spec);
        self
    }

    /// Registers (or overrides) a code unit's bytes.
    pub fn register_code(&mut self, name: impl Into<String>, bytes: Vec<u8>) -> &mut Self {
        self.code.insert(name.into(), bytes);
        self
    }

    /// Looks up a task class.
    pub fn task(&self, name: &str) -> Option<&TaskSpec> {
        self.tasks.get(name)
    }

    /// Looks up a code unit.
    pub fn code(&self, name: &str) -> Option<&[u8]> {
        self.code.get(name).map(Vec::as_slice)
    }
}

/// A completed spawn, as observed by the originating site.
#[derive(Debug, Clone, PartialEq)]
pub struct SpawnOutcome {
    /// The spawn's request id.
    pub req: RequestId,
    /// Whether the task ran to completion.
    pub ok: bool,
    /// The task's result bag (empty on failure).
    pub result: TravelBag,
}

/// A spawn received from elsewhere, waiting for code to arrive.
#[derive(Debug)]
struct PendingTask {
    task_class: String,
    params: Parameter,
    missing: HashSet<String>,
    origin: SiteId,
    req: RequestId,
}

/// The per-site manager handling spawns, code shipping and task
/// execution.
pub struct SiteManager {
    me: SiteId,
    registry: Arc<TaskRegistry>,
    policy: SecurityPolicy,
    /// Classes whose code has arrived at this site. The spawning site
    /// holds all code from the start (it *is* the application).
    code_cache: HashSet<String>,
    pending: Vec<PendingTask>,
    next_req: RequestId,
    outcomes: Vec<SpawnOutcome>,
    prints: Vec<(SiteId, String)>,
}

impl fmt::Debug for SiteManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SiteManager")
            .field("me", &self.me)
            .field("cached_classes", &self.code_cache.len())
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl SiteManager {
    /// Creates a site manager. `has_all_code` marks the originating
    /// (home) site, which owns the application's code from the start.
    pub fn new(me: SiteId, registry: Arc<TaskRegistry>, has_all_code: bool) -> SiteManager {
        let code_cache = if has_all_code {
            registry.code.keys().cloned().collect()
        } else {
            HashSet::new()
        };
        SiteManager {
            me,
            registry,
            policy: SecurityPolicy::default(),
            code_cache,
            pending: Vec::new(),
            next_req: RequestId(1),
            outcomes: Vec::new(),
            prints: Vec::new(),
        }
    }

    /// Spawns `task_class` at `dest` with `params` — the paper's
    /// `mocha.spawn("Myhello", p)`. Pushes the task's own code unit along
    /// with the request; further classes are demand-pulled.
    pub fn spawn(
        &mut self,
        dest: SiteId,
        task_class: &str,
        params: &Parameter,
        sink: &mut CmdSink,
    ) -> RequestId {
        let req = self.next_req;
        self.next_req = self.next_req.next();
        sink.send_tagged(
            dest,
            ports::SITE_MANAGER,
            Msg::SpawnRequest {
                task_class: task_class.to_string(),
                params: params.encode(),
                pushed_classes: vec![task_class.to_string()],
                req,
            },
            MsgClass::Control,
            SendTag::Spawn { req },
        );
        // The initial push: the task's code travels as an unsolicited
        // CodeResponse (bulk — code units can be large).
        if let Some(code) = self.registry.code(task_class) {
            sink.send(
                dest,
                ports::SITE_MANAGER,
                Msg::CodeResponse {
                    class: task_class.to_string(),
                    code: code.to_vec(),
                    req,
                },
                MsgClass::Bulk,
            );
        }
        req
    }

    /// Installs this site's security policy for incoming spawns.
    pub fn set_policy(&mut self, policy: SecurityPolicy) {
        self.policy = policy;
    }

    /// The active security policy.
    pub fn policy(&self) -> &SecurityPolicy {
        &self.policy
    }

    /// Outcomes of spawns that originated here.
    pub fn outcomes(&self) -> &[SpawnOutcome] {
        &self.outcomes
    }

    /// Remote print lines received here, in arrival order.
    pub fn prints(&self) -> &[(SiteId, String)] {
        &self.prints
    }

    /// Classes currently cached at this site.
    pub fn cached_classes(&self) -> usize {
        self.code_cache.len()
    }

    /// Handles a protocol message addressed to the SITE_MANAGER port.
    pub fn on_msg(&mut self, _now: SimTime, from: SiteId, msg: Msg, sink: &mut CmdSink) {
        sink.charge(Work::events(1));
        match msg {
            Msg::SpawnRequest {
                task_class,
                params,
                pushed_classes,
                req,
            } => {
                let params = match Parameter::decode(&params) {
                    Ok(p) => p,
                    Err(e) => {
                        sink.send(
                            from,
                            ports::SITE_MANAGER,
                            Msg::SpawnResult {
                                req,
                                result: TravelBag::new().add("error", e.to_string()).encode(),
                                ok: false,
                            },
                            MsgClass::Control,
                        );
                        return;
                    }
                };
                if !self.policy.permits(&task_class) {
                    sink.note(format!(
                        "security policy refused spawn of {task_class:?} from {from}"
                    ));
                    sink.send(
                        from,
                        ports::SITE_MANAGER,
                        Msg::SpawnResult {
                            req,
                            result: {
                                let mut bag = TravelBag::new();
                                bag.add("error", format!("security policy refuses {task_class:?}"));
                                bag.encode()
                            },
                            ok: false,
                        },
                        MsgClass::Control,
                    );
                    return;
                }
                let Some(spec) = self.registry.task(&task_class) else {
                    sink.send(
                        from,
                        ports::SITE_MANAGER,
                        Msg::SpawnResult {
                            req,
                            result: TravelBag::new()
                                .add("error", format!("unknown task class {task_class:?}"))
                                .encode(),
                            ok: false,
                        },
                        MsgClass::Control,
                    );
                    return;
                };
                // Classes needed: the task itself plus its requirements.
                let mut missing: HashSet<String> = HashSet::new();
                for class in std::iter::once(&task_class).chain(spec.requires.iter()) {
                    // Pushed classes will arrive alongside; don't pull
                    // them, but they still count as missing until the
                    // bytes land.
                    if !self.code_cache.contains(class) {
                        missing.insert(class.clone());
                        if !pushed_classes.contains(class) {
                            // Demand pull (the paper's model).
                            sink.send(
                                from,
                                ports::SITE_MANAGER,
                                Msg::CodeRequest {
                                    class: class.clone(),
                                    req,
                                },
                                MsgClass::Control,
                            );
                        }
                    }
                }
                let task = PendingTask {
                    task_class,
                    params,
                    missing,
                    origin: from,
                    req,
                };
                if task.missing.is_empty() {
                    self.run_task(task, sink);
                } else {
                    self.pending.push(task);
                }
            }
            Msg::CodeRequest { class, req: _ } => match self.registry.code(&class) {
                Some(code) if self.code_cache.contains(&class) => {
                    sink.send(
                        from,
                        ports::SITE_MANAGER,
                        Msg::CodeResponse {
                            class,
                            code: code.to_vec(),
                            req: RequestId(0),
                        },
                        MsgClass::Bulk,
                    );
                }
                _ => {
                    sink.note(format!("code request for unknown class {class:?}"));
                }
            },
            Msg::CodeResponse { class, code, .. } => {
                // Loading/linking the class costs user-level work
                // proportional to its size (dynamic class loading in an
                // interpreter).
                sink.charge(Work::user_bytes(code.len() as u64));
                self.code_cache.insert(class.clone());
                // Any pending tasks waiting on this class?
                let mut ready = Vec::new();
                for task in &mut self.pending {
                    task.missing.remove(&class);
                    if task.missing.is_empty() {
                        ready.push(task.req);
                    }
                }
                for req in ready {
                    let idx = self
                        .pending
                        .iter()
                        .position(|t| t.req == req)
                        .expect("just saw it");
                    let task = self.pending.swap_remove(idx);
                    self.run_task(task, sink);
                }
            }
            Msg::SpawnResult { req, result, ok } => {
                let result = TravelBag::decode(&result).unwrap_or_default();
                self.outcomes.push(SpawnOutcome {
                    req,
                    ok,
                    result: result.clone(),
                });
                sink.signal(Signal::SpawnDone { req, result, ok });
            }
            Msg::RemotePrint { site, text } => {
                self.prints.push((site, text.clone()));
                sink.print(text);
            }
            other => {
                sink.note(format!("site manager ignoring {other:?}"));
            }
        }
    }

    /// Handles a transport failure of a tagged spawn request: the
    /// destination site is dead, so the spawn fails locally — the wide-area
    /// behaviour the paper motivates ("the autonomy of nodes can result in
    /// a remote node reboot").
    pub fn on_send_failed(&mut self, tag: &SendTag, sink: &mut CmdSink) {
        let SendTag::Spawn { req } = tag else {
            return;
        };
        if self.outcomes.iter().any(|o| o.req == *req) {
            return; // already completed
        }
        let mut bag = TravelBag::new();
        bag.add("error", "destination site unreachable");
        self.outcomes.push(SpawnOutcome {
            req: *req,
            ok: false,
            result: bag.clone(),
        });
        sink.signal(Signal::SpawnDone {
            req: *req,
            result: bag,
            ok: false,
        });
    }

    /// Runs a task whose code is fully present.
    fn run_task(&mut self, task: PendingTask, sink: &mut CmdSink) {
        let spec = self
            .registry
            .task(&task.task_class)
            .expect("checked at request time")
            .clone();
        sink.charge_time(spec.compute);
        let mut ctx = TaskCtx::default();
        let (result, ok) = match (spec.body)(&task.params, &mut ctx) {
            Ok(bag) => (bag, true),
            Err(e) => {
                let mut bag = TravelBag::new();
                bag.add("error", e);
                (bag, false)
            }
        };
        for line in ctx.prints {
            sink.send(
                task.origin,
                ports::SITE_MANAGER,
                Msg::RemotePrint {
                    site: self.me,
                    text: line,
                },
                MsgClass::Control,
            );
        }
        for (dest, class, params) in ctx.spawns {
            self.spawn(dest, &class, &params, sink);
        }
        sink.send(
            task.origin,
            ports::SITE_MANAGER,
            Msg::SpawnResult {
                req: task.req,
                result: result.encode(),
                ok,
            },
            MsgClass::Control,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::Cmd;

    const HOME: SiteId = SiteId(0);
    const REMOTE: SiteId = SiteId(1);

    fn registry() -> Arc<TaskRegistry> {
        let mut reg = TaskRegistry::new();
        reg.register_task(
            "Myhello",
            TaskSpec {
                requires: vec![],
                compute: Duration::from_millis(1),
                body: Arc::new(|params, ctx| {
                    let start = params.get_f64("start").map_err(|e| e.to_string())?;
                    let sum = start + 1.0;
                    ctx.println(format!("Returning as a return value {sum}"));
                    let mut result = TravelBag::new();
                    result.add("returnvalue", sum);
                    Ok(result)
                }),
            },
        );
        reg.register_task(
            "NeedsHelper",
            TaskSpec {
                requires: vec!["Helper".to_string()],
                compute: Duration::ZERO,
                body: Arc::new(|_, _| Ok(TravelBag::new())),
            },
        );
        Arc::new(reg)
    }

    fn now() -> SimTime {
        SimTime::ZERO
    }

    fn sends(sink: &mut CmdSink) -> Vec<(SiteId, Msg)> {
        sink.drain()
            .into_iter()
            .filter_map(|c| match c {
                Cmd::Send { to, msg, .. } => Some((to, msg)),
                _ => None,
            })
            .collect()
    }

    /// Shuttles site-manager messages between two managers until quiet.
    fn pump(
        home: &mut SiteManager,
        remote: &mut SiteManager,
        sink_h: &mut CmdSink,
        sink_r: &mut CmdSink,
    ) {
        loop {
            let mut progressed = false;
            for (to, msg) in sends(sink_h) {
                assert_eq!(to, REMOTE);
                remote.on_msg(now(), HOME, msg, sink_r);
                progressed = true;
            }
            for (to, msg) in sends(sink_r) {
                assert_eq!(to, HOME);
                home.on_msg(now(), REMOTE, msg, sink_h);
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
    }

    #[test]
    fn spawn_pushes_code_and_returns_result() {
        let reg = registry();
        let mut home = SiteManager::new(HOME, reg.clone(), true);
        let mut remote = SiteManager::new(REMOTE, reg, false);
        let (mut sh, mut sr) = (CmdSink::new(), CmdSink::new());
        let mut params = Parameter::new();
        params.add("start", 5.0);
        let req = home.spawn(REMOTE, "Myhello", &params, &mut sh);
        pump(&mut home, &mut remote, &mut sh, &mut sr);
        assert_eq!(home.outcomes().len(), 1);
        let outcome = &home.outcomes()[0];
        assert_eq!(outcome.req, req);
        assert!(outcome.ok);
        assert_eq!(outcome.result.get_f64("returnvalue").unwrap(), 6.0);
        // Remote printing arrived.
        assert_eq!(home.prints().len(), 1);
        assert!(home.prints()[0].1.contains("6"));
        // The remote cached the pushed class.
        assert_eq!(remote.cached_classes(), 1);
    }

    #[test]
    fn missing_dependency_is_demand_pulled() {
        let reg = registry();
        let mut home = SiteManager::new(HOME, reg.clone(), true);
        let mut remote = SiteManager::new(REMOTE, reg, false);
        let (mut sh, mut sr) = (CmdSink::new(), CmdSink::new());
        home.spawn(REMOTE, "NeedsHelper", &Parameter::new(), &mut sh);
        // Deliver the spawn request + initial push to the remote.
        for (_, msg) in sends(&mut sh) {
            remote.on_msg(now(), HOME, msg, &mut sr);
        }
        // The remote must have issued a CodeRequest for Helper (pulled,
        // not pushed).
        let outgoing = sends(&mut sr);
        assert!(outgoing.iter().any(|(_, m)| matches!(
            m,
            Msg::CodeRequest { class, .. } if class == "Helper"
        )));
        // Complete the exchange.
        for (_, msg) in outgoing {
            home.on_msg(now(), REMOTE, msg, &mut sh);
        }
        pump(&mut home, &mut remote, &mut sh, &mut sr);
        assert_eq!(home.outcomes().len(), 1);
        assert!(home.outcomes()[0].ok);
        // Both classes now cached remotely.
        assert_eq!(remote.cached_classes(), 2);
    }

    #[test]
    fn unknown_task_class_fails_cleanly() {
        let reg = registry();
        let mut home = SiteManager::new(HOME, reg.clone(), true);
        let mut remote = SiteManager::new(REMOTE, reg, false);
        let (mut sh, mut sr) = (CmdSink::new(), CmdSink::new());
        sh.send(
            REMOTE,
            ports::SITE_MANAGER,
            Msg::SpawnRequest {
                task_class: "NoSuchTask".into(),
                params: Parameter::new().encode(),
                pushed_classes: vec![],
                req: RequestId(9),
            },
            MsgClass::Control,
        );
        pump(&mut home, &mut remote, &mut sh, &mut sr);
        assert_eq!(home.outcomes().len(), 1);
        assert!(!home.outcomes()[0].ok);
        assert!(home.outcomes()[0]
            .result
            .get_str("error")
            .unwrap()
            .contains("NoSuchTask"));
    }

    #[test]
    fn task_error_propagates_as_failed_result() {
        let mut reg = TaskRegistry::new();
        reg.register_task(
            "Exploder",
            TaskSpec {
                requires: vec![],
                compute: Duration::ZERO,
                body: Arc::new(|_, _| Err("kaboom".to_string())),
            },
        );
        let reg = Arc::new(reg);
        let mut home = SiteManager::new(HOME, reg.clone(), true);
        let mut remote = SiteManager::new(REMOTE, reg, false);
        let (mut sh, mut sr) = (CmdSink::new(), CmdSink::new());
        home.spawn(REMOTE, "Exploder", &Parameter::new(), &mut sh);
        pump(&mut home, &mut remote, &mut sh, &mut sr);
        assert!(!home.outcomes()[0].ok);
        assert_eq!(
            home.outcomes()[0].result.get_str("error").unwrap(),
            "kaboom"
        );
    }

    #[test]
    fn recursive_spawn_reaches_a_third_site() {
        let mut reg = TaskRegistry::new();
        reg.register_task(
            "Leaf",
            TaskSpec {
                requires: vec![],
                compute: Duration::ZERO,
                body: Arc::new(|_, _| Ok(TravelBag::new())),
            },
        );
        reg.register_task(
            "Parent",
            TaskSpec {
                requires: vec![],
                compute: Duration::ZERO,
                body: Arc::new(|_, ctx| {
                    ctx.spawn(SiteId(2), "Leaf", Parameter::new());
                    Ok(TravelBag::new())
                }),
            },
        );
        let reg = Arc::new(reg);
        let mut home = SiteManager::new(HOME, reg.clone(), true);
        let mut r1 = SiteManager::new(REMOTE, reg, false);
        let (mut sh, mut s1) = (CmdSink::new(), CmdSink::new());
        home.spawn(REMOTE, "Parent", &Parameter::new(), &mut sh);
        for (_, msg) in sends(&mut sh) {
            r1.on_msg(now(), HOME, msg, &mut s1);
        }
        // r1 should now be trying to spawn Leaf at site 2.
        let outgoing = sends(&mut s1);
        assert!(outgoing.iter().any(|(to, m)| *to == SiteId(2)
            && matches!(m, Msg::SpawnRequest { task_class, .. } if task_class == "Leaf")));
    }

    #[test]
    fn deny_all_policy_refuses_spawns() {
        let reg = registry();
        let mut home = SiteManager::new(HOME, reg.clone(), true);
        let mut remote = SiteManager::new(REMOTE, reg, false);
        remote.set_policy(SecurityPolicy::DenyAll);
        let (mut sh, mut sr) = (CmdSink::new(), CmdSink::new());
        home.spawn(REMOTE, "Myhello", &Parameter::new(), &mut sh);
        pump(&mut home, &mut remote, &mut sh, &mut sr);
        assert_eq!(home.outcomes().len(), 1);
        assert!(!home.outcomes()[0].ok);
        assert!(home.outcomes()[0]
            .result
            .get_str("error")
            .unwrap()
            .contains("security"));
    }

    #[test]
    fn allowlist_policy_is_selective() {
        let reg = registry();
        let mut home = SiteManager::new(HOME, reg.clone(), true);
        let mut remote = SiteManager::new(REMOTE, reg, false);
        remote.set_policy(SecurityPolicy::Allowlist(vec!["Myhello".to_string()]));
        let (mut sh, mut sr) = (CmdSink::new(), CmdSink::new());
        let mut params = Parameter::new();
        params.add("start", 1.0);
        home.spawn(REMOTE, "Myhello", &params, &mut sh);
        home.spawn(REMOTE, "NeedsHelper", &Parameter::new(), &mut sh);
        pump(&mut home, &mut remote, &mut sh, &mut sr);
        assert_eq!(home.outcomes().len(), 2);
        let ok_count = home.outcomes().iter().filter(|o| o.ok).count();
        assert_eq!(ok_count, 1, "only the allowlisted class ran");
        assert!(SecurityPolicy::default().permits("anything"));
        assert!(!SecurityPolicy::DenyAll.permits("anything"));
    }

    #[test]
    fn registry_provides_code_for_dependencies() {
        let reg = registry();
        assert!(reg.code("Myhello").is_some());
        assert!(reg.code("Helper").is_some());
        assert!(reg.task("Myhello").is_some());
        assert!(reg.task("Helper").is_none());
    }
}
