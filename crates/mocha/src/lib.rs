//! # mocha — robust state sharing for wide area distributed applications
//!
//! A from-scratch Rust reproduction of the **Mocha** system (Topol, Ahamad,
//! Stasko — *Robust State Sharing for Wide Area Distributed Applications*,
//! ICDCS 1998): a wide-area computing infrastructure providing replicated
//! shared objects with entry-consistency maintenance, configurable
//! availability through push-based update dissemination, and timeout-based
//! failure detection and handling.
//!
//! ## Architecture (paper §3)
//!
//! An application is a set of threads running at *sites*. Shared state is
//! held in [`Replica`](replica::ReplicaSpec) objects, each guarded by a
//! `ReplicaLock`. Consistency is *entry consistency*: replicas are
//! guaranteed current only between `lock()` and `unlock()`.
//!
//! Three kinds of protocol actors cooperate:
//!
//! * the **synchronization thread** at the home site
//!   ([`sync::SyncCoordinator`]) grants and queues locks, tracks versions,
//!   and directs replica transfers;
//! * a **daemon thread** per site ([`daemon::SiteDaemon`]) stores replica
//!   values, serves transfer directives, applies pushed updates, and
//!   answers failure-handling polls and heartbeats;
//! * **application threads** ([`app::AppRunner`]) acquire and release
//!   locks and read/write replicas while holding them.
//!
//! Replica data always travels daemon-to-daemon, never through the
//! coordinator — the paper's locality optimisation.
//!
//! ## Fault tolerance (paper §4)
//!
//! * A `ReplicaLock` can be configured to keep `UR` of its `R` registered
//!   copies up to date: on release the daemon pushes the new value to
//!   `UR − 1` peers, and the release message tells the coordinator which
//!   sites are current ([`daemon`], [`sync`]).
//! * Failures of non-owners are detected when transfers or pushes time
//!   out; the coordinator then polls surviving daemons and forwards the
//!   freshest available version (possibly stale — surfaced to the
//!   application as weakened consistency).
//! * Failures of lock owners are detected by lease expiry confirmed with a
//!   heartbeat; the coordinator breaks the lock, blacklists the failed
//!   site, and grants to the next waiter.
//!
//! ## Runtimes
//!
//! All actors are event-driven state machines emitting [`cmd::Cmd`]s, so
//! the same protocol code runs under:
//!
//! * [`runtime::sim`] — the deterministic virtual-time simulator (used by
//!   every benchmark and by deterministic failure-injection tests);
//! * [`runtime::thread`] — real OS threads with a blocking API
//!   ([`runtime::thread::ThreadRuntime`]), used by the examples.
//!
//! ## Quick start (simulated cluster)
//!
//! ```
//! use mocha::runtime::sim::SimCluster;
//! use mocha::app::{Op, Script};
//! use mocha_wire::{LockId, ReplicaPayload};
//! use std::time::Duration;
//!
//! let mut cluster = SimCluster::builder()
//!     .sites(2)
//!     .build();
//! let lock = LockId(1);
//! let idx = mocha::replica::replica_id("flatwareIndex");
//!
//! // Site 0 creates the shared object and writes 7 into it.
//! cluster.add_script(0, Script::new()
//!     .register(lock, &["flatwareIndex"])
//!     .lock(lock)
//!     .write(idx, ReplicaPayload::I32s(vec![7]))
//!     .unlock_dirty(lock));
//! // Site 1 acquires the same lock and reads.
//! cluster.add_script(1, Script::new()
//!     .register(lock, &["flatwareIndex"])
//!     .sleep(Duration::from_millis(100))
//!     .lock(lock)
//!     .read(idx)
//!     .unlock(lock));
//!
//! cluster.run_until_idle();
//! let observed = cluster.observed_payloads(1);
//! assert_eq!(observed, vec![ReplicaPayload::I32s(vec![7])]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod cmd;
pub mod config;
pub mod daemon;
pub mod directory;
pub mod error;
pub mod hostfile;
pub mod invariants;
pub mod replica;
pub mod runtime;
pub mod spawn;
pub mod sync;
pub mod travelbag;

#[doc(hidden)]
pub use replica::__private;

pub use config::{AvailabilityConfig, FaultPlan, HomeConfig, MochaConfig};
pub use directory::Directory;
pub use error::MochaError;
pub use replica::{replica_id, ObjectReplica, SharedState};
pub use travelbag::{Parameter, TravelBag, Value};
