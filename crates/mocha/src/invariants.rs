//! Protocol safety invariants and the oracle that checks them.
//!
//! The entry-consistency protocol makes a handful of promises that must
//! hold in *every* reachable state, no matter how messages interleave:
//!
//! 1. **Single writer** — at most one exclusive holder per lock, both in
//!    the coordinator's books and among live application threads.
//! 2. **Version monotonicity** — a site daemon's version for a lock never
//!    decreases (the daemon's staleness guard discards older data).
//! 3. **Up-to-date freshness** — every site the coordinator believes
//!    up-to-date actually holds at least the coordinator's version.
//! 4. **Single home** — no two live sites both run a coordinator.
//! 5. **Push-set sanity** — the up-to-date set and holders stay within
//!    the registered membership.
//!
//! The [`InvariantOracle`] evaluates these over [`ClusterView`] snapshots
//! assembled from live sites (see `SimCluster::cluster_view`). It is
//! *stateful*: version monotonicity compares against the highest version
//! previously observed per `(site, lock)`, so it catches regressions even
//! between two individually-plausible snapshots.
//!
//! Legal transients the oracle deliberately tolerates:
//!
//! * a daemon ahead of the coordinator (release in flight after a local
//!   `disseminate`) — freshness only bounds up-to-date members from below;
//! * double holders during the lease-break window — app-side writer
//!   counting is skipped once any lock has been broken, and revoked holds
//!   are excluded by the snapshot accessor;
//! * version drops adopted by §4 recovery (weakened consistency) — those
//!   lower the *coordinator's* version, never a daemon's, and freshness is
//!   not checked while a recovery is in progress.

use std::collections::HashMap;
use std::fmt;

use mocha_wire::message::LockMode;
use mocha_wire::{LockId, SiteId, ThreadId, Version};

/// One holder entry in a [`LockView`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HolderView {
    /// Holding site.
    pub site: SiteId,
    /// Holding thread at that site.
    pub thread: ThreadId,
    /// Exclusive or shared.
    pub mode: LockMode,
    /// The coordinator has an unanswered heartbeat out to this holder.
    pub suspected: bool,
}

/// Coordinator-side snapshot of one lock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockView {
    /// The lock.
    pub lock: LockId,
    /// Coordinator's current version for the lock's replica set.
    pub version: Version,
    /// Current holders.
    pub holders: Vec<HolderView>,
    /// Sites the coordinator believes hold the current version.
    pub up_to_date: Vec<SiteId>,
    /// All registered member sites.
    pub members: Vec<SiteId>,
    /// A §4 recovery is in progress for this lock.
    pub recovering: bool,
}

/// Snapshot of one coordinator instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoordinatorView {
    /// Site hosting this coordinator.
    pub site: SiteId,
    /// Per-lock state, sorted by lock id.
    pub locks: Vec<LockView>,
    /// How many locks this coordinator has broken so far.
    pub locks_broken: u64,
}

/// Snapshot of one live site (daemon + application threads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteView {
    /// The site.
    pub site: SiteId,
    /// The daemon's newest version per lock, sorted by lock id.
    pub versions: Vec<(LockId, Version)>,
    /// Locks actively held by application threads here (revoked holds and
    /// grants still awaiting data excluded), sorted by lock id.
    pub holds: Vec<(LockId, LockMode)>,
    /// Whether this site currently runs a coordinator.
    pub hosts_coordinator: bool,
}

/// A cluster-wide snapshot of every live site.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterView {
    /// Every live coordinator (normally exactly one).
    pub coordinators: Vec<CoordinatorView>,
    /// Every live site.
    pub sites: Vec<SiteView>,
    /// Whether this cluster runs the consistent-hash directory, where a
    /// coordinator at every site is the design rather than a fault. The
    /// single-home invariant then applies *per lock* — no lock may have
    /// coordinator state at two live sites — instead of cluster-wide.
    pub multi_home_ok: bool,
}

/// A violated safety property, with enough context to debug it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// More than one writer (or a writer plus other holders) at once.
    MultipleWriters {
        /// The affected lock.
        lock: LockId,
        /// Human-readable description of the conflicting holders.
        detail: String,
    },
    /// A site daemon's version for a lock went backwards.
    VersionRegression {
        /// The regressing site.
        site: SiteId,
        /// The affected lock.
        lock: LockId,
        /// Highest version previously observed at that site.
        from: Version,
        /// The lower version observed now.
        to: Version,
    },
    /// A site the coordinator believes up-to-date holds an older version.
    StaleUpToDate {
        /// The affected lock.
        lock: LockId,
        /// The supposedly up-to-date site.
        site: SiteId,
        /// The coordinator's version.
        coordinator: Version,
        /// What the site actually holds.
        held: Version,
    },
    /// Two or more live sites both believe they are the home site.
    SplitHome {
        /// The sites hosting coordinators.
        sites: Vec<SiteId>,
    },
    /// Up-to-date set or holder outside the registered membership.
    PushSetInconsistent {
        /// The affected lock.
        lock: LockId,
        /// Human-readable description of the inconsistency.
        detail: String,
    },
}

impl Violation {
    /// Stable short name of the violated invariant (trace files, stats).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::MultipleWriters { .. } => "multiple_writers",
            Violation::VersionRegression { .. } => "version_regression",
            Violation::StaleUpToDate { .. } => "stale_up_to_date",
            Violation::SplitHome { .. } => "split_home",
            Violation::PushSetInconsistent { .. } => "push_set_inconsistent",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MultipleWriters { lock, detail } => {
                write!(f, "multiple writers on {lock}: {detail}")
            }
            Violation::VersionRegression {
                site,
                lock,
                from,
                to,
            } => write!(f, "version regression at {site} for {lock}: {from} -> {to}"),
            Violation::StaleUpToDate {
                lock,
                site,
                coordinator,
                held,
            } => write!(
                f,
                "{site} marked up-to-date for {lock} but holds {held} < coordinator {coordinator}"
            ),
            Violation::SplitHome { sites } => {
                write!(f, "split home: coordinators live at {sites:?}")
            }
            Violation::PushSetInconsistent { lock, detail } => {
                write!(f, "push-set inconsistency on {lock}: {detail}")
            }
        }
    }
}

/// Stateful invariant oracle. Feed it a [`ClusterView`] after every
/// delivered event; it returns the violations that snapshot exhibits.
#[derive(Debug, Clone, Default)]
pub struct InvariantOracle {
    /// Highest daemon version ever observed per (site, lock).
    seen_versions: HashMap<(SiteId, LockId), Version>,
}

impl InvariantOracle {
    /// A fresh oracle with no version history.
    #[must_use]
    pub fn new() -> InvariantOracle {
        InvariantOracle::default()
    }

    /// Drops version history for `site`. Call when a site reboots with a
    /// fresh (empty) store — its versions legitimately restart at zero.
    pub fn forget_site(&mut self, site: SiteId) {
        self.seen_versions.retain(|(s, _), _| *s != site);
    }

    /// Checks every invariant against `view`, updating version history.
    pub fn check(&mut self, view: &ClusterView) -> Vec<Violation> {
        let mut violations = Vec::new();
        Self::check_split_home(view, &mut violations);
        self.check_version_monotonicity(view, &mut violations);
        for coordinator in &view.coordinators {
            for lv in &coordinator.locks {
                Self::check_coordinator_writers(lv, &mut violations);
                Self::check_push_set(lv, &mut violations);
                Self::check_freshness(view, lv, &mut violations);
            }
            Self::check_app_writers(view, coordinator, &mut violations);
        }
        violations
    }

    fn check_split_home(view: &ClusterView, out: &mut Vec<Violation>) {
        if view.multi_home_ok {
            // Directory mode: every site hosts a coordinator by design,
            // but each lock must have coordinator state at exactly one of
            // them. An unfenced migration leaves the lock installed at
            // both the old and the new home — that is the split.
            let mut owners: HashMap<LockId, Vec<SiteId>> = HashMap::new();
            for coordinator in &view.coordinators {
                for lv in &coordinator.locks {
                    owners.entry(lv.lock).or_default().push(coordinator.site);
                }
            }
            let mut split: Vec<_> = owners.into_iter().filter(|(_, s)| s.len() > 1).collect();
            split.sort_unstable_by_key(|(lock, _)| *lock);
            for (_, mut sites) in split {
                sites.sort_unstable();
                out.push(Violation::SplitHome { sites });
            }
            return;
        }
        let homes: Vec<SiteId> = view
            .sites
            .iter()
            .filter(|s| s.hosts_coordinator)
            .map(|s| s.site)
            .collect();
        if homes.len() > 1 {
            out.push(Violation::SplitHome { sites: homes });
        }
    }

    fn check_version_monotonicity(&mut self, view: &ClusterView, out: &mut Vec<Violation>) {
        for site in &view.sites {
            for &(lock, version) in &site.versions {
                let seen = self
                    .seen_versions
                    .entry((site.site, lock))
                    .or_insert(version);
                if version < *seen {
                    out.push(Violation::VersionRegression {
                        site: site.site,
                        lock,
                        from: *seen,
                        to: version,
                    });
                } else {
                    *seen = version;
                }
            }
        }
    }

    /// Coordinator-side single-writer check: an exclusive holder excludes
    /// every other holder, always (grants enforce this directly, so there
    /// is no legal transient to tolerate).
    fn check_coordinator_writers(lv: &LockView, out: &mut Vec<Violation>) {
        let exclusive = lv
            .holders
            .iter()
            .filter(|h| h.mode == LockMode::Exclusive)
            .count();
        if exclusive > 1 || (exclusive == 1 && lv.holders.len() > 1) {
            out.push(Violation::MultipleWriters {
                lock: lv.lock,
                detail: format!("coordinator holders {:?}", lv.holders),
            });
        }
    }

    /// Application-side single-writer check: counts live threads holding
    /// the lock exclusively across sites. Skipped once the coordinator has
    /// broken any lock — a revoked-but-slow holder may legally overlap its
    /// successor until its stale release is discarded.
    fn check_app_writers(
        view: &ClusterView,
        coordinator: &CoordinatorView,
        out: &mut Vec<Violation>,
    ) {
        if coordinator.locks_broken > 0 {
            return;
        }
        let mut writers: HashMap<LockId, Vec<SiteId>> = HashMap::new();
        for site in &view.sites {
            for &(lock, mode) in &site.holds {
                if mode == LockMode::Exclusive {
                    writers.entry(lock).or_default().push(site.site);
                }
            }
        }
        for (lock, sites) in writers {
            if sites.len() > 1 {
                out.push(Violation::MultipleWriters {
                    lock,
                    detail: format!("application writers at {sites:?}"),
                });
            }
        }
    }

    /// Up-to-date members must hold at least the coordinator's version.
    /// Not checked while a §4 recovery is adjusting the version downward.
    fn check_freshness(view: &ClusterView, lv: &LockView, out: &mut Vec<Violation>) {
        if lv.recovering {
            return;
        }
        for &site in &lv.up_to_date {
            let Some(sv) = view.sites.iter().find(|s| s.site == site) else {
                continue; // crashed or unknown: nothing to compare
            };
            let held = sv
                .versions
                .iter()
                .find(|(l, _)| *l == lv.lock)
                .map_or(Version::INITIAL, |(_, v)| *v);
            if held < lv.version {
                out.push(Violation::StaleUpToDate {
                    lock: lv.lock,
                    site,
                    coordinator: lv.version,
                    held,
                });
            }
        }
    }

    /// Bookkeeping sanity: the up-to-date set stays within membership, and
    /// (outside failure handling) so do the holders.
    fn check_push_set(lv: &LockView, out: &mut Vec<Violation>) {
        for &site in &lv.up_to_date {
            if !lv.members.contains(&site) {
                out.push(Violation::PushSetInconsistent {
                    lock: lv.lock,
                    detail: format!("{site} up-to-date but not a member of {:?}", lv.members),
                });
            }
        }
        if !lv.recovering {
            for holder in &lv.holders {
                if !holder.suspected && !lv.members.contains(&holder.site) {
                    out.push(Violation::PushSetInconsistent {
                        lock: lv.lock,
                        detail: format!("holder {} not a member of {:?}", holder.site, lv.members),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: LockId = LockId(1);
    const S0: SiteId = SiteId(0);
    const S1: SiteId = SiteId(1);
    const S2: SiteId = SiteId(2);

    fn holder(site: SiteId, mode: LockMode) -> HolderView {
        HolderView {
            site,
            thread: ThreadId(0),
            mode,
            suspected: false,
        }
    }

    fn lock_view() -> LockView {
        LockView {
            lock: L,
            version: Version(0),
            holders: Vec::new(),
            up_to_date: Vec::new(),
            members: vec![S0, S1, S2],
            recovering: false,
        }
    }

    fn site_view(site: SiteId) -> SiteView {
        SiteView {
            site,
            versions: Vec::new(),
            holds: Vec::new(),
            hosts_coordinator: site == S0,
        }
    }

    fn cluster(locks: Vec<LockView>, sites: Vec<SiteView>) -> ClusterView {
        ClusterView {
            coordinators: vec![CoordinatorView {
                site: S0,
                locks,
                locks_broken: 0,
            }],
            sites,
            multi_home_ok: false,
        }
    }

    #[test]
    fn clean_view_passes() {
        let mut lv = lock_view();
        lv.holders = vec![holder(S1, LockMode::Exclusive)];
        lv.up_to_date = vec![S1];
        let mut s1 = site_view(S1);
        s1.versions = vec![(L, Version(0))];
        s1.holds = vec![(L, LockMode::Exclusive)];
        let view = cluster(vec![lv], vec![site_view(S0), s1]);
        assert_eq!(InvariantOracle::new().check(&view), Vec::new());
    }

    #[test]
    fn two_exclusive_holders_flagged() {
        let mut lv = lock_view();
        lv.holders = vec![
            holder(S1, LockMode::Exclusive),
            holder(S2, LockMode::Exclusive),
        ];
        let view = cluster(vec![lv], vec![site_view(S0)]);
        let vs = InvariantOracle::new().check(&view);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].kind(), "multiple_writers");
    }

    #[test]
    fn exclusive_plus_shared_flagged() {
        let mut lv = lock_view();
        lv.holders = vec![
            holder(S1, LockMode::Exclusive),
            holder(S2, LockMode::Shared),
        ];
        let view = cluster(vec![lv], vec![site_view(S0)]);
        assert_eq!(InvariantOracle::new().check(&view).len(), 1);
    }

    #[test]
    fn shared_holders_are_fine() {
        let mut lv = lock_view();
        lv.holders = vec![holder(S1, LockMode::Shared), holder(S2, LockMode::Shared)];
        let view = cluster(vec![lv], vec![site_view(S0)]);
        assert_eq!(InvariantOracle::new().check(&view), Vec::new());
    }

    #[test]
    fn app_side_double_writer_flagged_only_without_breaks() {
        let mut s1 = site_view(S1);
        s1.holds = vec![(L, LockMode::Exclusive)];
        let mut s2 = site_view(S2);
        s2.holds = vec![(L, LockMode::Exclusive)];
        let mut view = cluster(vec![lock_view()], vec![site_view(S0), s1, s2]);
        assert_eq!(InvariantOracle::new().check(&view).len(), 1);
        // After a lock break the overlap is a legal transient.
        view.coordinators[0].locks_broken = 1;
        assert_eq!(InvariantOracle::new().check(&view), Vec::new());
    }

    #[test]
    fn version_regression_detected_across_snapshots() {
        let mut oracle = InvariantOracle::new();
        let mut s1 = site_view(S1);
        s1.versions = vec![(L, Version(5))];
        let view = cluster(vec![lock_view()], vec![s1.clone()]);
        assert_eq!(oracle.check(&view), Vec::new());
        s1.versions = vec![(L, Version(3))];
        let view = cluster(vec![lock_view()], vec![s1]);
        let vs = oracle.check(&view);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].kind(), "version_regression");
        assert!(vs[0].to_string().contains("v5 -> v3"));
    }

    #[test]
    fn forget_site_resets_history() {
        let mut oracle = InvariantOracle::new();
        let mut s1 = site_view(S1);
        s1.versions = vec![(L, Version(5))];
        oracle.check(&cluster(vec![lock_view()], vec![s1.clone()]));
        oracle.forget_site(S1);
        s1.versions = vec![(L, Version(0))];
        assert_eq!(
            oracle.check(&cluster(vec![lock_view()], vec![s1])),
            Vec::new()
        );
    }

    #[test]
    fn stale_up_to_date_member_flagged() {
        let mut lv = lock_view();
        lv.version = Version(4);
        lv.up_to_date = vec![S1];
        let mut s1 = site_view(S1);
        s1.versions = vec![(L, Version(2))];
        let view = cluster(vec![lv.clone()], vec![site_view(S0), s1.clone()]);
        let vs = InvariantOracle::new().check(&view);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].kind(), "stale_up_to_date");
        // ...but not while a recovery is rewinding the version.
        lv.recovering = true;
        let view = cluster(vec![lv], vec![site_view(S0), s1]);
        assert_eq!(InvariantOracle::new().check(&view), Vec::new());
    }

    #[test]
    fn daemon_ahead_of_coordinator_is_legal() {
        let mut lv = lock_view();
        lv.version = Version(2);
        lv.up_to_date = vec![S1];
        let mut s1 = site_view(S1);
        s1.versions = vec![(L, Version(3))]; // release still in flight
        let view = cluster(vec![lv], vec![site_view(S0), s1]);
        assert_eq!(InvariantOracle::new().check(&view), Vec::new());
    }

    #[test]
    fn split_home_flagged() {
        let mut s1 = site_view(S1);
        s1.hosts_coordinator = true;
        let view = cluster(vec![], vec![site_view(S0), s1]);
        let vs = InvariantOracle::new().check(&view);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].kind(), "split_home");
    }

    #[test]
    fn multi_home_tolerates_many_coordinators_but_not_shared_locks() {
        let mut s1 = site_view(S1);
        s1.hosts_coordinator = true;
        let mut view = cluster(vec![lock_view()], vec![site_view(S0), s1]);
        view.multi_home_ok = true;
        view.coordinators.push(CoordinatorView {
            site: S1,
            locks: Vec::new(),
            locks_broken: 0,
        });
        // Two coordinators, disjoint lock sets: the directory design.
        assert_eq!(InvariantOracle::new().check(&view), Vec::new());
        // The same lock installed at both homes: an unfenced migration.
        view.coordinators[1].locks = vec![lock_view()];
        let vs = InvariantOracle::new().check(&view);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].kind(), "split_home");
        assert!(vs[0].to_string().contains("site0"));
        assert!(vs[0].to_string().contains("site1"));
    }

    #[test]
    fn up_to_date_outside_membership_flagged() {
        let mut lv = lock_view();
        lv.members = vec![S0, S1];
        lv.up_to_date = vec![S2];
        let view = cluster(vec![lv], vec![site_view(S0)]);
        let vs = InvariantOracle::new().check(&view);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].kind(), "push_set_inconsistent");
    }
}
