//! The real-network runtime: Mocha over OS sockets, event-driven.
//!
//! This driver animates the **same, unmodified** protocol state machines
//! as the simulator and the thread runtime, but the physical layer is
//! real: MochaNet datagrams travel over [`std::net::UdpSocket`]s (the
//! paper's prototype 1, "all communication is performed using Mocha's
//! network object library"), and in hybrid mode bulk replica data rides a
//! real [`std::net::TcpStream`] (prototype 2).
//!
//! ## Anatomy of the runtime
//!
//! Sites are multiplexed over a small fixed pool of **shard** threads
//! instead of one blocking thread per site, so a single process can host
//! a thousand-site loopback swarm on a handful of OS threads:
//!
//! ```text
//!  app threads ──(site, AppRequest)──▶ ┌──────────────────────────────┐
//!  TCP receivers ──(site, Envelope)──▶ │ shard loop                   │
//!  bulk senders ──(site, BulkDone)──▶  │  one UDP socket, N SiteCores │──▶ send_as(from,…)
//!   + Waker (UDP self-wake)            │  deadline index over the     │◀── recv (demux on
//!  runtime ctl ──Boot/Halt──▶          │  sites' TimerWheels          │     envelope `to`)
//!                                      └──────────────────────────────┘
//! ```
//!
//! Each shard owns **one** UDP socket serving every site assigned to it
//! (`site % shard_count`); the wire envelope carries both the source and
//! destination site, and the shard demultiplexes inbound datagrams on the
//! destination. A per-shard deadline index (a [`BTreeSet`] over the
//! sites' [`TimerWheel`](mocha_net::TimerWheel)s) replaces per-site
//! `set_read_timeout` polling: the shard blocks in one
//! [`UdpDriver::recv`] until the earliest deadline across all its sites,
//! and a [`Waker`](mocha_net::Waker) datagram interrupts it when
//! application threads or TCP helper threads enqueue work. Sites can be
//! added and removed at runtime ([`SocketRuntime::add_site`] /
//! [`SocketRuntime::remove_site`]) without touching the thread pool —
//! join/leave churn is a control message, not a thread spawn.
//!
//! Transient OS receive errors are absorbed with a bounded exponential
//! backoff (counted in
//! [`RuntimeMetrics::socket_errors`](crate::runtime::metrics::RuntimeMetrics::socket_errors)),
//! never a fixed sleep.
//!
//! Failure detection is exactly the paper's: persistent datagram loss
//! exhausts MochaNet's retries, surfacing as `SendFailed` /
//! `PeerUnreachable` transport events that the core routes to the owning
//! component — the same code path the thread runtime reaches through its
//! synchronous router and the simulator through simulated loss.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};

use mocha_net::mochanet::{MochaNetEndpoint, TransportStats};
use mocha_net::{
    Action, AddressBook, Backoff, MsgClass, Port, ProtocolMode, SendHandle, TransportEvent,
    UdpDriver, Waker,
};
use mocha_store::{StoreConfig, StoreHandle};
use mocha_wire::{Msg, SiteId};

use crate::cmd::SendTag;
use crate::config::MochaConfig;
use crate::hostfile::HostFile;
use crate::runtime::core::{AppRequest, CoreSeed, Envelope, Link, LoopInput, SiteCore};
use crate::runtime::metrics::{RuntimeCounters, RuntimeMetrics};
use crate::spawn::TaskRegistry;

pub use crate::runtime::core::{Freshness, MochaHandle, Pending, ResultHandle};

/// How long a bulk TCP sender waits to connect / for the receiver's ack
/// before reporting the transfer failed.
const TCP_IO_TIMEOUT: Duration = Duration::from_secs(10);

/// An address book shared across shards and updated on site churn.
type SharedBook = Arc<RwLock<AddressBook>>;

/// Builds an [`AddressBook`] from a [`HostFile`] whose entries carry
/// `name=ip:port` addresses.
///
/// # Errors
///
/// `InvalidInput` if any listed site lacks an address; resolution errors
/// from the OS otherwise.
pub fn address_book(hosts: &HostFile) -> io::Result<AddressBook> {
    let mut book = AddressBook::new();
    for site in hosts.sites() {
        let Some(addr) = hosts.address_of(*site) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("hostfile entry for {site} has no address (need name=ip:port)"),
            ));
        };
        book.insert_resolved(*site, addr)?;
    }
    Ok(book)
}

/// The bulk-transfer TCP leg of the hybrid prototype, owned by a site's
/// [`SocketLink`].
struct TcpLeg {
    /// Where each site's bulk listener lives (its shard's listener).
    book: SharedBook,
    /// Channel back into the *own* shard loop (for `BulkDone`).
    self_tx: Sender<(SiteId, LoopInput)>,
    waker: Waker,
    counters: Arc<RuntimeCounters>,
}

/// Frame format on the bulk TCP connection:
/// `[len: u32 BE][from: u32 BE][to: u32 BE][port: u16 BE][msg bytes]`,
/// answered by a single `1` byte once the receiver has queued the message
/// for its site's loop. The destination travels in the frame because one
/// listener serves every site of a shard.
fn encode_bulk_frame(from: SiteId, to: SiteId, port: Port, msg: &Msg) -> Vec<u8> {
    let body = msg.encode();
    let len = u32::try_from(body.len() + 10).unwrap_or(u32::MAX);
    let mut frame = Vec::with_capacity(4 + 10 + body.len());
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(&from.0.to_be_bytes());
    frame.extend_from_slice(&to.0.to_be_bytes());
    frame.extend_from_slice(&port.to_be_bytes());
    frame.extend_from_slice(&body);
    frame
}

/// Reads one bulk frame off `stream`; `None` on any I/O or decode error
/// (the sender will see the missing ack and report failure). Returns the
/// destination site alongside the envelope so the shard can route it.
fn read_bulk_frame(stream: &mut TcpStream) -> Option<(SiteId, Envelope)> {
    let mut head = [0u8; 4];
    stream.read_exact(&mut head).ok()?;
    let len = u32::from_be_bytes(head) as usize;
    if !(10..=64 * 1024 * 1024).contains(&len) {
        return None;
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).ok()?;
    let from = SiteId(u32::from_be_bytes([body[0], body[1], body[2], body[3]]));
    let to = SiteId(u32::from_be_bytes([body[4], body[5], body[6], body[7]]));
    let port = Port::from_be_bytes([body[8], body[9]]);
    let msg = Msg::decode(&body[10..]).ok()?;
    Some((to, Envelope { from, port, msg }))
}

/// The socket runtime's [`Link`]: control messages enter the site's
/// MochaNet endpoint (drained onto UDP by the shard loop); in hybrid mode
/// bulk messages get a dedicated sender thread and a real TCP connection.
struct SocketLink {
    site: SiteId,
    endpoint: MochaNetEndpoint,
    /// Correlates in-flight MochaNet sends with their protocol tags so
    /// `SendFailed` events can be routed to the owning component.
    tags: HashMap<SendHandle, SendTag>,
    next_handle: u64,
    mode: ProtocolMode,
    tcp: Option<TcpLeg>,
    /// Endpoint stats at the last mirror into the shared runtime counters
    /// (the counters are cluster-wide, so only deltas may be added).
    last_stats: TransportStats,
}

impl Link for SocketLink {
    fn deliver(
        &mut self,
        to: SiteId,
        port: Port,
        msg: Msg,
        class: MsgClass,
        tag: &SendTag,
    ) -> bool {
        if self.mode == ProtocolMode::Hybrid && class == MsgClass::Bulk {
            if let Some(leg) = &self.tcp {
                let Some(addr) = leg.book.read().addr_of(to) else {
                    // No bulk address: an immediate, synchronous failure.
                    return false;
                };
                let frame = encode_bulk_frame(self.site, to, port, &msg);
                leg.counters.inc_datagrams_sent(frame.len() as u64);
                let tx = leg.self_tx.clone();
                // A failed duplication only costs wake latency: the shard
                // loop also wakes on its next timer deadline.
                let waker = leg.waker.try_clone().ok();
                let tag = tag.clone();
                let site = self.site;
                std::thread::spawn(move || {
                    let ok = tcp_send_frame(addr, &frame).is_ok();
                    let _ = tx.send((site, LoopInput::BulkDone { tag, ok }));
                    if let Some(w) = waker {
                        w.wake();
                    }
                });
                return true;
            }
        }
        self.next_handle += 1;
        let handle = SendHandle(self.next_handle);
        if *tag != SendTag::None {
            self.tags.insert(handle, tag.clone());
        }
        self.endpoint.send(to, port, &msg.encode(), handle);
        // MochaNet reports failures asynchronously (retry exhaustion).
        true
    }
}

/// Connects, ships one frame, and waits for the receiver's ack byte.
fn tcp_send_frame(addr: SocketAddr, frame: &[u8]) -> io::Result<()> {
    let mut stream = TcpStream::connect_timeout(&addr, TCP_IO_TIMEOUT)?;
    stream.set_nodelay(true).ok();
    stream.write_all(frame)?;
    stream.set_read_timeout(Some(TCP_IO_TIMEOUT))?;
    let mut ack = [0u8; 1];
    stream.read_exact(&mut ack)?;
    Ok(())
}

/// Accept loop for a shard's bulk listener: one short-lived thread per
/// incoming transfer reads the frame, queues it for the destination
/// site's shard, wakes the shard, and acks.
fn tcp_accept_loop(
    listener: TcpListener,
    tx: Sender<(SiteId, LoopInput)>,
    waker: Waker,
    stop: Arc<AtomicBool>,
    counters: Arc<RuntimeCounters>,
) {
    for conn in listener.incoming() {
        if stop.load(Relaxed) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        let tx = tx.clone();
        // A failed duplication only costs wake latency (the shard polls on
        // timer deadlines); the frame still gets queued and acked.
        let waker = waker.try_clone().ok();
        let counters = counters.clone();
        std::thread::spawn(move || {
            if let Some((to, env)) = read_bulk_frame(&mut stream) {
                counters.inc_datagrams_delivered();
                if tx.send((to, LoopInput::Env(env))).is_ok() {
                    if let Some(w) = waker {
                        w.wake();
                    }
                    let _ = stream.write_all(&[1]);
                }
            }
        });
    }
}

/// Drains protocol commands and transport actions until the site is
/// quiescent: commands feed the endpoint, the endpoint's actions feed the
/// wire / timers / core, delivered messages feed more commands.
fn pump(core: &mut SiteCore<SocketLink>, driver: &UdpDriver, book: &AddressBook) {
    loop {
        core.process_cmds();
        let actions = core.link.endpoint.drain_actions();
        if actions.is_empty() {
            mirror_transport_stats(core);
            return;
        }
        for action in actions {
            match action {
                Action::Transmit { to, datagram } => {
                    core.counters.inc_datagrams_sent(datagram.len() as u64);
                    match driver.send_as(core.site, book, to, &datagram) {
                        Ok(true) => {}
                        // Dropped on the floor: MochaNet's retransmission
                        // turns persistent drops into SendFailed.
                        Ok(false) | Err(_) => core.counters.inc_datagrams_lost(),
                    }
                }
                Action::SetTimer { token, after } => {
                    core.timers.set(token, after, Instant::now());
                }
                Action::CancelTimer { token } => core.timers.cancel(token),
                Action::Charge(_) => {} // real CPU time passes on its own
                Action::Event(event) => handle_transport_event(core, event),
            }
        }
    }
}

/// Adds the endpoint's stat growth since the last mirror to the shared
/// runtime counters. The counters are one cluster-wide snapshot shared by
/// every site, so each site may only contribute deltas.
fn mirror_transport_stats(core: &mut SiteCore<SocketLink>) {
    let stats = core.link.endpoint.stats();
    let last = core.link.last_stats;
    if stats == last {
        return;
    }
    core.counters
        .add_retransmits(stats.retransmits - last.retransmits);
    core.counters
        .add_fast_retransmits(stats.fast_retransmits - last.fast_retransmits);
    core.counters
        .add_rto_backoffs(stats.rto_backoffs - last.rto_backoffs);
    core.counters.set_cwnd(stats.last_cwnd);
    core.link.last_stats = stats;
}

fn handle_transport_event(core: &mut SiteCore<SocketLink>, event: TransportEvent) {
    match event {
        TransportEvent::Delivered { from, port, bytes } => {
            if let Ok(msg) = Msg::decode(&bytes) {
                core.route_msg(from, port, msg);
            }
        }
        TransportEvent::MsgAcked { handle, .. } => {
            core.link.tags.remove(&handle);
        }
        TransportEvent::SendFailed { handle, .. } => {
            if let Some(tag) = core.link.tags.remove(&handle) {
                core.counters.inc_sends_failed();
                core.on_send_failed(&tag);
            }
        }
        TransportEvent::PeerUnreachable { .. } => {
            // Per-send SendFailed events carry the actionable signal; the
            // endpoint fails future sends fast until the peer talks again.
        }
    }
}

/// Control messages from the runtime to a shard loop.
enum ShardCtl {
    /// Adopt a freshly built site core (runtime churn).
    Boot(Box<SiteCore<SocketLink>>),
    /// Drop every core and exit the loop.
    Halt,
}

/// One reactor thread's state: a UDP socket multiplexing its sites, their
/// cores, and a deadline index over their timer wheels.
struct Shard {
    driver: UdpDriver,
    book: SharedBook,
    counters: Arc<RuntimeCounters>,
    input_rx: Receiver<(SiteId, LoopInput)>,
    ctl_rx: Receiver<ShardCtl>,
    cores: HashMap<SiteId, SiteCore<SocketLink>>,
    /// `(deadline, site)` pairs, ordered: the head is the next site whose
    /// timer wheel needs service.
    deadlines: BTreeSet<(Instant, SiteId)>,
    /// Current index entry per site, for O(log n) reinsertion.
    deadline_of: HashMap<SiteId, Instant>,
    /// Recovery pacing for transient OS receive errors.
    backoff: Backoff,
}

impl Shard {
    /// Pumps one site to quiescence and refreshes its deadline entry.
    fn pump_site(&mut self, site: SiteId) {
        if let Some(core) = self.cores.get_mut(&site) {
            core.link.endpoint.set_now(core.epoch.elapsed());
            let book = self.book.read();
            // Non-blocking UDP sends under a read guard; the book is only
            // written on add/remove_site, never on the send path.
            // lint: allow(send-under-lock)
            pump(core, &self.driver, &book);
        }
        self.update_deadline(site);
    }

    fn update_deadline(&mut self, site: SiteId) {
        if let Some(old) = self.deadline_of.remove(&site) {
            self.deadlines.remove(&(old, site));
        }
        if let Some(next) = self.cores.get(&site).and_then(SiteCore::next_deadline) {
            self.deadlines.insert((next, site));
            self.deadline_of.insert(site, next);
        }
    }

    /// How long the shard may block in `recv`: until the earliest pending
    /// deadline across all its sites.
    fn next_timeout(&self) -> Duration {
        self.deadlines
            .iter()
            .next()
            .map_or(Duration::from_millis(200), |(d, _)| {
                d.saturating_duration_since(Instant::now())
            })
            .max(Duration::from_millis(1))
    }

    /// Services every site whose deadline has passed.
    fn fire_due(&mut self) {
        loop {
            let now = Instant::now();
            let Some(&(deadline, site)) = self.deadlines.iter().next() else {
                return;
            };
            if deadline > now {
                return;
            }
            if let Some(core) = self.cores.get_mut(&site) {
                core.link.endpoint.set_now(core.epoch.elapsed());
                for token in core.fire_due_timers() {
                    // Transport-namespace timers belong to the MochaNet
                    // endpoint (the simulated-TCP namespace is never armed
                    // here).
                    core.link.endpoint.on_timer(token);
                }
                self.pump_site(site);
            } else {
                // Stale entry for a reaped site.
                self.deadlines.remove(&(deadline, site));
                self.deadline_of.remove(&site);
            }
        }
    }

    /// Removes cores whose loops have been stopped (site removal or
    /// shutdown), dropping their reply channels.
    fn reap_stopped(&mut self) {
        let stopped: Vec<SiteId> = self
            .cores
            .iter()
            .filter(|(_, c)| c.stop)
            .map(|(s, _)| *s)
            .collect();
        for site in stopped {
            self.cores.remove(&site);
            if let Some(old) = self.deadline_of.remove(&site) {
                self.deadlines.remove(&(old, site));
            }
        }
    }
}

/// Adopts queued site cores; `true` means the shard was told to halt.
fn drain_ctl(shard: &mut Shard) -> bool {
    while let Ok(ctl) = shard.ctl_rx.try_recv() {
        match ctl {
            ShardCtl::Boot(core) => {
                let site = core.site;
                shard.cores.insert(site, *core);
                shard.pump_site(site);
            }
            ShardCtl::Halt => return true,
        }
    }
    false
}

/// The shard event loop: readiness over one socket, N sites.
fn run_shard(mut shard: Shard) {
    // Prime deadlines and flush boot-time commands for pre-loaded cores.
    let sites: Vec<SiteId> = shard.cores.keys().copied().collect();
    for site in sites {
        shard.pump_site(site);
    }
    let mut touched: HashSet<SiteId> = HashSet::new();
    loop {
        if drain_ctl(&mut shard) {
            return;
        }
        touched.clear();
        while let Ok((site, input)) = shard.input_rx.try_recv() {
            if !shard.cores.contains_key(&site) {
                // The site's Boot may still be queued on the control
                // channel (add_site races the first request); adopt
                // pending cores before concluding the site is gone.
                if drain_ctl(&mut shard) {
                    return;
                }
            }
            if let Some(core) = shard.cores.get_mut(&site) {
                core.handle_input(input);
                touched.insert(site);
            }
        }
        for site in touched.drain() {
            shard.pump_site(site);
        }
        shard.reap_stopped();
        match shard.driver.recv(shard.next_timeout()) {
            Ok(mocha_net::udp::Recv::Datagram(inc)) => {
                shard.backoff.reset();
                let site = inc.to;
                if let Some(core) = shard.cores.get_mut(&site) {
                    core.counters.inc_datagrams_delivered();
                    core.link.endpoint.set_now(core.epoch.elapsed());
                    core.link.endpoint.on_datagram(inc.from, &inc.datagram);
                    shard.pump_site(site);
                }
                // A datagram for an unknown site (removed, or never here)
                // is dropped; the sender's retries exhaust into SendFailed
                // exactly as for a dead peer.
            }
            Ok(mocha_net::udp::Recv::Woken | mocha_net::udp::Recv::TimedOut) => {
                shard.backoff.reset();
            }
            Err(_) => {
                // Transient OS error: pause this shard briefly, doubling
                // up to the cap while the condition persists.
                shard.counters.inc_socket_errors();
                // The one sanctioned reactor sleep: exponential backoff
                // (1ms..100ms) after an OS-level socket error, when there
                // is nothing useful the shard could do anyway.
                // lint: allow(blocking)
                std::thread::sleep(shard.backoff.next_delay());
            }
        }
        shard.fire_due();
        shard.reap_stopped();
    }
}

/// Runtime-side handles for one shard thread.
struct ShardHarness {
    input_tx: Sender<(SiteId, LoopInput)>,
    ctl_tx: Sender<ShardCtl>,
    waker: Arc<Waker>,
    udp_addr: SocketAddr,
    tcp: Option<TcpHarness>,
    join: Option<JoinHandle<()>>,
}

struct TcpHarness {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
    join: Option<JoinHandle<()>>,
}

/// Parameters shared by every site of a runtime, kept for churn-time core
/// construction.
struct ClusterShared {
    config: MochaConfig,
    registry: Arc<TaskRegistry>,
    epoch: Instant,
    stable_log: Arc<Mutex<Vec<(SiteId, Msg)>>>,
    counters: Arc<RuntimeCounters>,
    home: SiteId,
    book: SharedBook,
    tcp_book: SharedBook,
    /// Per-site durable storage root (`<dir>/site-<id>/`), when enabled.
    durable: Option<(PathBuf, StoreConfig)>,
}

/// Builds one site's core wired to its shard's channels and sockets.
fn make_core(
    shared: &ClusterShared,
    site: SiteId,
    shard: &ShardHarness,
) -> io::Result<SiteCore<SocketLink>> {
    let leg = if shared.config.net.mode == ProtocolMode::Hybrid {
        Some(TcpLeg {
            book: shared.tcp_book.clone(),
            self_tx: shard.input_tx.clone(),
            waker: shard.waker.try_clone()?,
            counters: shared.counters.clone(),
        })
    } else {
        None
    };
    // The default endpoint epoch is a per-process counter, so a restarted
    // OS process would repeat its predecessor's epochs and peers would
    // mistake its fresh streams for duplicates of the old ones. Fold in
    // boot-time entropy so every process incarnation is distinct on the
    // wire (zero means "unset", so it is avoided).
    let mut endpoint = MochaNetEndpoint::new(shared.config.net.mochanet);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.subsec_nanos());
    endpoint.set_epoch((nanos ^ std::process::id() ^ (site.0 << 20)).max(1));
    let link = SocketLink {
        site,
        endpoint,
        tags: HashMap::new(),
        next_handle: 0,
        mode: shared.config.net.mode,
        tcp: leg,
        last_stats: TransportStats::default(),
    };
    let store = shared
        .durable
        .as_ref()
        .map(|(dir, cfg)| StoreHandle::disk(dir.join(format!("site-{}", site.0)), *cfg));
    // Membership for the consistent-hash directory ring: the current
    // address book, sorted so every site builds the identical ring.
    let mut sites: Vec<SiteId> = shared.book.read().iter().map(|(s, _)| s).collect();
    sites.sort_unstable();
    Ok(SiteCore::new(
        CoreSeed {
            site,
            home: shared.home,
            sites,
            config: shared.config,
            registry: shared.registry.clone(),
            epoch: shared.epoch,
            stable_log: shared.stable_log.clone(),
            counters: shared.counters.clone(),
            store,
        },
        link,
    ))
}

fn invalid_input(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, msg)
}

/// Default shard count: enough threads to use the machine, never more
/// than 8 or the site count.
fn default_shards(sites: usize) -> usize {
    let cpus = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    cpus.min(8).min(sites).max(1)
}

/// Builder for [`SocketRuntime`] (in-process loopback cluster) and
/// [`SocketSite`] (one site of a multi-process deployment).
pub struct SocketRuntimeBuilder {
    sites: usize,
    config: MochaConfig,
    registry: TaskRegistry,
    shards: Option<usize>,
    inject: Option<(u64, u32)>,
    durable: Option<(PathBuf, StoreConfig)>,
}

impl SocketRuntimeBuilder {
    /// Number of sites for [`build`](Self::build) (site 0 is the home
    /// site). Ignored by [`build_site`](Self::build_site).
    #[must_use]
    pub fn sites(mut self, n: usize) -> Self {
        self.sites = n;
        self
    }

    /// Mocha configuration. `config.net.mode` selects the paper's basic
    /// (MochaNet-only) or hybrid (TCP bulk leg) prototype.
    #[must_use]
    pub fn config(mut self, config: MochaConfig) -> Self {
        self.config = config;
        self
    }

    /// Task registry for spawn support.
    #[must_use]
    pub fn registry(mut self, registry: TaskRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Overrides the shard (reactor thread) count for
    /// [`build`](Self::build). Defaults to
    /// `min(available_parallelism, 8, sites)`; clamped to at least 1 and
    /// at most the site count.
    #[must_use]
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = Some(n.max(1));
        self
    }

    /// Test hook: makes roughly one in `one_in` UDP receives fail with a
    /// deterministic, seeded transient error, exercising the shard loops'
    /// backoff recovery. `one_in == 0` disables injection.
    #[must_use]
    pub fn inject_socket_errors(mut self, seed: u64, one_in: u32) -> Self {
        self.inject = Some((seed, one_in));
        self
    }

    /// Enables per-site durability: each site journals applied replica
    /// versions under `dir/site-<id>/` (append-only WAL plus compacting
    /// snapshots), and a restarted site — in-process or a whole restarted
    /// `mochad` — replays them and announces its recovered versions
    /// before rejoining. The `mochad --store-dir` flag maps here.
    #[must_use]
    pub fn store_dir(mut self, dir: impl Into<PathBuf>, config: StoreConfig) -> Self {
        self.durable = Some((dir.into(), config));
        self
    }

    /// Boots an in-process cluster: a fixed pool of shard threads, each
    /// owning one UDP socket on an ephemeral loopback port (plus one TCP
    /// bulk listener in hybrid mode), multiplexing the sites assigned to
    /// it — real sockets, one process, a few threads regardless of site
    /// count. The shape tests, examples, and the swarm bench use.
    ///
    /// # Errors
    ///
    /// `InvalidInput` if `sites == 0` or the configuration is invalid;
    /// socket bind/configuration failures otherwise.
    pub fn build(self) -> io::Result<SocketRuntime> {
        if self.sites == 0 {
            return Err(invalid_input("at least one site is required".into()));
        }
        self.config
            .validate()
            .map_err(|e| invalid_input(format!("invalid MochaConfig: {e}")))?;
        let hybrid = self.config.net.mode == ProtocolMode::Hybrid;
        let loopback: SocketAddr = "127.0.0.1:0".parse().expect("loopback addr");
        let nshards = self
            .shards
            .unwrap_or_else(|| default_shards(self.sites))
            .clamp(1, self.sites);

        // Bind every shard socket first so the shared address books are
        // complete before any loop starts.
        struct ShardSeed {
            driver: UdpDriver,
            udp_addr: SocketAddr,
            listener: Option<TcpListener>,
            tcp_addr: Option<SocketAddr>,
            input_rx: Receiver<(SiteId, LoopInput)>,
            ctl_rx: Receiver<ShardCtl>,
        }
        let mut seeds = Vec::new();
        let mut harnesses = Vec::new();
        for s in 0..nshards {
            let shard_id = SiteId(u32::try_from(s).unwrap_or(u32::MAX));
            let mut driver = UdpDriver::bind(shard_id, loopback)?;
            if let Some((seed, one_in)) = self.inject {
                driver.inject_recv_errors(seed.wrapping_add(s as u64), one_in);
            }
            let udp_addr = driver.local_addr()?;
            let waker = Arc::new(driver.waker()?);
            let listener = if hybrid {
                Some(TcpListener::bind(loopback)?)
            } else {
                None
            };
            let tcp_addr = match &listener {
                Some(l) => Some(l.local_addr()?),
                None => None,
            };
            let (input_tx, input_rx) = unbounded();
            let (ctl_tx, ctl_rx) = unbounded();
            seeds.push(ShardSeed {
                driver,
                udp_addr,
                listener,
                tcp_addr,
                input_rx,
                ctl_rx,
            });
            harnesses.push(ShardHarness {
                input_tx,
                ctl_tx,
                waker,
                udp_addr,
                tcp: None,
                join: None,
            });
        }

        let book: SharedBook = Arc::new(RwLock::new(AddressBook::new()));
        let tcp_book: SharedBook = Arc::new(RwLock::new(AddressBook::new()));
        for i in 0..self.sites {
            let site = SiteId(u32::try_from(i).map_err(|_| {
                invalid_input(format!("site count {i} does not fit in a u32"))
            })?);
            let seed = &seeds[i % nshards];
            book.write().insert(site, seed.udp_addr);
            if let Some(addr) = seed.tcp_addr {
                tcp_book.write().insert(site, addr);
            }
        }

        let shared = ClusterShared {
            config: self.config,
            registry: Arc::new(self.registry),
            epoch: Instant::now(),
            stable_log: Arc::new(Mutex::new(Vec::new())),
            counters: Arc::new(RuntimeCounters::default()),
            home: SiteId(0),
            book: book.clone(),
            tcp_book,
            durable: self.durable,
        };

        // Build every core, grouped by shard, then start the loops.
        let mut cores_by_shard: Vec<HashMap<SiteId, SiteCore<SocketLink>>> =
            (0..nshards).map(|_| HashMap::new()).collect();
        let mut handles = Vec::new();
        for i in 0..self.sites {
            let site = SiteId(u32::try_from(i).unwrap_or(u32::MAX));
            let shard_idx = i % nshards;
            let core = make_core(&shared, site, &harnesses[shard_idx])?;
            cores_by_shard[shard_idx].insert(site, core);
            handles.push(MochaHandle::new(
                site,
                harnesses[shard_idx].input_tx.clone(),
                Some(harnesses[shard_idx].waker.clone()),
            ));
        }
        for (s, (seed, cores)) in seeds.into_iter().zip(cores_by_shard).enumerate() {
            let harness = &mut harnesses[s];
            if let Some(listener) = seed.listener {
                let stop = Arc::new(AtomicBool::new(false));
                let addr = listener.local_addr()?;
                let accept_waker = harness.waker.try_clone()?;
                let join = std::thread::Builder::new()
                    .name(format!("mocha-bulk-{s}"))
                    .spawn({
                        let tx = harness.input_tx.clone();
                        let stop = stop.clone();
                        let counters = shared.counters.clone();
                        move || tcp_accept_loop(listener, tx, accept_waker, stop, counters)
                    })?;
                harness.tcp = Some(TcpHarness {
                    stop,
                    addr,
                    join: Some(join),
                });
            }
            let shard = Shard {
                driver: seed.driver,
                book: book.clone(),
                counters: shared.counters.clone(),
                input_rx: seed.input_rx,
                ctl_rx: seed.ctl_rx,
                cores,
                deadlines: BTreeSet::new(),
                deadline_of: HashMap::new(),
                backoff: Backoff::default(),
            };
            harness.join = Some(
                std::thread::Builder::new()
                    .name(format!("mocha-shard-{s}"))
                    .spawn(move || run_shard(shard))?,
            );
        }
        let next_site = u32::try_from(self.sites).unwrap_or(u32::MAX);
        Ok(SocketRuntime {
            shards: harnesses,
            handles,
            shared,
            next_site,
        })
    }

    /// Boots exactly one site of a distributed deployment — the `mochad`
    /// entry point, a single-shard runtime. `book` must map **every**
    /// site (including this one) to its UDP address; this site binds its
    /// own entry. In hybrid mode a TCP listener is bound on the same port
    /// (TCP and UDP port spaces are disjoint), so one hostfile address
    /// serves both legs.
    ///
    /// The home site (coordinator) is `book`'s site 0 by convention; pass
    /// it explicitly as `home`.
    ///
    /// # Errors
    ///
    /// `InvalidInput` if the configuration is invalid or `site` is
    /// missing from `book`; bind failures otherwise.
    pub fn build_site(
        self,
        site: SiteId,
        home: SiteId,
        book: AddressBook,
    ) -> io::Result<SocketSite> {
        self.config
            .validate()
            .map_err(|e| invalid_input(format!("invalid MochaConfig: {e}")))?;
        let Some(bind) = book.addr_of(site) else {
            return Err(invalid_input(format!("{site} has no address in the book")));
        };
        let mut driver = UdpDriver::bind(site, bind)?;
        if let Some((seed, one_in)) = self.inject {
            driver.inject_recv_errors(seed, one_in);
        }
        let hybrid = self.config.net.mode == ProtocolMode::Hybrid;
        let listener = if hybrid {
            Some(TcpListener::bind(bind)?)
        } else {
            None
        };
        let waker = Arc::new(driver.waker()?);
        let (input_tx, input_rx) = unbounded();
        let (ctl_tx, ctl_rx) = unbounded();
        let shared_book: SharedBook = Arc::new(RwLock::new(book.clone()));
        let shared = ClusterShared {
            config: self.config,
            registry: Arc::new(self.registry),
            epoch: Instant::now(),
            stable_log: Arc::new(Mutex::new(Vec::new())),
            counters: Arc::new(RuntimeCounters::default()),
            home,
            book: shared_book.clone(),
            tcp_book: Arc::new(RwLock::new(book)),
            durable: self.durable,
        };
        let mut harness = ShardHarness {
            input_tx,
            ctl_tx,
            waker,
            udp_addr: driver.local_addr()?,
            tcp: None,
            join: None,
        };
        let core = make_core(&shared, site, &harness)?;
        if let Some(listener) = listener {
            let stop = Arc::new(AtomicBool::new(false));
            let addr = listener.local_addr()?;
            let accept_waker = harness.waker.try_clone()?;
            let join = std::thread::Builder::new()
                .name(format!("mocha-bulk-{}", site.0))
                .spawn({
                    let tx = harness.input_tx.clone();
                    let stop = stop.clone();
                    let counters = shared.counters.clone();
                    move || tcp_accept_loop(listener, tx, accept_waker, stop, counters)
                })?;
            harness.tcp = Some(TcpHarness {
                stop,
                addr,
                join: Some(join),
            });
        }
        let recovered_locks = core.recovered_locks;
        let mut cores = HashMap::new();
        cores.insert(site, core);
        let shard = Shard {
            driver,
            book: shared_book,
            counters: shared.counters.clone(),
            input_rx,
            ctl_rx,
            cores,
            deadlines: BTreeSet::new(),
            deadline_of: HashMap::new(),
            backoff: Backoff::default(),
        };
        harness.join = Some(
            std::thread::Builder::new()
                .name(format!("mocha-sock-{}", site.0))
                .spawn(move || run_shard(shard))?,
        );
        let handle = MochaHandle::new(site, harness.input_tx.clone(), Some(harness.waker.clone()));
        Ok(SocketSite {
            harness,
            handle,
            counters: shared.counters,
            recovered_locks,
        })
    }
}

fn teardown_shard(shard: &mut ShardHarness) {
    let _ = shard.ctl_tx.send(ShardCtl::Halt);
    shard.waker.wake();
    if let Some(tcp) = &mut shard.tcp {
        tcp.stop.store(true, Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&tcp.addr, Duration::from_millis(500));
        if let Some(join) = tcp.join.take() {
            let _ = join.join();
        }
    }
    if let Some(join) = shard.join.take() {
        let _ = join.join();
    }
}

/// An in-process cluster of sites multiplexed over a small pool of shard
/// threads, talking over real loopback sockets.
pub struct SocketRuntime {
    shards: Vec<ShardHarness>,
    handles: Vec<MochaHandle>,
    shared: ClusterShared,
    next_site: u32,
}

impl std::fmt::Debug for SocketRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketRuntime")
            .field("sites", &self.handles.len())
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl SocketRuntime {
    /// Starts building a runtime. Defaults: 2 sites, default config
    /// (basic prototype), automatic shard count.
    pub fn builder() -> SocketRuntimeBuilder {
        SocketRuntimeBuilder {
            sites: 2,
            config: MochaConfig::default(),
            registry: TaskRegistry::new(),
            shards: None,
            inject: None,
            durable: None,
        }
    }

    /// The handle at position `i` (creation order; removal reorders the
    /// tail).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn handle(&self, i: usize) -> MochaHandle {
        self.handles[i].clone()
    }

    /// Number of live sites.
    pub fn site_count(&self) -> usize {
        self.handles.len()
    }

    /// Number of shard (reactor) threads serving those sites.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// A snapshot of the cluster-wide transport/timer counters.
    pub fn metrics(&self) -> RuntimeMetrics {
        self.shared.counters.snapshot()
    }

    /// Adds a new site to the cluster at runtime (join churn): the site
    /// gets a fresh id, is assigned to an existing shard, and starts
    /// empty — it must register its replicas to participate. No thread is
    /// spawned.
    ///
    /// # Errors
    ///
    /// Socket/OS resource failures; `Other` if the runtime is shutting
    /// down.
    pub fn add_site(&mut self) -> io::Result<MochaHandle> {
        let site = SiteId(self.next_site);
        self.next_site = self.next_site.wrapping_add(1);
        let idx = site.0 as usize % self.shards.len();
        let shard = &self.shards[idx];
        self.shared.book.write().insert(site, shard.udp_addr);
        if let Some(tcp) = &shard.tcp {
            self.shared.tcp_book.write().insert(site, tcp.addr);
        }
        let core = make_core(&self.shared, site, shard)?;
        shard
            .ctl_tx
            .send(ShardCtl::Boot(Box::new(core)))
            .map_err(|_| io::Error::other("shard loop has stopped"))?;
        shard.waker.wake();
        let handle = MochaHandle::new(site, shard.input_tx.clone(), Some(shard.waker.clone()));
        // Existing sites learn the newcomer's ring shards (directory mode;
        // a no-op for single-home cores). The new core itself was built
        // from the already-updated address book.
        for peer in &self.handles {
            let _ = peer.push(LoopInput::App(AppRequest::RingChange { site, joined: true }));
        }
        self.handles.push(handle.clone());
        Ok(handle)
    }

    /// Removes a site (leave churn): its core is dropped by its shard and
    /// subsequent sends to it fail through retry exhaustion, exactly like
    /// a dead peer. No-op if the site is not present.
    pub fn remove_site(&mut self, site: SiteId) {
        if let Some(pos) = self.handles.iter().position(|h| h.site() == site) {
            let handle = self.handles.swap_remove(pos);
            let _ = handle.push(LoopInput::App(AppRequest::Stop));
            // Survivors drop the departed site's ring shards, forcing any
            // lock whose (migrated) home just died back to ring placement
            // on a live site — without this the directory would keep
            // routing those locks at a dead coordinator forever.
            for peer in &self.handles {
                let _ = peer.push(LoopInput::App(AppRequest::RingChange {
                    site,
                    joined: false,
                }));
            }
        }
    }

    /// Stops every shard loop and joins all helper threads.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        for shard in &mut self.shards {
            teardown_shard(shard);
        }
    }
}

impl Drop for SocketRuntime {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// One booted site of a multi-process deployment (see the `mochad`
/// binary). Applications talk to it through [`handle`](SocketSite::handle)
/// exactly as with the other runtimes.
pub struct SocketSite {
    harness: ShardHarness,
    handle: MochaHandle,
    counters: Arc<RuntimeCounters>,
    recovered_locks: usize,
}

impl std::fmt::Debug for SocketSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SocketSite({})", self.handle.site())
    }
}

impl SocketSite {
    /// The handle for this site.
    pub fn handle(&self) -> MochaHandle {
        self.handle.clone()
    }

    /// A snapshot of this process's transport/timer counters.
    pub fn metrics(&self) -> RuntimeMetrics {
        self.counters.snapshot()
    }

    /// How many locks the durable store recovered a post-initial version
    /// for when this site booted — 0 when durability is off or the store
    /// was fresh. A restarted `mochad` uses this to report that it came
    /// back from its journal rather than from a peer's full transfer.
    pub fn recovered_locks(&self) -> usize {
        self.recovered_locks
    }

    /// Stops the site loop and joins all helper threads.
    pub fn shutdown(mut self) {
        teardown_shard(&mut self.harness);
    }
}

impl Drop for SocketSite {
    fn drop(&mut self) {
        teardown_shard(&mut self.harness);
    }
}

/// Convenience: did this process manage to bind a loopback UDP socket?
/// Tests call this to skip gracefully in network-less sandboxes.
pub fn loopback_available() -> bool {
    std::net::UdpSocket::bind("127.0.0.1:0").is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AvailabilityConfig;
    use crate::replica::{replica_id, ReplicaSpec};
    use mocha_wire::{LockId, ReplicaPayload};

    const L: LockId = LockId(1);

    fn specs(name: &str) -> Vec<ReplicaSpec> {
        vec![ReplicaSpec::new(name, ReplicaPayload::empty())]
    }

    #[test]
    fn bulk_frame_roundtrips_over_loopback_tcp() {
        if !loopback_available() {
            eprintln!("skipping: no loopback sockets");
            return;
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let msg = Msg::SyncMoved {
            new_home: SiteId(3),
        };
        let frame = encode_bulk_frame(SiteId(7), SiteId(9), 2, &msg);
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let out = read_bulk_frame(&mut stream).unwrap();
            stream.write_all(&[1]).unwrap();
            out
        });
        tcp_send_frame(addr, &frame).unwrap();
        let (to, env) = server.join().unwrap();
        assert_eq!(to, SiteId(9));
        assert_eq!(env.from, SiteId(7));
        assert_eq!(env.port, 2);
        assert_eq!(
            env.msg,
            Msg::SyncMoved {
                new_home: SiteId(3)
            }
        );
    }

    #[test]
    fn builder_rejects_invalid_config_without_panicking() {
        let bad = MochaConfig {
            default_lease: Duration::ZERO,
            ..MochaConfig::default()
        };
        let err = SocketRuntime::builder()
            .sites(2)
            .config(bad)
            .build()
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("invalid MochaConfig"));

        let err = SocketRuntime::builder()
            .config(bad)
            .build_site(SiteId(0), SiteId(0), AddressBook::new())
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn builder_rejects_zero_sites_without_panicking() {
        let err = SocketRuntime::builder().sites(0).build().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn build_site_rejects_missing_book_entry() {
        let err = SocketRuntime::builder()
            .build_site(SiteId(5), SiteId(0), AddressBook::new())
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn loopback_cluster_lock_write_read() {
        if !loopback_available() {
            eprintln!("skipping: no loopback sockets");
            return;
        }
        let rt = SocketRuntime::builder().sites(2).build().unwrap();
        let a = rt.handle(0);
        let b = rt.handle(1);
        let idx = replica_id("v");
        a.register(L, specs("v")).unwrap();
        b.register(L, specs("v")).unwrap();

        a.lock(L).unwrap();
        a.write(idx, ReplicaPayload::I64s(vec![100])).unwrap();
        a.unlock(L, true).unwrap();

        // Real UDP carried the grant + daemon-to-daemon transfer here.
        b.lock(L).unwrap();
        assert_eq!(b.read(idx).unwrap(), ReplicaPayload::I64s(vec![100]));
        b.write(idx, ReplicaPayload::I64s(vec![101])).unwrap();
        b.unlock(L, true).unwrap();

        a.lock(L).unwrap();
        assert_eq!(a.read(idx).unwrap(), ReplicaPayload::I64s(vec![101]));
        a.unlock(L, false).unwrap();

        let m = rt.metrics();
        assert!(m.datagrams_sent > 0, "UDP datagrams actually flowed");
        assert!(m.datagrams_delivered > 0);
        assert!(m.msgs_sent > 0);
        assert!(m.bytes_sent > 0);
        rt.shutdown();
    }

    #[test]
    fn many_sites_share_one_shard() {
        if !loopback_available() {
            eprintln!("skipping: no loopback sockets");
            return;
        }
        // 6 sites on exactly one reactor thread: multiplexing, not
        // thread-per-site.
        let rt = SocketRuntime::builder().sites(6).shards(1).build().unwrap();
        assert_eq!(rt.shard_count(), 1);
        let idx = replica_id("m");
        for i in 0..6 {
            rt.handle(i).register(L, specs("m")).unwrap();
        }
        for i in 0..6 {
            let h = rt.handle(i);
            h.lock(L).unwrap();
            let prev = match h.read(idx).unwrap() {
                ReplicaPayload::I32s(v) => v.first().copied().unwrap_or(0),
                _ => 0,
            };
            h.write(idx, ReplicaPayload::I32s(vec![prev + 1])).unwrap();
            h.unlock(L, true).unwrap();
        }
        let h = rt.handle(0);
        h.lock(L).unwrap();
        assert_eq!(h.read(idx).unwrap(), ReplicaPayload::I32s(vec![6]));
        h.unlock(L, false).unwrap();
        rt.shutdown();
    }

    #[test]
    fn churn_add_and_remove_sites_at_runtime() {
        if !loopback_available() {
            eprintln!("skipping: no loopback sockets");
            return;
        }
        let mut rt = SocketRuntime::builder().sites(2).build().unwrap();
        let idx = replica_id("c");
        rt.handle(0).register(L, specs("c")).unwrap();
        rt.handle(0).lock(L).unwrap();
        rt.handle(0)
            .write(idx, ReplicaPayload::I32s(vec![7]))
            .unwrap();
        rt.handle(0).unlock(L, true).unwrap();

        // A latecomer joins, registers, and reads the current state.
        let joined = rt.add_site().unwrap();
        joined.register(L, specs("c")).unwrap();
        joined.lock(L).unwrap();
        assert_eq!(joined.read(idx).unwrap(), ReplicaPayload::I32s(vec![7]));
        joined.unlock(L, false).unwrap();

        // And leaves again; the cluster keeps working.
        let gone = joined.site();
        rt.remove_site(gone);
        rt.handle(0).lock(L).unwrap();
        rt.handle(0).unlock(L, false).unwrap();
        rt.shutdown();
    }

    #[test]
    fn hybrid_mode_moves_bulk_data_over_tcp() {
        if !loopback_available() {
            eprintln!("skipping: no loopback sockets");
            return;
        }
        let rt = SocketRuntime::builder()
            .sites(2)
            .config(MochaConfig::hybrid())
            .build()
            .unwrap();
        let a = rt.handle(0);
        let b = rt.handle(1);
        let idx = replica_id("blob");
        a.register(L, specs("blob")).unwrap();
        b.register(L, specs("blob")).unwrap();

        // A payload large enough to be unambiguous bulk data.
        let blob: Vec<i64> = (0..20_000).collect();
        a.lock(L).unwrap();
        a.write(idx, ReplicaPayload::I64s(blob.clone())).unwrap();
        a.unlock(L, true).unwrap();

        b.lock(L).unwrap();
        assert_eq!(b.read(idx).unwrap(), ReplicaPayload::I64s(blob));
        b.unlock(L, false).unwrap();
        rt.shutdown();
    }

    #[test]
    fn ur_dissemination_fans_out_over_real_sockets() {
        if !loopback_available() {
            eprintln!("skipping: no loopback sockets");
            return;
        }
        let rt = SocketRuntime::builder().sites(3).build().unwrap();
        let idx = replica_id("shared");
        for i in 0..3 {
            rt.handle(i).register(L, specs("shared")).unwrap();
        }
        let writer = rt.handle(1);
        writer
            .set_availability(
                L,
                AvailabilityConfig {
                    ur: 3,
                    ..AvailabilityConfig::default()
                },
            )
            .unwrap();
        writer.lock(L).unwrap();
        writer
            .write(idx, ReplicaPayload::Utf8("disseminated".into()))
            .unwrap();
        // With UR=3 the release pushes the update to the other replica
        // holders before completing.
        writer.unlock(L, true).unwrap();

        // Readers see the value after a local (shared-mode) acquisition —
        // their daemons already hold the pushed version.
        for i in [0usize, 2] {
            let h = rt.handle(i);
            h.lock(L).unwrap();
            assert_eq!(
                h.read(idx).unwrap(),
                ReplicaPayload::Utf8("disseminated".into())
            );
            h.unlock(L, false).unwrap();
        }
        rt.shutdown();
    }

    #[test]
    fn injected_socket_errors_are_absorbed_by_backoff() {
        if !loopback_available() {
            eprintln!("skipping: no loopback sockets");
            return;
        }
        // Roughly one receive in three fails with a seeded transient
        // error; the workload must still complete and the metric must
        // record the recoveries.
        let rt = SocketRuntime::builder()
            .sites(2)
            .inject_socket_errors(0xC0FF_EE00, 3)
            .build()
            .unwrap();
        let a = rt.handle(0);
        let b = rt.handle(1);
        let idx = replica_id("e");
        a.register(L, specs("e")).unwrap();
        b.register(L, specs("e")).unwrap();
        for round in 0..3i32 {
            a.lock(L).unwrap();
            a.write(idx, ReplicaPayload::I32s(vec![round])).unwrap();
            a.unlock(L, true).unwrap();
            b.lock(L).unwrap();
            assert_eq!(b.read(idx).unwrap(), ReplicaPayload::I32s(vec![round]));
            b.unlock(L, false).unwrap();
        }
        let m = rt.metrics();
        assert!(
            m.socket_errors > 0,
            "injected errors should be counted: {m}"
        );
        rt.shutdown();
    }

    #[test]
    fn async_api_overlaps_requests_from_one_driver_thread() {
        if !loopback_available() {
            eprintln!("skipping: no loopback sockets");
            return;
        }
        let rt = SocketRuntime::builder().sites(3).build().unwrap();
        // Each site guards its own lock so the acquires are independent.
        for i in 0..3 {
            let lock = LockId(u32::try_from(i).unwrap() + 1);
            rt.handle(i)
                .register(lock, vec![ReplicaSpec::new("a", ReplicaPayload::empty())])
                .unwrap();
        }
        // One driver thread keeps all three acquires in flight at once.
        let pendings: Vec<_> = (0..3)
            .map(|i| {
                let lock = LockId(u32::try_from(i).unwrap() + 1);
                (i, lock, rt.handle(i).lock_async(lock).unwrap())
            })
            .collect();
        for (i, lock, p) in pendings {
            p.wait().unwrap();
            rt.handle(i).unlock_async(lock, false).unwrap().wait().unwrap();
        }
        rt.shutdown();
    }

    #[test]
    fn address_book_from_hostfile_requires_addresses() {
        let with: HostFile = "site0=127.0.0.1:7100\nsite1=127.0.0.1:7101\n"
            .parse()
            .unwrap();
        let book = address_book(&with).unwrap();
        assert_eq!(book.len(), 2);
        assert_eq!(
            book.addr_of(SiteId(1)),
            Some("127.0.0.1:7101".parse().unwrap())
        );

        let without: HostFile = "site0\n".parse().unwrap();
        assert!(address_book(&without).is_err());
    }
}
