//! The real-network runtime: Mocha over OS sockets.
//!
//! This driver animates the **same, unmodified** protocol state machines
//! as the simulator and the thread runtime, but the physical layer is
//! real: MochaNet datagrams travel over [`std::net::UdpSocket`]s (the
//! paper's prototype 1, "all communication is performed using Mocha's
//! network object library"), and in hybrid mode bulk replica data rides a
//! real [`std::net::TcpStream`] (prototype 2). Each site is one event
//! loop; sites may share a process (ephemeral loopback ports — the
//! in-process cluster used by tests and [`examples`]) or run one per OS
//! process on hosts named by a hostfile (the `mochad` binary).
//!
//! ## Anatomy of a site
//!
//! ```text
//!  app threads ──AppRequest──▶ ┌────────────────────────────┐
//!  TCP receivers ──Envelope──▶ │ site loop (SiteCore)       │──▶ UdpDriver.send
//!  bulk senders ──BulkDone──▶  │  MochaNetEndpoint (retx,   │◀── UdpDriver.recv
//!     + Waker (UDP self-wake)  │  frag/reassembly, acks)    │
//!                              └────────────────────────────┘
//! ```
//!
//! The loop blocks in [`UdpDriver::recv`] until the next timer deadline;
//! a [`Waker`](mocha_net::Waker) datagram interrupts it when application
//! threads or TCP helper threads enqueue work. One [`TimerWheel`] per
//! site carries *both* MochaNet's retransmission timers and the protocol
//! components' lease/heartbeat/recovery timers, mirroring the simulator's
//! single event queue.
//!
//! Failure detection is exactly the paper's: persistent datagram loss
//! exhausts MochaNet's retries, surfacing as `SendFailed` /
//! `PeerUnreachable` transport events that the core routes to the owning
//! component — the same code path the thread runtime reaches through its
//! synchronous router and the simulator through simulated loss.

use std::collections::HashMap;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use mocha_net::mochanet::{MochaNetEndpoint, TransportStats};
use mocha_net::{
    Action, AddressBook, MsgClass, Port, ProtocolMode, SendHandle, TransportEvent, UdpDriver, Waker,
};
use mocha_wire::{Msg, SiteId};

use crate::cmd::SendTag;
use crate::config::MochaConfig;
use crate::hostfile::HostFile;
use crate::runtime::core::{AppRequest, CoreSeed, Envelope, Link, LoopInput, SiteCore};
use crate::runtime::metrics::{RuntimeCounters, RuntimeMetrics};
use crate::spawn::TaskRegistry;

pub use crate::runtime::core::{Freshness, MochaHandle, ResultHandle};

/// How long a bulk TCP sender waits to connect / for the receiver's ack
/// before reporting the transfer failed.
const TCP_IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Builds an [`AddressBook`] from a [`HostFile`] whose entries carry
/// `name=ip:port` addresses.
///
/// # Errors
///
/// `InvalidInput` if any listed site lacks an address; resolution errors
/// from the OS otherwise.
pub fn address_book(hosts: &HostFile) -> io::Result<AddressBook> {
    let mut book = AddressBook::new();
    for site in hosts.sites() {
        let Some(addr) = hosts.address_of(*site) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("hostfile entry for {site} has no address (need name=ip:port)"),
            ));
        };
        book.insert_resolved(*site, addr)?;
    }
    Ok(book)
}

/// The bulk-transfer TCP leg of the hybrid prototype, owned by a site's
/// [`SocketLink`].
struct TcpLeg {
    /// Where each site's bulk listener lives.
    book: AddressBook,
    /// Channel back into the *own* site loop (for `BulkDone`).
    self_tx: Sender<LoopInput>,
    waker: Waker,
    counters: Arc<RuntimeCounters>,
}

/// Frame format on the bulk TCP connection:
/// `[len: u32 BE][from: u32 BE][port: u16 BE][msg bytes]`, answered by a
/// single `1` byte once the receiver has queued the message for its loop.
fn encode_bulk_frame(from: SiteId, port: Port, msg: &Msg) -> Vec<u8> {
    let body = msg.encode();
    let len = u32::try_from(body.len() + 6).unwrap_or(u32::MAX);
    let mut frame = Vec::with_capacity(4 + 6 + body.len());
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(&from.0.to_be_bytes());
    frame.extend_from_slice(&port.to_be_bytes());
    frame.extend_from_slice(&body);
    frame
}

/// Reads one bulk frame off `stream`; `None` on any I/O or decode error
/// (the sender will see the missing ack and report failure).
fn read_bulk_frame(stream: &mut TcpStream) -> Option<Envelope> {
    let mut head = [0u8; 4];
    stream.read_exact(&mut head).ok()?;
    let len = u32::from_be_bytes(head) as usize;
    if !(6..=64 * 1024 * 1024).contains(&len) {
        return None;
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).ok()?;
    let from = SiteId(u32::from_be_bytes([body[0], body[1], body[2], body[3]]));
    let port = Port::from_be_bytes([body[4], body[5]]);
    let msg = Msg::decode(&body[6..]).ok()?;
    Some(Envelope { from, port, msg })
}

/// The socket runtime's [`Link`]: control messages enter the site's
/// MochaNet endpoint (drained onto UDP by the loop); in hybrid mode bulk
/// messages get a dedicated sender thread and a real TCP connection.
struct SocketLink {
    site: SiteId,
    endpoint: MochaNetEndpoint,
    /// Correlates in-flight MochaNet sends with their protocol tags so
    /// `SendFailed` events can be routed to the owning component.
    tags: HashMap<SendHandle, SendTag>,
    next_handle: u64,
    mode: ProtocolMode,
    tcp: Option<TcpLeg>,
    /// Endpoint stats at the last mirror into the shared runtime counters
    /// (the counters are cluster-wide, so only deltas may be added).
    last_stats: TransportStats,
}

impl Link for SocketLink {
    fn deliver(
        &mut self,
        to: SiteId,
        port: Port,
        msg: Msg,
        class: MsgClass,
        tag: &SendTag,
    ) -> bool {
        if self.mode == ProtocolMode::Hybrid && class == MsgClass::Bulk {
            if let Some(leg) = &self.tcp {
                let Some(addr) = leg.book.addr_of(to) else {
                    // No bulk address: an immediate, synchronous failure.
                    return false;
                };
                let frame = encode_bulk_frame(self.site, port, &msg);
                leg.counters.inc_datagrams_sent(frame.len() as u64);
                let tx = leg.self_tx.clone();
                // A failed duplication only costs wake latency: the site
                // loop also wakes on its next timer deadline.
                let waker = leg.waker.try_clone().ok();
                let tag = tag.clone();
                std::thread::spawn(move || {
                    let ok = tcp_send_frame(addr, &frame).is_ok();
                    let _ = tx.send(LoopInput::BulkDone { tag, ok });
                    if let Some(w) = waker {
                        w.wake();
                    }
                });
                return true;
            }
        }
        self.next_handle += 1;
        let handle = SendHandle(self.next_handle);
        if *tag != SendTag::None {
            self.tags.insert(handle, tag.clone());
        }
        self.endpoint.send(to, port, &msg.encode(), handle);
        // MochaNet reports failures asynchronously (retry exhaustion).
        true
    }
}

/// Connects, ships one frame, and waits for the receiver's ack byte.
fn tcp_send_frame(addr: SocketAddr, frame: &[u8]) -> io::Result<()> {
    let mut stream = TcpStream::connect_timeout(&addr, TCP_IO_TIMEOUT)?;
    stream.set_nodelay(true).ok();
    stream.write_all(frame)?;
    stream.set_read_timeout(Some(TCP_IO_TIMEOUT))?;
    let mut ack = [0u8; 1];
    stream.read_exact(&mut ack)?;
    Ok(())
}

/// Accept loop for a site's bulk listener: one short-lived thread per
/// incoming transfer reads the frame, queues it for the site loop, wakes
/// the loop, and acks.
fn tcp_accept_loop(
    listener: TcpListener,
    tx: Sender<LoopInput>,
    waker: Waker,
    stop: Arc<AtomicBool>,
    counters: Arc<RuntimeCounters>,
) {
    for conn in listener.incoming() {
        if stop.load(Relaxed) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        let tx = tx.clone();
        // A failed duplication only costs wake latency (the loop polls on
        // timer deadlines); the frame still gets queued and acked.
        let waker = waker.try_clone().ok();
        let counters = counters.clone();
        std::thread::spawn(move || {
            if let Some(env) = read_bulk_frame(&mut stream) {
                counters.inc_datagrams_delivered();
                if tx.send(LoopInput::Env(env)).is_ok() {
                    if let Some(w) = waker {
                        w.wake();
                    }
                    let _ = stream.write_all(&[1]);
                }
            }
        });
    }
}

/// Drains protocol commands and transport actions until the site is
/// quiescent: commands feed the endpoint, the endpoint's actions feed the
/// wire / timers / core, delivered messages feed more commands.
fn pump(core: &mut SiteCore<SocketLink>, driver: &UdpDriver, book: &AddressBook) {
    loop {
        core.process_cmds();
        let actions = core.link.endpoint.drain_actions();
        if actions.is_empty() {
            mirror_transport_stats(core);
            return;
        }
        for action in actions {
            match action {
                Action::Transmit { to, datagram } => {
                    core.counters.inc_datagrams_sent(datagram.len() as u64);
                    match driver.send(book, to, &datagram) {
                        Ok(true) => {}
                        // Dropped on the floor: MochaNet's retransmission
                        // turns persistent drops into SendFailed.
                        Ok(false) | Err(_) => core.counters.inc_datagrams_lost(),
                    }
                }
                Action::SetTimer { token, after } => {
                    core.timers.set(token, after, Instant::now());
                }
                Action::CancelTimer { token } => core.timers.cancel(token),
                Action::Charge(_) => {} // real CPU time passes on its own
                Action::Event(event) => handle_transport_event(core, event),
            }
        }
    }
}

/// Adds the endpoint's stat growth since the last mirror to the shared
/// runtime counters. The counters are one cluster-wide snapshot shared by
/// every site loop, so each loop may only contribute deltas.
fn mirror_transport_stats(core: &mut SiteCore<SocketLink>) {
    let stats = core.link.endpoint.stats();
    let last = core.link.last_stats;
    if stats == last {
        return;
    }
    core.counters
        .add_retransmits(stats.retransmits - last.retransmits);
    core.counters
        .add_fast_retransmits(stats.fast_retransmits - last.fast_retransmits);
    core.counters
        .add_rto_backoffs(stats.rto_backoffs - last.rto_backoffs);
    core.counters.set_cwnd(stats.last_cwnd);
    core.link.last_stats = stats;
}

fn handle_transport_event(core: &mut SiteCore<SocketLink>, event: TransportEvent) {
    match event {
        TransportEvent::Delivered { from, port, bytes } => {
            if let Ok(msg) = Msg::decode(&bytes) {
                core.route_msg(from, port, msg);
            }
        }
        TransportEvent::MsgAcked { handle, .. } => {
            core.link.tags.remove(&handle);
        }
        TransportEvent::SendFailed { handle, .. } => {
            if let Some(tag) = core.link.tags.remove(&handle) {
                core.counters.inc_sends_failed();
                core.on_send_failed(&tag);
            }
        }
        TransportEvent::PeerUnreachable { .. } => {
            // Per-send SendFailed events carry the actionable signal; the
            // endpoint fails future sends fast until the peer talks again.
        }
    }
}

/// One site's event loop over a real UDP socket.
fn run_site(
    mut core: SiteCore<SocketLink>,
    rx: Receiver<LoopInput>,
    mut driver: UdpDriver,
    book: AddressBook,
) {
    while !core.stop {
        // Feed wall-clock time (as the offset from the runtime epoch) to
        // the endpoint so its RTT estimator sees real samples.
        core.link.endpoint.set_now(core.epoch.elapsed());
        pump(&mut core, &driver, &book);
        let timeout = core
            .next_deadline()
            .map_or(Duration::from_millis(200), |d| {
                d.saturating_duration_since(Instant::now())
            });
        match driver.recv(timeout.max(Duration::from_millis(1))) {
            Ok(mocha_net::udp::Recv::Datagram(inc)) => {
                core.counters.inc_datagrams_delivered();
                core.link.endpoint.set_now(core.epoch.elapsed());
                core.link.endpoint.on_datagram(inc.from, &inc.datagram);
            }
            Ok(mocha_net::udp::Recv::Woken | mocha_net::udp::Recv::TimedOut) => {}
            Err(_) => {
                // Transient socket error; don't spin.
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        core.link.endpoint.set_now(core.epoch.elapsed());
        for token in core.fire_due_timers() {
            // Transport-namespace timers belong to the MochaNet endpoint
            // (the simulated-TCP namespace is never armed here).
            core.link.endpoint.on_timer(token);
        }
        while let Ok(input) = rx.try_recv() {
            core.handle_input(input);
        }
    }
}

/// Handles for tearing down one spawned site.
struct SiteHarness {
    handle: MochaHandle,
    join: Option<JoinHandle<()>>,
    tcp: Option<TcpHarness>,
}

struct TcpHarness {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
    join: Option<JoinHandle<()>>,
}

/// Everything needed to boot one site loop.
struct SiteBootSpec {
    site: SiteId,
    home: SiteId,
    config: MochaConfig,
    registry: Arc<TaskRegistry>,
    epoch: Instant,
    stable_log: Arc<Mutex<Vec<(SiteId, Msg)>>>,
    counters: Arc<RuntimeCounters>,
    driver: UdpDriver,
    book: AddressBook,
    tcp_listener: Option<TcpListener>,
    tcp_book: AddressBook,
}

fn spawn_site(spec: SiteBootSpec) -> io::Result<SiteHarness> {
    let SiteBootSpec {
        site,
        home,
        config,
        registry,
        epoch,
        stable_log,
        counters,
        driver,
        book,
        tcp_listener,
        tcp_book,
    } = spec;
    let waker = driver.waker()?;
    let (tx, rx) = unbounded();
    let tcp = match tcp_listener {
        Some(listener) => {
            let stop = Arc::new(AtomicBool::new(false));
            let addr = listener.local_addr()?;
            let accept_waker = waker.try_clone()?;
            let join = std::thread::Builder::new()
                .name(format!("mocha-bulk-{}", site.0))
                .spawn({
                    let tx = tx.clone();
                    let stop = stop.clone();
                    let counters = counters.clone();
                    move || tcp_accept_loop(listener, tx, accept_waker, stop, counters)
                })?;
            Some(TcpHarness {
                stop,
                addr,
                join: Some(join),
            })
        }
        None => None,
    };
    let leg_waker = if config.net.mode == ProtocolMode::Hybrid {
        Some(waker.try_clone()?)
    } else {
        None
    };
    let link = SocketLink {
        site,
        endpoint: MochaNetEndpoint::new(config.net.mochanet),
        tags: HashMap::new(),
        next_handle: 0,
        mode: config.net.mode,
        tcp: leg_waker.map(|waker| TcpLeg {
            book: tcp_book,
            self_tx: tx.clone(),
            waker,
            counters: counters.clone(),
        }),
        last_stats: TransportStats::default(),
    };
    let core = SiteCore::new(
        CoreSeed {
            site,
            home,
            config,
            registry,
            epoch,
            stable_log,
            counters,
        },
        link,
    );
    let join = std::thread::Builder::new()
        .name(format!("mocha-sock-{}", site.0))
        .spawn(move || run_site(core, rx, driver, book))?;
    Ok(SiteHarness {
        handle: MochaHandle::new(site, tx, Some(Arc::new(waker))),
        join: Some(join),
        tcp,
    })
}

fn teardown(harness: &mut SiteHarness) {
    let _ = harness.handle.push(LoopInput::App(AppRequest::Stop));
    if let Some(tcp) = &mut harness.tcp {
        tcp.stop.store(true, Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&tcp.addr, Duration::from_millis(500));
        if let Some(join) = tcp.join.take() {
            let _ = join.join();
        }
    }
    if let Some(join) = harness.join.take() {
        let _ = join.join();
    }
}

/// Builder for [`SocketRuntime`] (in-process loopback cluster) and
/// [`SocketSite`] (one site of a multi-process deployment).
pub struct SocketRuntimeBuilder {
    sites: usize,
    config: MochaConfig,
    registry: TaskRegistry,
}

impl SocketRuntimeBuilder {
    /// Number of sites for [`build`](Self::build) (site 0 is the home
    /// site). Ignored by [`build_site`](Self::build_site).
    #[must_use]
    pub fn sites(mut self, n: usize) -> Self {
        self.sites = n;
        self
    }

    /// Mocha configuration. `config.net.mode` selects the paper's basic
    /// (MochaNet-only) or hybrid (TCP bulk leg) prototype.
    #[must_use]
    pub fn config(mut self, config: MochaConfig) -> Self {
        self.config = config;
        self
    }

    /// Task registry for spawn support.
    #[must_use]
    pub fn registry(mut self, registry: TaskRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Boots an in-process cluster: every site gets its own UDP socket on
    /// an ephemeral loopback port (plus a TCP listener in hybrid mode) —
    /// real sockets, one process. The shape tests and examples use.
    ///
    /// # Errors
    ///
    /// Socket bind/configuration failures.
    ///
    /// # Panics
    ///
    /// Panics if `sites == 0` or the configuration is invalid.
    pub fn build(self) -> io::Result<SocketRuntime> {
        assert!(self.sites >= 1);
        self.config.validate().expect("invalid MochaConfig");
        let hybrid = self.config.net.mode == ProtocolMode::Hybrid;
        let loopback: SocketAddr = "127.0.0.1:0".parse().expect("loopback addr");
        // Bind everything first so the shared address books are complete
        // before any loop starts.
        let mut drivers = Vec::new();
        let mut listeners = Vec::new();
        let mut book = AddressBook::new();
        let mut tcp_book = AddressBook::new();
        for i in 0..self.sites {
            let site = SiteId(u32::try_from(i).expect("site count fits u32"));
            let driver = UdpDriver::bind(site, loopback)?;
            book.insert(site, driver.local_addr()?);
            drivers.push(driver);
            if hybrid {
                let listener = TcpListener::bind(loopback)?;
                tcp_book.insert(site, listener.local_addr()?);
                listeners.push(Some(listener));
            } else {
                listeners.push(None);
            }
        }
        let registry = Arc::new(self.registry);
        let counters = Arc::new(RuntimeCounters::default());
        let epoch = Instant::now();
        let stable_log = Arc::new(Mutex::new(Vec::new()));
        let mut harnesses = Vec::new();
        for (driver, tcp_listener) in drivers.into_iter().zip(listeners) {
            harnesses.push(spawn_site(SiteBootSpec {
                site: driver.local_site(),
                home: SiteId(0),
                config: self.config,
                registry: registry.clone(),
                epoch,
                stable_log: stable_log.clone(),
                counters: counters.clone(),
                driver,
                book: book.clone(),
                tcp_listener,
                tcp_book: tcp_book.clone(),
            })?);
        }
        Ok(SocketRuntime {
            harnesses,
            counters,
        })
    }

    /// Boots exactly one site of a distributed deployment — the `mochad`
    /// entry point. `book` must map **every** site (including this one)
    /// to its UDP address; this site binds its own entry. In hybrid mode
    /// a TCP listener is bound on the same port (TCP and UDP port spaces
    /// are disjoint), so one hostfile address serves both legs.
    ///
    /// The home site (coordinator) is `book`'s site 0 by convention; pass
    /// it explicitly as `home`.
    ///
    /// # Errors
    ///
    /// `InvalidInput` if `site` is missing from `book`; bind failures
    /// otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn build_site(
        self,
        site: SiteId,
        home: SiteId,
        book: AddressBook,
    ) -> io::Result<SocketSite> {
        self.config.validate().expect("invalid MochaConfig");
        let Some(bind) = book.addr_of(site) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{site} has no address in the book"),
            ));
        };
        let driver = UdpDriver::bind(site, bind)?;
        let hybrid = self.config.net.mode == ProtocolMode::Hybrid;
        let tcp_listener = if hybrid {
            Some(TcpListener::bind(bind)?)
        } else {
            None
        };
        let counters = Arc::new(RuntimeCounters::default());
        let harness = spawn_site(SiteBootSpec {
            site,
            home,
            config: self.config,
            registry: Arc::new(self.registry),
            epoch: Instant::now(),
            stable_log: Arc::new(Mutex::new(Vec::new())),
            counters: counters.clone(),
            driver,
            book: book.clone(),
            tcp_listener,
            tcp_book: book,
        })?;
        Ok(SocketSite { harness, counters })
    }
}

/// An in-process cluster of sites talking over real loopback sockets.
pub struct SocketRuntime {
    harnesses: Vec<SiteHarness>,
    counters: Arc<RuntimeCounters>,
}

impl std::fmt::Debug for SocketRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketRuntime")
            .field("sites", &self.harnesses.len())
            .finish()
    }
}

impl SocketRuntime {
    /// Starts building a runtime. Defaults: 2 sites, default config
    /// (basic prototype).
    pub fn builder() -> SocketRuntimeBuilder {
        SocketRuntimeBuilder {
            sites: 2,
            config: MochaConfig::default(),
            registry: TaskRegistry::new(),
        }
    }

    /// The handle for site `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn handle(&self, i: usize) -> MochaHandle {
        self.harnesses[i].handle.clone()
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.harnesses.len()
    }

    /// A snapshot of the cluster-wide transport/timer counters.
    pub fn metrics(&self) -> RuntimeMetrics {
        self.counters.snapshot()
    }

    /// Stops every site loop and joins all helper threads.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        for harness in &mut self.harnesses {
            teardown(harness);
        }
    }
}

impl Drop for SocketRuntime {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// One booted site of a multi-process deployment (see the `mochad`
/// binary). Applications talk to it through [`handle`](SocketSite::handle)
/// exactly as with the other runtimes.
pub struct SocketSite {
    harness: SiteHarness,
    counters: Arc<RuntimeCounters>,
}

impl std::fmt::Debug for SocketSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SocketSite({})", self.harness.handle.site())
    }
}

impl SocketSite {
    /// The handle for this site.
    pub fn handle(&self) -> MochaHandle {
        self.harness.handle.clone()
    }

    /// A snapshot of this process's transport/timer counters.
    pub fn metrics(&self) -> RuntimeMetrics {
        self.counters.snapshot()
    }

    /// Stops the site loop and joins all helper threads.
    pub fn shutdown(mut self) {
        teardown(&mut self.harness);
    }
}

impl Drop for SocketSite {
    fn drop(&mut self) {
        teardown(&mut self.harness);
    }
}

/// Convenience: did this process manage to bind a loopback UDP socket?
/// Tests call this to skip gracefully in network-less sandboxes.
pub fn loopback_available() -> bool {
    std::net::UdpSocket::bind("127.0.0.1:0").is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AvailabilityConfig;
    use crate::replica::{replica_id, ReplicaSpec};
    use mocha_wire::{LockId, ReplicaPayload};

    const L: LockId = LockId(1);

    fn specs(name: &str) -> Vec<ReplicaSpec> {
        vec![ReplicaSpec::new(name, ReplicaPayload::empty())]
    }

    #[test]
    fn bulk_frame_roundtrips_over_loopback_tcp() {
        if !loopback_available() {
            eprintln!("skipping: no loopback sockets");
            return;
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let msg = Msg::SyncMoved {
            new_home: SiteId(3),
        };
        let frame = encode_bulk_frame(SiteId(7), 2, &msg);
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let env = read_bulk_frame(&mut stream).unwrap();
            stream.write_all(&[1]).unwrap();
            env
        });
        tcp_send_frame(addr, &frame).unwrap();
        let env = server.join().unwrap();
        assert_eq!(env.from, SiteId(7));
        assert_eq!(env.port, 2);
        assert_eq!(
            env.msg,
            Msg::SyncMoved {
                new_home: SiteId(3)
            }
        );
    }

    #[test]
    fn loopback_cluster_lock_write_read() {
        if !loopback_available() {
            eprintln!("skipping: no loopback sockets");
            return;
        }
        let rt = SocketRuntime::builder().sites(2).build().unwrap();
        let a = rt.handle(0);
        let b = rt.handle(1);
        let idx = replica_id("v");
        a.register(L, specs("v")).unwrap();
        b.register(L, specs("v")).unwrap();

        a.lock(L).unwrap();
        a.write(idx, ReplicaPayload::I64s(vec![100])).unwrap();
        a.unlock(L, true).unwrap();

        // Real UDP carried the grant + daemon-to-daemon transfer here.
        b.lock(L).unwrap();
        assert_eq!(b.read(idx).unwrap(), ReplicaPayload::I64s(vec![100]));
        b.write(idx, ReplicaPayload::I64s(vec![101])).unwrap();
        b.unlock(L, true).unwrap();

        a.lock(L).unwrap();
        assert_eq!(a.read(idx).unwrap(), ReplicaPayload::I64s(vec![101]));
        a.unlock(L, false).unwrap();

        let m = rt.metrics();
        assert!(m.datagrams_sent > 0, "UDP datagrams actually flowed");
        assert!(m.datagrams_delivered > 0);
        assert!(m.msgs_sent > 0);
        assert!(m.bytes_sent > 0);
        rt.shutdown();
    }

    #[test]
    fn hybrid_mode_moves_bulk_data_over_tcp() {
        if !loopback_available() {
            eprintln!("skipping: no loopback sockets");
            return;
        }
        let rt = SocketRuntime::builder()
            .sites(2)
            .config(MochaConfig::hybrid())
            .build()
            .unwrap();
        let a = rt.handle(0);
        let b = rt.handle(1);
        let idx = replica_id("blob");
        a.register(L, specs("blob")).unwrap();
        b.register(L, specs("blob")).unwrap();

        // A payload large enough to be unambiguous bulk data.
        let blob: Vec<i64> = (0..20_000).collect();
        a.lock(L).unwrap();
        a.write(idx, ReplicaPayload::I64s(blob.clone())).unwrap();
        a.unlock(L, true).unwrap();

        b.lock(L).unwrap();
        assert_eq!(b.read(idx).unwrap(), ReplicaPayload::I64s(blob));
        b.unlock(L, false).unwrap();
        rt.shutdown();
    }

    #[test]
    fn ur_dissemination_fans_out_over_real_sockets() {
        if !loopback_available() {
            eprintln!("skipping: no loopback sockets");
            return;
        }
        let rt = SocketRuntime::builder().sites(3).build().unwrap();
        let idx = replica_id("shared");
        for i in 0..3 {
            rt.handle(i).register(L, specs("shared")).unwrap();
        }
        let writer = rt.handle(1);
        writer
            .set_availability(
                L,
                AvailabilityConfig {
                    ur: 3,
                    ..AvailabilityConfig::default()
                },
            )
            .unwrap();
        writer.lock(L).unwrap();
        writer
            .write(idx, ReplicaPayload::Utf8("disseminated".into()))
            .unwrap();
        // With UR=3 the release pushes the update to the other replica
        // holders before completing.
        writer.unlock(L, true).unwrap();

        // Readers see the value after a local (shared-mode) acquisition —
        // their daemons already hold the pushed version.
        for i in [0usize, 2] {
            let h = rt.handle(i);
            h.lock(L).unwrap();
            assert_eq!(
                h.read(idx).unwrap(),
                ReplicaPayload::Utf8("disseminated".into())
            );
            h.unlock(L, false).unwrap();
        }
        rt.shutdown();
    }

    #[test]
    fn address_book_from_hostfile_requires_addresses() {
        let with: HostFile = "site0=127.0.0.1:7100\nsite1=127.0.0.1:7101\n"
            .parse()
            .unwrap();
        let book = address_book(&with).unwrap();
        assert_eq!(book.len(), 2);
        assert_eq!(
            book.addr_of(SiteId(1)),
            Some("127.0.0.1:7101".parse().unwrap())
        );

        let without: HostFile = "site0\n".parse().unwrap();
        assert!(address_book(&without).is_err());
    }
}
