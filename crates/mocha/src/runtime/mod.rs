//! Execution runtimes.
//!
//! All protocol components are event-driven state machines; this module
//! provides the two drivers that animate them:
//!
//! * [`sim`] — the deterministic virtual-time runtime built on
//!   [`mocha_sim`]. Used by every benchmark (calibrated, reproducible
//!   timings) and by failure-injection tests.
//! * [`thread`] — a real multi-threaded runtime with a blocking
//!   application API, used by the runnable examples.

pub mod sim;
pub mod thread;
