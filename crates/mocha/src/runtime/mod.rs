//! Execution runtimes.
//!
//! All protocol components are event-driven state machines; this module
//! provides the three drivers that animate them:
//!
//! * [`sim`] — the deterministic virtual-time runtime built on
//!   [`mocha_sim`]. Used by every benchmark (calibrated, reproducible
//!   timings) and by failure-injection tests.
//! * [`thread`] — a real multi-threaded runtime with a blocking
//!   application API, used by the runnable examples. Transport is an
//!   in-process reliable channel router.
//! * [`socket`] — the wide-area deployment runtime: the same protocol
//!   core over real OS sockets (MochaNet datagrams on UDP, hybrid bulk
//!   transfers on TCP), one OS process per site via the `mochad` binary.
//!
//! The thread and socket runtimes share one protocol core
//! ([`core`], private) generic over the transport link, and both expose
//! [`metrics::RuntimeMetrics`] counters mirroring the simulator's
//! [`mocha_sim::Metrics`].

mod core;
pub mod metrics;
pub mod sim;
pub mod socket;
pub mod thread;
