//! Transport-agnostic site event-loop core shared by the real-concurrency
//! runtimes ([`thread`](crate::runtime::thread) and
//! [`socket`](crate::runtime::socket)).
//!
//! A [`SiteCore`] hosts the same protocol state machines as the simulator
//! (daemon, coordinator at the home site, site manager) plus the blocking
//! application-API bookkeeping (lock waiters, deferred releases, pending
//! spawns). It is generic over a [`Link`] — the one operation the
//! runtimes implement differently: shipping a protocol message toward a
//! remote site. The in-process thread runtime delivers through a channel
//! router and learns of dead peers synchronously; the socket runtime
//! hands messages to MochaNet over real UDP and learns of dead peers
//! asynchronously through retry exhaustion. Everything else — command
//! processing, timers (a wall-clock [`TimerWheel`]), signals, the
//! application request surface — is identical and lives here.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use mocha_net::{ports, MsgClass, Port, TimerWheel};
use mocha_sim::SimTime;
use mocha_store::{SiteStore, StoreHandle};
use mocha_wire::message::{LockMode, VersionFlag};
use mocha_wire::{LockId, Msg, ReplicaId, ReplicaPayload, RequestId, SiteId, ThreadId, Version};

use crate::app::UNGUARDED;
use crate::cmd::{timer_ns, Cmd, CmdSink, SendTag, Signal};
use crate::config::{AvailabilityConfig, MochaConfig};
use crate::daemon::{DaemonStats, SiteDaemon};
use crate::directory::Directory;
use crate::error::MochaError;
use crate::replica::ReplicaSpec;
use crate::runtime::metrics::RuntimeCounters;
use crate::spawn::{SiteManager, TaskRegistry};
use crate::sync::{CoordinatorStats, SyncCoordinator};
use crate::travelbag::{Parameter, TravelBag};

/// How long blocking calls wait before concluding the home site is gone.
pub(crate) const BLOCKING_TIMEOUT: Duration = Duration::from_secs(30);

/// A blocking reply-wait gave up after [`BLOCKING_TIMEOUT`]: whoever was
/// supposed to answer (the home site, or the site's own loop) is gone.
/// Surfaces to applications as [`MochaError::HomeUnreachable`] via `?`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ReplyTimeout;

impl From<ReplyTimeout> for MochaError {
    fn from(_: ReplyTimeout) -> MochaError {
        MochaError::HomeUnreachable
    }
}

/// The single sanctioned blocking reply wait: every synchronous API call
/// that parks an application thread on a reply channel funnels through
/// here, so the timeout discipline (and the reactor-blocking lint's
/// allowlist) has exactly one site.
pub(crate) fn await_reply<T>(rx: &Receiver<T>) -> Result<T, ReplyTimeout> {
    // Application-thread side only: reactor shards never call this.
    // lint: allow(blocking)
    rx.recv_timeout(BLOCKING_TIMEOUT).map_err(|_| ReplyTimeout)
}

/// A release deferred until dissemination acks: (new version, the
/// caller's reply channel, whether the lock was revoked while held).
type PendingRelease = (Version, Sender<Result<(), MochaError>>, bool);

/// How a runtime ships one protocol message toward a remote site.
///
/// Returns `false` when the send is known to have failed *immediately*
/// (the thread runtime's "peer removed from the router"), in which case
/// the core runs the tag's failure handling on the spot. Transports with
/// asynchronous failure detection (MochaNet retry exhaustion) return
/// `true` and report failures later through the runtime's event loop,
/// which calls [`SiteCore::on_send_failed`] itself.
pub(crate) trait Link {
    /// Ships `msg` to `to`; see the trait docs for the return contract.
    fn deliver(&mut self, to: SiteId, port: Port, msg: Msg, class: MsgClass, tag: &SendTag)
        -> bool;
}

/// A pending spawn result — the paper's `ResultHandle` (Figure 1:
/// `rh = mocha.spawn("Myhello", p)`). Obtain one from
/// [`MochaHandle::spawn_async`]; collect with [`wait`](ResultHandle::wait).
#[derive(Debug)]
pub struct ResultHandle {
    rx: Receiver<Result<TravelBag, MochaError>>,
}

impl ResultHandle {
    /// Blocks until the remote task finishes and returns its `Result`
    /// travel bag.
    ///
    /// # Errors
    ///
    /// [`MochaError::SpawnFailed`] if the task errored remotely or its
    /// site is unreachable; [`MochaError::HomeUnreachable`] on timeout.
    pub fn wait(self) -> Result<TravelBag, MochaError> {
        await_reply(&self.rx)?
    }

    /// Returns the result if it is already available, or the handle back
    /// if the task is still running.
    ///
    /// # Errors
    ///
    /// Remote failures surface exactly as for [`wait`](Self::wait).
    pub fn try_wait(self) -> Result<Result<TravelBag, MochaError>, ResultHandle> {
        match self.rx.try_recv() {
            Ok(result) => Ok(result),
            Err(_) => Err(self),
        }
    }
}

/// How fresh the replica state behind a successful `lock()` is.
///
/// `Stale` is the paper's §4 *weakened consistency*: the newest version
/// died with a failed site, and the freshest *surviving* copy was
/// delivered instead. "The home user can recognize unwanted
/// characteristics of the old version and reapply the appropriate
/// updates."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Freshness {
    /// The replicas carry the most recent committed version.
    Current,
    /// A newer version was lost to a failure; this is the freshest
    /// surviving state.
    Stale,
}

/// A protocol message with its routing metadata, as delivered to a site
/// event loop.
#[derive(Debug)]
pub(crate) struct Envelope {
    pub(crate) from: SiteId,
    pub(crate) port: Port,
    pub(crate) msg: Msg,
}

/// Requests from application threads to their site's event loop.
pub(crate) enum AppRequest {
    Register {
        lock: LockId,
        specs: Vec<ReplicaSpec>,
        reply: Sender<()>,
    },
    SetAvailability {
        lock: LockId,
        avail: AvailabilityConfig,
        reply: Sender<()>,
    },
    Lock {
        lock: LockId,
        lease_ms: u32,
        mode: LockMode,
        reply: Sender<Result<Freshness, MochaError>>,
    },
    Unlock {
        lock: LockId,
        dirty: bool,
        reply: Sender<Result<(), MochaError>>,
    },
    Read {
        replica: ReplicaId,
        reply: Sender<Result<ReplicaPayload, MochaError>>,
    },
    Write {
        replica: ReplicaId,
        payload: ReplicaPayload,
        reply: Sender<Result<(), MochaError>>,
    },
    Publish {
        replica: ReplicaId,
        reply: Sender<Result<(), MochaError>>,
    },
    Spawn {
        dest: SiteId,
        task_class: String,
        params: Parameter,
        reply: Sender<Result<TravelBag, MochaError>>,
    },
    TakePrints {
        reply: Sender<Vec<String>>,
    },
    /// Become the surrogate coordinator by replaying the given state log.
    Promote {
        log: Vec<(SiteId, Msg)>,
        reply: Sender<()>,
    },
    /// Membership churn notification for the consistent-hash directory
    /// ring (no-op in single-home mode). `joined` distinguishes a new site
    /// from a departed one.
    RingChange { site: SiteId, joined: bool },
    Stop,
}

/// Everything a site event loop can receive.
pub(crate) enum LoopInput {
    /// A protocol message (from the router, or a bulk TCP receiver).
    Env(Envelope),
    /// A blocking-API request from an application thread.
    App(AppRequest),
    /// A bulk out-of-band transfer finished (socket runtime's TCP leg).
    BulkDone {
        /// The send's correlation tag.
        tag: SendTag,
        /// Whether the transfer reached the peer.
        ok: bool,
    },
}

/// A waiting lock request at a site.
pub(crate) struct LockWaiter {
    lease_ms: u32,
    mode: LockMode,
    /// Unique per request, so the coordinator can tell requests from
    /// different application threads at the same site apart.
    thread: ThreadId,
    /// Version the grant promised (set once the grant arrives; used to
    /// classify freshness when the data catches up).
    promised: Version,
    reply: Sender<Result<Freshness, MochaError>>,
}

/// Construction-time parameters shared by every site of a runtime.
pub(crate) struct CoreSeed {
    pub(crate) site: SiteId,
    pub(crate) home: SiteId,
    /// Cluster membership, for the consistent-hash directory ring. Only
    /// consulted when `config.home.hash_directory` is set.
    pub(crate) sites: Vec<SiteId>,
    pub(crate) config: MochaConfig,
    pub(crate) registry: Arc<TaskRegistry>,
    pub(crate) epoch: Instant,
    pub(crate) stable_log: Arc<Mutex<Vec<(SiteId, Msg)>>>,
    pub(crate) counters: Arc<RuntimeCounters>,
    /// Durable store to open and recover from, if this site opted in.
    pub(crate) store: Option<StoreHandle>,
}

/// The per-site event loop state, generic over the outbound transport.
pub(crate) struct SiteCore<L: Link> {
    pub(crate) site: SiteId,
    pub(crate) home: SiteId,
    pub(crate) config: MochaConfig,
    pub(crate) daemon: SiteDaemon,
    pub(crate) coordinator: Option<SyncCoordinator>,
    pub(crate) manager: SiteManager,
    pub(crate) sink: CmdSink,
    pub(crate) link: L,
    pub(crate) epoch: Instant,
    pub(crate) counters: Arc<RuntimeCounters>,
    // --- application bookkeeping ---
    avail: HashMap<LockId, AvailabilityConfig>,
    /// Outstanding acquire per lock (only one per site at a time).
    pending_grant: HashMap<LockId, LockWaiter>,
    /// Grant arrived but data still in flight.
    wait_data: HashMap<LockId, LockWaiter>,
    /// Held locks with their granted versions and access modes.
    held: HashMap<LockId, (Version, LockMode)>,
    /// Locks revoked while held.
    revoked: HashSet<LockId>,
    /// Local FIFO of lock requests behind the current one.
    local_queue: HashMap<LockId, VecDeque<LockWaiter>>,
    /// Releases deferred until dissemination acks arrive:
    /// lock → (new version, reply channel, was revoked).
    wait_push: HashMap<LockId, PendingRelease>,
    /// Spawns awaiting results.
    pending_spawns: HashMap<RequestId, Sender<Result<TravelBag, MochaError>>>,
    /// Collected `mochaPrintln` output.
    prints: Vec<String>,
    /// The coordinator's stable-storage log (§4: "logging its state"):
    /// shared with the runtime so a surrogate can replay it after the
    /// home dies. Only the site currently hosting the coordinator writes.
    pub(crate) stable_log: Arc<Mutex<Vec<(SiteId, Msg)>>>,
    /// Wall-clock timers for every component (and, in the socket
    /// runtime, the transport) — one wheel per site, like the
    /// simulator's single event queue.
    pub(crate) timers: TimerWheel,
    /// Durable site store, if this site opted in: applied and released
    /// versions are appended to its write-ahead log via [`Cmd::Persist`].
    store: Option<SiteStore>,
    /// How many locks the store recovered a post-initial version for at
    /// open — 0 for a fresh store, no store, or an unusable one. Captured
    /// at open so runtime surfaces (`mochad`'s `RECOVERED` line) can
    /// report it without racing the event loop.
    pub(crate) recovered_locks: usize,
    /// Daemon stats at the last mirror point, so only the increments are
    /// fed into the shared runtime counters.
    last_daemon_stats: DaemonStats,
    /// Coordinator stats at the last mirror point (zero when this site
    /// hosts no coordinator).
    last_coord_stats: CoordinatorStats,
    next_thread: u32,
    pub(crate) stop: bool,
}

impl<L: Link> SiteCore<L> {
    pub(crate) fn new(seed: CoreSeed, link: L) -> SiteCore<L> {
        let CoreSeed {
            site,
            home,
            sites,
            config,
            registry,
            epoch,
            stable_log,
            counters,
            store,
        } = seed;
        let mut daemon = SiteDaemon::new(site, home, config.codec);
        daemon.set_push_options(config.push);
        daemon.set_faults(config.faults);
        if config.home.hash_directory {
            daemon.install_directory(Directory::new(&sites, config.home.virtual_shards));
        }
        let mut sink = CmdSink::new();
        // Open the durable store (if any) and replay snapshot + WAL into
        // the daemon before the event loop starts; the recovery
        // announcement it queues goes out with the first command drain.
        let store = store.and_then(|handle| match handle.open() {
            Ok(opened) => {
                if opened.recovered().is_empty() {
                    daemon.mark_durable();
                } else {
                    daemon.restore(opened.recovered(), &mut sink);
                }
                Some(opened)
            }
            Err(e) => {
                // A site whose stable storage cannot even open runs
                // non-durable rather than not at all; full transfers keep
                // it correct.
                eprintln!("site {site}: durable store unavailable ({e}); running non-durable");
                None
            }
        });
        let recovered_locks = store
            .as_ref()
            .map_or(0, |s| s.recovered().announcement().len());
        SiteCore {
            site,
            home,
            config,
            daemon,
            recovered_locks,
            // Hash-directory mode: every site hosts a coordinator owning
            // its ring share. Legacy mode: only the fixed home does.
            coordinator: if config.home.hash_directory {
                Some(SyncCoordinator::with_directory(site, config, &sites))
            } else {
                (site == home).then(|| SyncCoordinator::new(home, config))
            },
            manager: SiteManager::new(site, registry, site == home),
            sink,
            link,
            epoch,
            counters,
            stable_log,
            store,
            last_daemon_stats: DaemonStats::default(),
            last_coord_stats: CoordinatorStats::default(),
            avail: HashMap::new(),
            pending_grant: HashMap::new(),
            wait_data: HashMap::new(),
            held: HashMap::new(),
            revoked: HashSet::new(),
            local_queue: HashMap::new(),
            wait_push: HashMap::new(),
            pending_spawns: HashMap::new(),
            prints: Vec::new(),
            timers: TimerWheel::new(),
            next_thread: 0,
            stop: false,
        }
    }

    pub(crate) fn now(&self) -> SimTime {
        SimTime::from_nanos(u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    fn config_snapshot(&self) -> MochaConfig {
        self.config
    }

    /// Earliest pending timer deadline.
    pub(crate) fn next_deadline(&self) -> Option<Instant> {
        self.timers.next_deadline()
    }

    /// Fires every due component timer. Tokens in the transport
    /// namespaces (`0x01`/`0x02`) are *returned* instead of dispatched —
    /// the socket runtime routes them into its transport endpoints; the
    /// thread runtime never arms any.
    pub(crate) fn fire_due_timers(&mut self) -> Vec<u64> {
        let mut transport = Vec::new();
        for token in self.timers.pop_due(Instant::now()) {
            self.counters.inc_timers_fired();
            let ns = timer_ns::of(token);
            if ns < timer_ns::COORD {
                transport.push(token);
                continue;
            }
            let now = self.now();
            if ns == timer_ns::APP {
                // Data-leg retry: the grant arrived but the transfer never
                // did; re-ask the coordinator.
                let lock = LockId((token & 0xffff_ffff) as u32);
                if let Some(waiter) = self.wait_data.remove(&lock) {
                    self.held.remove(&lock);
                    self.send_acquire(lock, waiter);
                }
                continue;
            }
            if let Some(c) = self.coordinator.as_mut() {
                c.on_timer(now, token, &mut self.sink);
            }
        }
        transport
    }

    pub(crate) fn handle_input(&mut self, input: LoopInput) {
        match input {
            LoopInput::Env(env) => self.route_msg(env.from, env.port, env.msg),
            LoopInput::App(req) => self.handle_app(req),
            LoopInput::BulkDone { tag, ok } => {
                if !ok {
                    self.counters.inc_sends_failed();
                    self.on_send_failed(&tag);
                }
            }
        }
    }

    pub(crate) fn route_msg(&mut self, from: SiteId, port: Port, msg: Msg) {
        let now = self.now();
        if from != self.site {
            self.counters.inc_msgs_delivered();
        }
        // Mirror state-mutating coordinator traffic to stable storage.
        if self.coordinator.is_some()
            && port == ports::SYNC
            && matches!(
                msg,
                Msg::AcquireLock { .. }
                    | Msg::ReleaseLock { .. }
                    | Msg::RegisterReplica { .. }
                    | Msg::SiteRecovered { .. }
            )
        {
            // Held for one Vec::push on an uncontended parking_lot mutex;
            // the reactor shard cannot wedge on it.
            // lint: allow(blocking)
            self.stable_log.lock().push((from, msg.clone()));
        }
        // Debug facility (the paper's "event logging ... insight into
        // execution at remote locations"): MOCHA_TRACE=1 prints protocol
        // traffic. Kept cheap: one env lookup per message only when set.
        if std::env::var_os("MOCHA_TRACE").is_some()
            && (port == ports::SYNC || matches!(msg, Msg::Grant { .. } | Msg::ReplicaData { .. }))
        {
            eprintln!("[{:?}] {} <- {}: {:?}", now, self.site, from, msg);
        }
        match port {
            ports::SYNC => {
                if let Some(c) = self.coordinator.as_mut() {
                    c.on_msg(now, from, msg, &mut self.sink);
                }
            }
            ports::DAEMON => self.daemon.on_msg(now, from, msg, &mut self.sink),
            ports::APP => self.on_app_msg(msg),
            ports::SITE_MANAGER => self.manager.on_msg(now, from, msg, &mut self.sink),
            _ => {}
        }
    }

    fn on_app_msg(&mut self, msg: Msg) {
        match msg {
            Msg::Grant {
                lock,
                version,
                flag,
            } => {
                let Some(waiter) = self.pending_grant.remove(&lock) else {
                    return;
                };
                if flag == VersionFlag::VersionOk || self.daemon.version_of(lock) >= version {
                    self.held.insert(
                        lock,
                        (version.max(self.daemon.version_of(lock)), waiter.mode),
                    );
                    let _ = waiter.reply.send(Ok(Freshness::Current));
                } else {
                    self.held.insert(lock, (version, waiter.mode));
                    let mut waiter = waiter;
                    waiter.promised = version;
                    self.wait_data.insert(lock, waiter);
                    self.sink.set_timer(
                        timer_ns::APP | u64::from(lock.as_raw()),
                        Duration::from_secs(20),
                    );
                }
            }
            Msg::LockRevoked { lock, .. } if self.held.contains_key(&lock) => {
                self.revoked.insert(lock);
            }
            _ => {}
        }
    }

    fn handle_app(&mut self, req: AppRequest) {
        match req {
            AppRequest::Register { lock, specs, reply } => {
                self.daemon.register_local(lock, &specs, &mut self.sink);
                let _ = reply.send(());
            }
            AppRequest::SetAvailability { lock, avail, reply } => {
                self.avail.insert(lock, avail);
                let _ = reply.send(());
            }
            AppRequest::Lock {
                lock,
                lease_ms,
                mode,
                reply,
            } => {
                let thread = ThreadId(self.next_thread);
                self.next_thread = self.next_thread.wrapping_add(1);
                let waiter = LockWaiter {
                    lease_ms,
                    mode,
                    thread,
                    promised: Version::INITIAL,
                    reply,
                };
                let busy = self.held.contains_key(&lock)
                    || self.pending_grant.contains_key(&lock)
                    || self.wait_data.contains_key(&lock);
                if busy {
                    self.local_queue.entry(lock).or_default().push_back(waiter);
                } else {
                    self.send_acquire(lock, waiter);
                }
            }
            AppRequest::Unlock { lock, dirty, reply } => {
                let Some((granted, mode)) = self.held.remove(&lock) else {
                    let _ = reply.send(Err(MochaError::NotLocked { lock }));
                    return;
                };
                let was_revoked = self.revoked.remove(&lock);
                // A shared hold cannot have written.
                let dirty = dirty && mode == LockMode::Exclusive;
                let new_version = if dirty { granted.next() } else { granted };
                let avail = self.avail.get(&lock).copied().unwrap_or_default();
                let ur = if dirty && !was_revoked { avail.ur } else { 1 };
                let disseminated = self
                    .daemon
                    .disseminate(lock, new_version, ur, &mut self.sink);
                let _ = avail;
                // The release (or its deferral) is queued BEFORE the local
                // hand-off, so a successor's acquire can never overtake it
                // to the coordinator.
                if disseminated.is_empty() {
                    self.sink.send(
                        self.daemon.home_for(lock).unwrap_or(self.home),
                        ports::SYNC,
                        Msg::ReleaseLock {
                            lock,
                            site: self.site,
                            new_version,
                            disseminated_to: Vec::new(),
                        },
                        MsgClass::Control,
                    );
                    if was_revoked {
                        let _ = reply.send(Err(MochaError::LockBroken { lock }));
                    } else {
                        let _ = reply.send(Ok(()));
                    }
                } else {
                    // Defer the release until the pushes are acknowledged,
                    // so the coordinator's up-to-date set is accurate.
                    self.wait_push
                        .insert(lock, (new_version, reply, was_revoked));
                }
                // Local hand-off: the next queued request now contacts the
                // coordinator (never handed data locally — fairness rule).
                if let Some(next) = self.local_queue.entry(lock).or_default().pop_front() {
                    self.send_acquire(lock, next);
                }
            }
            AppRequest::Read { replica, reply } => {
                let result = self
                    .guard_check(replica, false)
                    .and_then(|()| self.daemon.read(replica).cloned());
                let _ = reply.send(result);
            }
            AppRequest::Write {
                replica,
                payload,
                reply,
            } => {
                let result = self
                    .guard_check(replica, true)
                    .and_then(|()| self.daemon.write(replica, payload));
                let _ = reply.send(result);
            }
            AppRequest::Publish { replica, reply } => {
                let result = self.daemon.publish(replica, &mut self.sink);
                let _ = reply.send(result);
            }
            AppRequest::Spawn {
                dest,
                task_class,
                params,
                reply,
            } => {
                let req = self
                    .manager
                    .spawn(dest, &task_class, &params, &mut self.sink);
                self.pending_spawns.insert(req, reply);
            }
            AppRequest::TakePrints { reply } => {
                let _ = reply.send(std::mem::take(&mut self.prints));
            }
            AppRequest::Promote { log, reply } => {
                let me = self.site;
                let mut coordinator =
                    SyncCoordinator::replay(me, self.config_snapshot(), &log, self.now());
                let members = coordinator.all_members();
                coordinator.resume(&mut self.sink);
                self.coordinator = Some(coordinator);
                // The replayed coordinator's stats restart from zero; the
                // mirror baseline must restart with them.
                self.last_coord_stats = CoordinatorStats::default();
                self.home = me;
                for member in members {
                    if member != me {
                        self.sink.send(
                            member,
                            ports::DAEMON,
                            Msg::SyncMoved { new_home: me },
                            MsgClass::Control,
                        );
                    }
                }
                // Redirect local components too.
                self.daemon.on_msg(
                    self.now(),
                    me,
                    Msg::SyncMoved { new_home: me },
                    &mut self.sink,
                );
                let _ = reply.send(());
            }
            AppRequest::RingChange { site, joined } => {
                let now = self.now();
                if joined {
                    // The daemon pins known locks at their pre-join homes;
                    // the coordinator pins (and gossips) the locks it has
                    // installed state for — the ring re-map only applies to
                    // locks with no live state anywhere.
                    self.daemon.add_ring_site(site);
                    if let Some(c) = self.coordinator.as_mut() {
                        c.add_ring_site(site, &mut self.sink);
                    }
                } else {
                    // A departed site may have been the migrated home of
                    // some locks: dropping it from the ring forces those
                    // locks back to ring placement on a survivor, whose
                    // coordinator rebuilds state from the members' version
                    // re-announcements and a deferred-grant rebuild poll.
                    self.daemon.remove_ring_site(site, &mut self.sink);
                    if let Some(c) = self.coordinator.as_mut() {
                        let orphaned = c.remove_ring_site(site, now, &mut self.sink);
                        if !orphaned.is_empty() {
                            self.sink.note(format!(
                                "{me}: re-homing {n} lock(s) orphaned by {site} leaving",
                                me = self.site,
                                n = orphaned.len()
                            ));
                        }
                    }
                }
            }
            AppRequest::Stop => {
                self.stop = true;
            }
        }
    }

    /// Entry consistency check for the blocking API. Writes additionally
    /// require an exclusive hold.
    fn guard_check(&self, replica: ReplicaId, write: bool) -> Result<(), MochaError> {
        match self.daemon.lock_of(replica) {
            Some(lock) if lock != UNGUARDED => match self.held.get(&lock) {
                Some((_, LockMode::Exclusive)) => Ok(()),
                Some((_, LockMode::Shared)) if !write => Ok(()),
                _ => Err(MochaError::NotLocked { lock }),
            },
            _ => Ok(()),
        }
    }

    fn send_acquire(&mut self, lock: LockId, waiter: LockWaiter) {
        let lease_ms = waiter.lease_ms;
        let mode = waiter.mode;
        let thread = waiter.thread;
        self.pending_grant.insert(lock, waiter);
        // Per-lock routing via the daemon's directory; `None` (single-home
        // mode) falls back to the fixed home.
        self.sink.send_tagged(
            self.daemon.home_for(lock).unwrap_or(self.home),
            ports::SYNC,
            Msg::AcquireLock {
                lock,
                site: self.site,
                thread,
                lease_hint_ms: lease_ms,
                mode,
            },
            MsgClass::Control,
            SendTag::Acquire { lock },
        );
    }

    fn handle_signal(&mut self, signal: Signal) {
        match signal {
            Signal::DataArrived { lock, .. } => {
                if let Some(waiter) = self.wait_data.remove(&lock) {
                    let have = self.daemon.version_of(lock);
                    self.held.insert(lock, (have, waiter.mode));
                    let freshness = if have >= waiter.promised {
                        Freshness::Current
                    } else {
                        Freshness::Stale
                    };
                    let _ = waiter.reply.send(Ok(freshness));
                }
            }
            Signal::PushesComplete { lock, acked } => {
                if let Some((new_version, reply, was_revoked)) = self.wait_push.remove(&lock) {
                    self.sink.send(
                        self.daemon.home_for(lock).unwrap_or(self.home),
                        ports::SYNC,
                        Msg::ReleaseLock {
                            lock,
                            site: self.site,
                            new_version,
                            disseminated_to: acked,
                        },
                        MsgClass::Control,
                    );
                    if was_revoked {
                        let _ = reply.send(Err(MochaError::LockBroken { lock }));
                    } else {
                        let _ = reply.send(Ok(()));
                    }
                }
            }
            Signal::HomeChanged { new_home } => {
                self.home = new_home;
                // Re-send any outstanding acquires to the surrogate.
                let pending: Vec<LockId> = self.pending_grant.keys().copied().collect();
                for lock in pending {
                    if let Some(waiter) = self.pending_grant.remove(&lock) {
                        self.send_acquire(lock, waiter);
                    }
                }
            }
            Signal::SpawnDone { req, result, ok } => {
                if let Some(reply) = self.pending_spawns.remove(&req) {
                    let _ = if ok {
                        reply.send(Ok(result))
                    } else {
                        reply.send(Err(MochaError::SpawnFailed {
                            task_class: String::new(),
                            reason: result
                                .get_str("error")
                                .unwrap_or("remote failure")
                                .to_string(),
                        }))
                    };
                }
            }
        }
    }

    /// Routes a send failure to the owning component — the runtime
    /// equivalent of the paper's "the message times out" detections.
    pub(crate) fn on_send_failed(&mut self, tag: &SendTag) {
        let now = self.now();
        match tag {
            SendTag::TransferDirective { .. }
            | SendTag::Heartbeat { .. }
            | SendTag::Migrate { .. } => {
                if let Some(c) = self.coordinator.as_mut() {
                    c.on_send_failed(now, tag, &mut self.sink);
                }
            }
            SendTag::Push { .. } => {
                self.daemon.on_send_failed(tag, &mut self.sink);
            }
            SendTag::Acquire { lock } => {
                if let Some(w) = self.pending_grant.remove(lock) {
                    let _ = w.reply.send(Err(MochaError::HomeUnreachable));
                }
            }
            SendTag::Spawn { .. } => {
                self.manager.on_send_failed(tag, &mut self.sink);
            }
            SendTag::None => {}
        }
    }

    /// Drains command queues; loops because handling commands can queue
    /// more (loopback messages, signal fan-out).
    pub(crate) fn process_cmds(&mut self) {
        let mut local: VecDeque<(Port, Msg)> = VecDeque::new();
        loop {
            let cmds = self.sink.drain();
            if cmds.is_empty() && local.is_empty() {
                break;
            }
            for cmd in cmds {
                match cmd {
                    Cmd::Send {
                        to,
                        port,
                        msg,
                        class,
                        tag,
                    } => {
                        if to == self.site {
                            local.push_back((port, msg));
                        } else {
                            self.counters.inc_msgs_sent();
                            let accepted = self.link.deliver(to, port, msg, class, &tag);
                            if !accepted && tag != SendTag::None {
                                // The peer is gone: deliver the failure to
                                // the owning component, as the transport
                                // timeout would in the wide area.
                                self.counters.inc_sends_failed();
                                self.on_send_failed(&tag);
                            }
                        }
                    }
                    Cmd::Persist {
                        lock,
                        version,
                        updates,
                    } => {
                        if let Some(store) = self.store.as_mut() {
                            if let Err(e) = store.append(lock, version, &updates) {
                                // Durability degrades, the protocol does
                                // not: the site keeps running and recovers
                                // whatever did reach the log.
                                eprintln!(
                                    "site {site}: WAL append failed ({e})",
                                    site = self.site
                                );
                            }
                        }
                    }
                    // Real time passes on its own in these runtimes, and
                    // simulator-only notes have no wall-clock meaning.
                    Cmd::Charge(_) | Cmd::ChargeTime(_) | Cmd::Note(_) => {}
                    Cmd::SetTimer { token, after } => {
                        self.timers.set(token, after, Instant::now());
                    }
                    Cmd::CancelTimer { token } => {
                        self.timers.cancel(token);
                    }
                    Cmd::Signal(signal) => self.handle_signal(signal),
                    Cmd::Print(text) => self.prints.push(text),
                }
            }
            if let Some((port, msg)) = local.pop_front() {
                let site = self.site;
                self.route_msg(site, port, msg);
            }
        }
        self.mirror_daemon_stats();
    }

    /// Feeds the daemon's delta-dissemination counters (as increments
    /// since the last mirror point) and the push-window gauge into the
    /// runtime metrics.
    fn mirror_daemon_stats(&mut self) {
        let s = self.daemon.stats();
        let prev = self.last_daemon_stats;
        self.counters
            .add_delta_pushes(s.delta_pushes_sent - prev.delta_pushes_sent);
        self.counters
            .add_delta_bytes_saved(s.delta_bytes_saved - prev.delta_bytes_saved);
        self.counters
            .add_delta_nacks(s.delta_nacks - prev.delta_nacks);
        self.last_daemon_stats = s;
        self.counters.set_push_window_inflight(
            u64::try_from(self.daemon.inflight_pushes()).unwrap_or(u64::MAX),
        );
        if let Some(c) = self.coordinator.as_ref() {
            let s = c.stats();
            let prev = self.last_coord_stats;
            self.counters.add_migrations(s.migrations - prev.migrations);
            self.counters
                .add_stale_home_redirects(s.stale_home_redirects - prev.stale_home_redirects);
            self.last_coord_stats = s;
        }
    }
}

/// An asynchronous reply in flight — the event-driven analogue of the
/// blocking calls on [`MochaHandle`]. Obtain one from the `*_async`
/// methods; consume it with [`poll`](Pending::poll) (non-blocking, for
/// driver loops multiplexing many sites) or [`wait`](Pending::wait)
/// (blocking, identical to the synchronous API).
#[derive(Debug)]
pub struct Pending<T> {
    rx: Receiver<Result<T, MochaError>>,
}

impl<T> Pending<T> {
    /// Returns the result if the site has replied, `None` while the
    /// request is still in flight. Never blocks; a disconnected site
    /// surfaces as `Some(Err(MochaError::Shutdown))`.
    pub fn poll(&self) -> Option<Result<T, MochaError>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(crossbeam::channel::TryRecvError::Empty) => None,
            Err(crossbeam::channel::TryRecvError::Disconnected) => {
                Some(Err(MochaError::Shutdown))
            }
        }
    }

    /// Blocks for the result, with the same timeout discipline as the
    /// blocking API.
    ///
    /// # Errors
    ///
    /// [`MochaError::HomeUnreachable`] if no reply arrives within the
    /// blocking timeout; otherwise whatever the operation returned.
    pub fn wait(self) -> Result<T, MochaError> {
        await_reply(&self.rx)?
    }
}

/// A handle application threads use to talk to their site. Cloneable and
/// shareable across threads; works identically against the thread and
/// socket runtimes.
#[derive(Clone)]
pub struct MochaHandle {
    site: SiteId,
    /// Inputs are tagged with the site so many sites can share one
    /// receiving loop (the socket runtime's shards); single-site loops
    /// simply ignore the tag.
    tx: Sender<(SiteId, LoopInput)>,
    /// Present in the socket runtime: interrupts the site loop blocked in
    /// a UDP receive after a request is queued. Shared through an `Arc`
    /// because duplicating a waker duplicates an OS socket handle, which
    /// can fail — cloning a handle must not.
    waker: Option<std::sync::Arc<mocha_net::Waker>>,
}

impl std::fmt::Debug for MochaHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MochaHandle({})", self.site)
    }
}

impl MochaHandle {
    pub(crate) fn new(
        site: SiteId,
        tx: Sender<(SiteId, LoopInput)>,
        waker: Option<std::sync::Arc<mocha_net::Waker>>,
    ) -> MochaHandle {
        MochaHandle { site, tx, waker }
    }

    /// This handle's site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    pub(crate) fn push(&self, input: LoopInput) -> Result<(), MochaError> {
        self.tx
            .send((self.site, input))
            .map_err(|_| MochaError::Shutdown)?;
        if let Some(w) = &self.waker {
            w.wake();
        }
        Ok(())
    }

    fn call<T>(&self, build: impl FnOnce(Sender<T>) -> AppRequest) -> Result<T, MochaError> {
        let (tx, rx) = unbounded();
        self.push(LoopInput::App(build(tx)))?;
        Ok(await_reply(&rx)?)
    }

    fn call_async<T>(
        &self,
        build: impl FnOnce(Sender<Result<T, MochaError>>) -> AppRequest,
    ) -> Result<Pending<T>, MochaError> {
        let (tx, rx) = unbounded();
        self.push(LoopInput::App(build(tx)))?;
        Ok(Pending { rx })
    }

    /// Registers shared replicas guarded by `lock` at this site.
    ///
    /// # Errors
    ///
    /// Returns [`MochaError::Shutdown`] if the site has stopped.
    pub fn register(&self, lock: LockId, specs: Vec<ReplicaSpec>) -> Result<(), MochaError> {
        self.call(|reply| AppRequest::Register { lock, specs, reply })
    }

    /// Sets the availability configuration (UR) for `lock`.
    ///
    /// # Errors
    ///
    /// Returns [`MochaError::Shutdown`] if the site has stopped.
    pub fn set_availability(
        &self,
        lock: LockId,
        avail: AvailabilityConfig,
    ) -> Result<(), MochaError> {
        self.call(|reply| AppRequest::SetAvailability { lock, avail, reply })
    }

    /// Acquires `lock`, blocking until granted and locally consistent —
    /// the paper's `rlock1.lock()`.
    ///
    /// # Errors
    ///
    /// [`MochaError::HomeUnreachable`] if the coordinator cannot be
    /// reached (or the request starves past the blocking timeout).
    pub fn lock(&self, lock: LockId) -> Result<(), MochaError> {
        self.lock_reporting(lock).map(|_| ())
    }

    /// Acquires `lock` exclusively, reporting whether the replica state is
    /// [`Freshness::Current`] or the freshest *surviving* version after a
    /// failure ([`Freshness::Stale`] — the paper's weakened consistency).
    ///
    /// # Errors
    ///
    /// See [`lock`](Self::lock).
    pub fn lock_reporting(&self, lock: LockId) -> Result<Freshness, MochaError> {
        self.call(|reply| AppRequest::Lock {
            lock,
            lease_ms: 0,
            mode: LockMode::Exclusive,
            reply,
        })?
    }

    /// Acquires `lock` in shared (read-only) mode: concurrent shared
    /// holders at different sites may read the replicas simultaneously.
    ///
    /// # Errors
    ///
    /// See [`lock`](Self::lock).
    pub fn lock_shared(&self, lock: LockId) -> Result<(), MochaError> {
        self.call(|reply| AppRequest::Lock {
            lock,
            lease_ms: 0,
            mode: LockMode::Shared,
            reply,
        })?
        .map(|_| ())
    }

    /// Acquires `lock` declaring an expected hold time (the §4 lease
    /// hint).
    ///
    /// # Errors
    ///
    /// See [`lock`](Self::lock).
    pub fn lock_with_lease(&self, lock: LockId, lease: Duration) -> Result<(), MochaError> {
        let lease_ms = u32::try_from(lease.as_millis()).unwrap_or(u32::MAX);
        self.call(|reply| AppRequest::Lock {
            lock,
            lease_ms,
            mode: LockMode::Exclusive,
            reply,
        })?
        .map(|_| ())
    }

    /// Releases `lock` — the paper's `rlock1.unlock()`. Set `dirty` when
    /// replicas were modified so the version advances and dissemination
    /// runs.
    ///
    /// # Errors
    ///
    /// [`MochaError::NotLocked`] if not held here;
    /// [`MochaError::LockBroken`] if the coordinator revoked it while
    /// held.
    pub fn unlock(&self, lock: LockId, dirty: bool) -> Result<(), MochaError> {
        self.call(|reply| AppRequest::Unlock { lock, dirty, reply })?
    }

    /// Starts acquiring `lock` exclusively without blocking, returning a
    /// [`Pending`] to poll or wait on. A driver thread can keep hundreds
    /// of sites' requests in flight at once this way — the swarm bench's
    /// hot path.
    ///
    /// # Errors
    ///
    /// Returns [`MochaError::Shutdown`] if the site has stopped.
    pub fn lock_async(&self, lock: LockId) -> Result<Pending<Freshness>, MochaError> {
        self.call_async(|reply| AppRequest::Lock {
            lock,
            lease_ms: 0,
            mode: LockMode::Exclusive,
            reply,
        })
    }

    /// Starts releasing `lock` without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`MochaError::Shutdown`] if the site has stopped; release
    /// failures surface through the [`Pending`].
    pub fn unlock_async(&self, lock: LockId, dirty: bool) -> Result<Pending<()>, MochaError> {
        self.call_async(|reply| AppRequest::Unlock { lock, dirty, reply })
    }

    /// Starts a replica read without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`MochaError::Shutdown`] if the site has stopped.
    pub fn read_async(&self, replica: ReplicaId) -> Result<Pending<ReplicaPayload>, MochaError> {
        self.call_async(|reply| AppRequest::Read { replica, reply })
    }

    /// Starts a replica write without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`MochaError::Shutdown`] if the site has stopped.
    pub fn write_async(
        &self,
        replica: ReplicaId,
        payload: ReplicaPayload,
    ) -> Result<Pending<()>, MochaError> {
        self.call_async(|reply| AppRequest::Write {
            replica,
            payload,
            reply,
        })
    }

    /// Reads a replica's current local value (requires holding its lock
    /// if guarded).
    ///
    /// # Errors
    ///
    /// [`MochaError::NotLocked`] / [`MochaError::UnknownReplica`].
    pub fn read(&self, replica: ReplicaId) -> Result<ReplicaPayload, MochaError> {
        self.call(|reply| AppRequest::Read { replica, reply })?
    }

    /// Writes a replica's local value (requires holding its lock if
    /// guarded).
    ///
    /// # Errors
    ///
    /// [`MochaError::NotLocked`] / [`MochaError::UnknownReplica`].
    pub fn write(&self, replica: ReplicaId, payload: ReplicaPayload) -> Result<(), MochaError> {
        self.call(|reply| AppRequest::Write {
            replica,
            payload,
            reply,
        })?
    }

    /// Publishes an unsynchronized cached replica's local value to all
    /// members — the paper's §7 non-synchronization-based consistency
    /// exploration. No lock is involved; concurrent publications converge
    /// last-writer-wins.
    ///
    /// # Errors
    ///
    /// [`MochaError::UnknownReplica`] if not registered here.
    pub fn publish(&self, replica: ReplicaId) -> Result<(), MochaError> {
        self.call(|reply| AppRequest::Publish { replica, reply })?
    }

    /// Spawns a task at `dest` and blocks for its result travel bag — the
    /// paper's `mocha.spawn("Myhello", p)` followed by collecting the
    /// `ResultHandle`.
    ///
    /// # Errors
    ///
    /// [`MochaError::SpawnFailed`] if the task errored remotely;
    /// [`MochaError::HomeUnreachable`] on timeout.
    pub fn spawn(
        &self,
        dest: SiteId,
        task_class: &str,
        params: &Parameter,
    ) -> Result<TravelBag, MochaError> {
        self.spawn_async(dest, task_class, params)?.wait()
    }

    /// Spawns a task without blocking, returning the paper's
    /// `ResultHandle` to collect later.
    ///
    /// # Errors
    ///
    /// Returns [`MochaError::Shutdown`] if the site has stopped.
    pub fn spawn_async(
        &self,
        dest: SiteId,
        task_class: &str,
        params: &Parameter,
    ) -> Result<ResultHandle, MochaError> {
        let (tx, rx) = unbounded();
        self.push(LoopInput::App(AppRequest::Spawn {
            dest,
            task_class: task_class.to_string(),
            params: params.clone(),
            reply: tx,
        }))?;
        Ok(ResultHandle { rx })
    }

    /// Takes the `mochaPrintln` output collected at this site.
    ///
    /// # Errors
    ///
    /// Returns [`MochaError::Shutdown`] if the site has stopped.
    pub fn take_prints(&self) -> Result<Vec<String>, MochaError> {
        self.call(|reply| AppRequest::TakePrints { reply })
    }
}
