//! The real-thread runtime: Mocha on OS threads with a blocking API.
//!
//! Each site runs an event-loop thread hosting the same protocol state
//! machines as the simulator (daemon, coordinator at the home site, site
//! manager). Application code calls blocking methods on a
//! [`MochaHandle`] — `lock`, `unlock`, `read`, `write`, `spawn` — exactly
//! the programming model of the paper's Figures 1–3.
//!
//! Transport is an in-process reliable message router (crossbeam
//! channels); timing fidelity and lossy-network behaviour live in the
//! simulator runtime, while this runtime provides *real concurrency* for
//! the runnable examples and functional tests. Failure injection is still
//! supported: [`ThreadRuntime::kill_site`] stops a site's event loop, and
//! sends to it then fail exactly like the paper's timeout detections —
//! triggering lock breaking, recovery polling and push replacement.

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};

use mocha_net::{ports, Port};
use mocha_sim::SimTime;
use mocha_wire::message::{LockMode, VersionFlag};
use mocha_wire::{LockId, Msg, ReplicaId, ReplicaPayload, RequestId, SiteId, ThreadId, Version};

use crate::app::UNGUARDED;
use crate::cmd::{timer_ns, Cmd, CmdSink, SendTag, Signal};
use crate::config::{AvailabilityConfig, MochaConfig};
use crate::daemon::SiteDaemon;
use crate::error::MochaError;
use crate::replica::ReplicaSpec;
use crate::spawn::{SiteManager, TaskRegistry};
use crate::sync::SyncCoordinator;
use crate::travelbag::{Parameter, TravelBag};

/// How long blocking calls wait before concluding the home site is gone.
const BLOCKING_TIMEOUT: Duration = Duration::from_secs(30);

/// A release deferred until dissemination acks: (new version, the
/// caller's reply channel, whether the lock was revoked while held).
type PendingRelease = (Version, Sender<Result<(), MochaError>>, bool);

/// A pending spawn result — the paper's `ResultHandle` (Figure 1:
/// `rh = mocha.spawn("Myhello", p)`). Obtain one from
/// [`MochaHandle::spawn_async`]; collect with [`wait`](ResultHandle::wait).
#[derive(Debug)]
pub struct ResultHandle {
    rx: Receiver<Result<TravelBag, MochaError>>,
}

impl ResultHandle {
    /// Blocks until the remote task finishes and returns its `Result`
    /// travel bag.
    ///
    /// # Errors
    ///
    /// [`MochaError::SpawnFailed`] if the task errored remotely or its
    /// site is unreachable; [`MochaError::HomeUnreachable`] on timeout.
    pub fn wait(self) -> Result<TravelBag, MochaError> {
        self.rx
            .recv_timeout(BLOCKING_TIMEOUT)
            .map_err(|_| MochaError::HomeUnreachable)?
    }

    /// Returns the result if it is already available, or the handle back
    /// if the task is still running.
    ///
    /// # Errors
    ///
    /// Remote failures surface exactly as for [`wait`](Self::wait).
    pub fn try_wait(self) -> Result<Result<TravelBag, MochaError>, ResultHandle> {
        match self.rx.try_recv() {
            Ok(result) => Ok(result),
            Err(_) => Err(self),
        }
    }
}

/// How fresh the replica state behind a successful `lock()` is.
///
/// `Stale` is the paper's §4 *weakened consistency*: the newest version
/// died with a failed site, and the freshest *surviving* copy was
/// delivered instead. "The home user can recognize unwanted
/// characteristics of the old version and reapply the appropriate
/// updates."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Freshness {
    /// The replicas carry the most recent committed version.
    Current,
    /// A newer version was lost to a failure; this is the freshest
    /// surviving state.
    Stale,
}

#[derive(Debug)]
struct Envelope {
    from: SiteId,
    port: Port,
    msg: Msg,
}

/// Requests from application threads to their site's event loop.
enum AppRequest {
    Register {
        lock: LockId,
        specs: Vec<ReplicaSpec>,
        reply: Sender<()>,
    },
    SetAvailability {
        lock: LockId,
        avail: AvailabilityConfig,
        reply: Sender<()>,
    },
    Lock {
        lock: LockId,
        lease_ms: u32,
        mode: LockMode,
        reply: Sender<Result<Freshness, MochaError>>,
    },
    Unlock {
        lock: LockId,
        dirty: bool,
        reply: Sender<Result<(), MochaError>>,
    },
    Read {
        replica: ReplicaId,
        reply: Sender<Result<ReplicaPayload, MochaError>>,
    },
    Write {
        replica: ReplicaId,
        payload: ReplicaPayload,
        reply: Sender<Result<(), MochaError>>,
    },
    Publish {
        replica: ReplicaId,
        reply: Sender<Result<(), MochaError>>,
    },
    Spawn {
        dest: SiteId,
        task_class: String,
        params: Parameter,
        reply: Sender<Result<TravelBag, MochaError>>,
    },
    TakePrints {
        reply: Sender<Vec<String>>,
    },
    /// Become the surrogate coordinator by replaying the given state log.
    Promote {
        log: Vec<(SiteId, Msg)>,
        reply: Sender<()>,
    },
    Stop,
}

enum LoopInput {
    Env(Envelope),
    App(AppRequest),
}

/// Routes envelopes between site event loops. A killed site's entry is
/// removed; sends to it fail, which is the runtime's failure signal.
#[derive(Default)]
struct Router {
    senders: RwLock<HashMap<SiteId, Sender<LoopInput>>>,
}

impl Router {
    fn send(&self, to: SiteId, env: Envelope) -> Result<(), ()> {
        let senders = self.senders.read();
        match senders.get(&to) {
            Some(tx) => tx.send(LoopInput::Env(env)).map_err(|_| ()),
            None => Err(()),
        }
    }

    fn remove(&self, site: SiteId) {
        self.senders.write().remove(&site);
    }
}

/// A waiting lock request at a site.
struct LockWaiter {
    lease_ms: u32,
    mode: LockMode,
    /// Unique per request, so the coordinator can tell requests from
    /// different application threads at the same site apart.
    thread: ThreadId,
    /// Version the grant promised (set once the grant arrives; used to
    /// classify freshness when the data catches up).
    promised: Version,
    reply: Sender<Result<Freshness, MochaError>>,
}

/// The per-site event loop state.
struct SiteCore {
    site: SiteId,
    home: SiteId,
    config: MochaConfig,
    daemon: SiteDaemon,
    coordinator: Option<SyncCoordinator>,
    manager: SiteManager,
    sink: CmdSink,
    router: Arc<Router>,
    epoch: Instant,
    // --- application bookkeeping ---
    avail: HashMap<LockId, AvailabilityConfig>,
    /// Outstanding acquire per lock (only one per site at a time).
    pending_grant: HashMap<LockId, LockWaiter>,
    /// Grant arrived but data still in flight.
    wait_data: HashMap<LockId, LockWaiter>,
    /// Held locks with their granted versions and access modes.
    held: HashMap<LockId, (Version, LockMode)>,
    /// Locks revoked while held.
    revoked: HashMap<LockId, ()>,
    /// Local FIFO of lock requests behind the current one.
    local_queue: HashMap<LockId, VecDeque<LockWaiter>>,
    /// Releases deferred until dissemination acks arrive:
    /// lock → (new version, reply channel, was revoked).
    wait_push: HashMap<LockId, PendingRelease>,
    /// Spawns awaiting results.
    pending_spawns: HashMap<RequestId, Sender<Result<TravelBag, MochaError>>>,
    /// Collected `mochaPrintln` output.
    prints: Vec<String>,
    /// The coordinator's stable-storage log (§4: "logging its state"):
    /// shared with the runtime so a surrogate can replay it after the
    /// home dies. Only the site currently hosting the coordinator writes.
    stable_log: Arc<Mutex<Vec<(SiteId, Msg)>>>,
    // --- timers ---
    timers: BinaryHeap<std::cmp::Reverse<(Instant, u64, u64)>>,
    timer_gen: HashMap<u64, u64>,
    next_gen: u64,
    next_thread: u32,
    stop: bool,
}

impl SiteCore {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    fn config_snapshot(&self) -> MochaConfig {
        self.config
    }

    fn next_deadline(&mut self) -> Option<Instant> {
        // Pop stale timers off the top.
        while let Some(std::cmp::Reverse((at, token, generation))) = self.timers.peek().copied() {
            if self.timer_gen.get(&token) == Some(&generation) {
                return Some(at);
            }
            self.timers.pop();
        }
        None
    }

    fn fire_due_timers(&mut self) {
        let now_i = Instant::now();
        while let Some(std::cmp::Reverse((at, token, generation))) =
            self.timers.peek().copied()
        {
            if at > now_i {
                break;
            }
            self.timers.pop();
            if self.timer_gen.get(&token) != Some(&generation) {
                continue; // cancelled or replaced
            }
            self.timer_gen.remove(&token);
            let now = self.now();
            if timer_ns::of(token) == timer_ns::APP {
                // Data-leg retry: the grant arrived but the transfer never
                // did; re-ask the coordinator.
                let lock = LockId((token & 0xffff_ffff) as u32);
                if let Some(waiter) = self.wait_data.remove(&lock) {
                    self.held.remove(&lock);
                    self.send_acquire(lock, waiter);
                }
                continue;
            }
            if let Some(c) = self.coordinator.as_mut() {
                c.on_timer(now, token, &mut self.sink);
            }
        }
    }

    fn handle_input(&mut self, input: LoopInput) {
        match input {
            LoopInput::Env(env) => self.route_msg(env.from, env.port, env.msg),
            LoopInput::App(req) => self.handle_app(req),
        }
    }

    fn route_msg(&mut self, from: SiteId, port: Port, msg: Msg) {
        let now = self.now();
        // Mirror state-mutating coordinator traffic to stable storage.
        if self.coordinator.is_some()
            && port == ports::SYNC
            && matches!(
                msg,
                Msg::AcquireLock { .. } | Msg::ReleaseLock { .. } | Msg::RegisterReplica { .. }
            )
        {
            self.stable_log.lock().push((from, msg.clone()));
        }
        // Debug facility (the paper's "event logging ... insight into
        // execution at remote locations"): MOCHA_TRACE=1 prints protocol
        // traffic. Kept cheap: one env lookup per message only when set.
        if std::env::var_os("MOCHA_TRACE").is_some()
            && (port == ports::SYNC
                || matches!(msg, Msg::Grant { .. } | Msg::ReplicaData { .. }))
        {
            eprintln!("[{:?}] {} <- {}: {:?}", now, self.site, from, msg);
        }
        match port {
            ports::SYNC => {
                if let Some(c) = self.coordinator.as_mut() {
                    c.on_msg(now, from, msg, &mut self.sink);
                }
            }
            ports::DAEMON => self.daemon.on_msg(now, from, msg, &mut self.sink),
            ports::APP => self.on_app_msg(msg),
            ports::SITE_MANAGER => self.manager.on_msg(now, from, msg, &mut self.sink),
            _ => {}
        }
    }

    fn on_app_msg(&mut self, msg: Msg) {
        match msg {
            Msg::Grant {
                lock,
                version,
                flag,
            } => {
                let Some(waiter) = self.pending_grant.remove(&lock) else {
                    return;
                };
                if flag == VersionFlag::VersionOk || self.daemon.version_of(lock) >= version {
                    self.held.insert(
                        lock,
                        (version.max(self.daemon.version_of(lock)), waiter.mode),
                    );
                    let _ = waiter.reply.send(Ok(Freshness::Current));
                } else {
                    self.held.insert(lock, (version, waiter.mode));
                    let mut waiter = waiter;
                    waiter.promised = version;
                    self.wait_data.insert(lock, waiter);
                    self.sink.set_timer(
                        timer_ns::APP | u64::from(lock.as_raw()),
                        Duration::from_secs(20),
                    );
                }
            }
            Msg::LockRevoked { lock, .. }
                if self.held.contains_key(&lock) => {
                    self.revoked.insert(lock, ());
                }
            _ => {}
        }
    }

    fn handle_app(&mut self, req: AppRequest) {
        match req {
            AppRequest::Register { lock, specs, reply } => {
                self.daemon.register_local(lock, &specs, &mut self.sink);
                let _ = reply.send(());
            }
            AppRequest::SetAvailability { lock, avail, reply } => {
                self.avail.insert(lock, avail);
                let _ = reply.send(());
            }
            AppRequest::Lock {
                lock,
                lease_ms,
                mode,
                reply,
            } => {
                let thread = ThreadId(self.next_thread);
                self.next_thread = self.next_thread.wrapping_add(1);
                let waiter = LockWaiter {
                    lease_ms,
                    mode,
                    thread,
                    promised: Version::INITIAL,
                    reply,
                };
                let busy = self.held.contains_key(&lock)
                    || self.pending_grant.contains_key(&lock)
                    || self.wait_data.contains_key(&lock);
                if busy {
                    self.local_queue.entry(lock).or_default().push_back(waiter);
                } else {
                    self.send_acquire(lock, waiter);
                }
            }
            AppRequest::Unlock { lock, dirty, reply } => {
                let Some((granted, mode)) = self.held.remove(&lock) else {
                    let _ = reply.send(Err(MochaError::NotLocked { lock }));
                    return;
                };
                let was_revoked = self.revoked.remove(&lock).is_some();
                // A shared hold cannot have written.
                let dirty = dirty && mode == LockMode::Exclusive;
                let new_version = if dirty { granted.next() } else { granted };
                let avail = self.avail.get(&lock).copied().unwrap_or_default();
                let ur = if dirty && !was_revoked { avail.ur } else { 1 };
                let disseminated = self
                    .daemon
                    .disseminate(lock, new_version, ur, &mut self.sink);
                let _ = avail;
                // The release (or its deferral) is queued BEFORE the local
                // hand-off, so a successor's acquire can never overtake it
                // to the coordinator.
                if !disseminated.is_empty() {
                    // Defer the release until the pushes are acknowledged,
                    // so the coordinator's up-to-date set is accurate.
                    self.wait_push.insert(lock, (new_version, reply, was_revoked));
                } else {
                    self.sink.send(
                        self.home,
                        ports::SYNC,
                        Msg::ReleaseLock {
                            lock,
                            site: self.site,
                            new_version,
                            disseminated_to: Vec::new(),
                        },
                        mocha_net::MsgClass::Control,
                    );
                    if was_revoked {
                        let _ = reply.send(Err(MochaError::LockBroken { lock }));
                    } else {
                        let _ = reply.send(Ok(()));
                    }
                }
                // Local hand-off: the next queued request now contacts the
                // coordinator (never handed data locally — fairness rule).
                if let Some(next) = self.local_queue.entry(lock).or_default().pop_front() {
                    self.send_acquire(lock, next);
                }
            }
            AppRequest::Read { replica, reply } => {
                let result = self
                    .guard_check(replica, false)
                    .and_then(|_| self.daemon.read(replica).cloned());
                let _ = reply.send(result);
            }
            AppRequest::Write {
                replica,
                payload,
                reply,
            } => {
                let result = self
                    .guard_check(replica, true)
                    .and_then(|_| self.daemon.write(replica, payload));
                let _ = reply.send(result);
            }
            AppRequest::Publish { replica, reply } => {
                let result = self.daemon.publish(replica, &mut self.sink);
                let _ = reply.send(result);
            }
            AppRequest::Spawn {
                dest,
                task_class,
                params,
                reply,
            } => {
                let req = self
                    .manager
                    .spawn(dest, &task_class, &params, &mut self.sink);
                self.pending_spawns.insert(req, reply);
            }
            AppRequest::TakePrints { reply } => {
                let _ = reply.send(std::mem::take(&mut self.prints));
            }
            AppRequest::Promote { log, reply } => {
                let me = self.site;
                let mut coordinator =
                    SyncCoordinator::replay(me, self.config_snapshot(), &log, self.now());
                let members = coordinator.all_members();
                coordinator.resume(&mut self.sink);
                self.coordinator = Some(coordinator);
                self.home = me;
                for member in members {
                    if member != me {
                        self.sink.send(
                            member,
                            ports::DAEMON,
                            Msg::SyncMoved { new_home: me },
                            mocha_net::MsgClass::Control,
                        );
                    }
                }
                // Redirect local components too.
                self.daemon
                    .on_msg(self.now(), me, Msg::SyncMoved { new_home: me }, &mut self.sink);
                let _ = reply.send(());
            }
            AppRequest::Stop => {
                self.stop = true;
            }
        }
    }

    /// Entry consistency check for the blocking API. Writes additionally
    /// require an exclusive hold.
    fn guard_check(&self, replica: ReplicaId, write: bool) -> Result<(), MochaError> {
        match self.daemon.lock_of(replica) {
            Some(lock) if lock != UNGUARDED => match self.held.get(&lock) {
                Some((_, LockMode::Exclusive)) => Ok(()),
                Some((_, LockMode::Shared)) if !write => Ok(()),
                _ => Err(MochaError::NotLocked { lock }),
            },
            _ => Ok(()),
        }
    }

    fn send_acquire(&mut self, lock: LockId, waiter: LockWaiter) {
        let lease_ms = waiter.lease_ms;
        let mode = waiter.mode;
        let thread = waiter.thread;
        self.pending_grant.insert(lock, waiter);
        self.sink.send_tagged(
            self.home,
            ports::SYNC,
            Msg::AcquireLock {
                lock,
                site: self.site,
                thread,
                lease_hint_ms: lease_ms,
                mode,
            },
            mocha_net::MsgClass::Control,
            SendTag::Acquire { lock },
        );
    }

    fn handle_signal(&mut self, signal: Signal) {
        match signal {
            Signal::DataArrived { lock, .. } => {
                if let Some(waiter) = self.wait_data.remove(&lock) {
                    let have = self.daemon.version_of(lock);
                    self.held.insert(lock, (have, waiter.mode));
                    let freshness = if have >= waiter.promised {
                        Freshness::Current
                    } else {
                        Freshness::Stale
                    };
                    let _ = waiter.reply.send(Ok(freshness));
                }
            }
            Signal::PushesComplete { lock, acked } => {
                if let Some((new_version, reply, was_revoked)) = self.wait_push.remove(&lock) {
                    self.sink.send(
                        self.home,
                        ports::SYNC,
                        Msg::ReleaseLock {
                            lock,
                            site: self.site,
                            new_version,
                            disseminated_to: acked,
                        },
                        mocha_net::MsgClass::Control,
                    );
                    if was_revoked {
                        let _ = reply.send(Err(MochaError::LockBroken { lock }));
                    } else {
                        let _ = reply.send(Ok(()));
                    }
                }
            }
            Signal::HomeChanged { new_home } => {
                self.home = new_home;
                // Re-send any outstanding acquires to the surrogate.
                let pending: Vec<LockId> = self.pending_grant.keys().copied().collect();
                for lock in pending {
                    if let Some(waiter) = self.pending_grant.remove(&lock) {
                        self.send_acquire(lock, waiter);
                    }
                }
            }
            Signal::SpawnDone { req, result, ok } => {
                if let Some(reply) = self.pending_spawns.remove(&req) {
                    let _ = if ok {
                        reply.send(Ok(result))
                    } else {
                        reply.send(Err(MochaError::SpawnFailed {
                            task_class: String::new(),
                            reason: result
                                .get_str("error")
                                .unwrap_or("remote failure")
                                .to_string(),
                        }))
                    };
                }
            }
        }
    }

    /// Drains command queues; loops because handling commands can queue
    /// more (loopback messages, signal fan-out).
    fn process_cmds(&mut self) {
        let mut local: VecDeque<(Port, Msg)> = VecDeque::new();
        loop {
            let cmds = self.sink.drain();
            if cmds.is_empty() && local.is_empty() {
                break;
            }
            for cmd in cmds {
                match cmd {
                    Cmd::Send {
                        to,
                        port,
                        msg,
                        tag,
                        ..
                    } => {
                        if to == self.site {
                            local.push_back((port, msg));
                        } else {
                            let env = Envelope {
                                from: self.site,
                                port,
                                msg,
                            };
                            if self.router.send(to, env).is_err() && tag != SendTag::None {
                                // The peer is gone: deliver the failure to
                                // the owning component, as the transport
                                // timeout would in the wide area.
                                let now = self.now();
                                match &tag {
                                    SendTag::TransferDirective { .. }
                                    | SendTag::Heartbeat { .. } => {
                                        if let Some(c) = self.coordinator.as_mut() {
                                            c.on_send_failed(now, &tag, &mut self.sink);
                                        }
                                    }
                                    SendTag::Push { .. } => {
                                        self.daemon.on_send_failed(&tag, &mut self.sink);
                                    }
                                    SendTag::Acquire { lock } => {
                                        if let Some(w) = self.pending_grant.remove(lock) {
                                            let _ =
                                                w.reply.send(Err(MochaError::HomeUnreachable));
                                        }
                                    }
                                    SendTag::Spawn { .. } => {
                                        self.manager.on_send_failed(&tag, &mut self.sink);
                                    }
                                    SendTag::None => {}
                                }
                            }
                        }
                    }
                    Cmd::Charge(_) | Cmd::ChargeTime(_) => {
                        // Real time passes on its own in this runtime.
                    }
                    Cmd::SetTimer { token, after } => {
                        let generation = self.next_gen;
                        self.next_gen += 1;
                        self.timer_gen.insert(token, generation);
                        self.timers.push(std::cmp::Reverse((
                            Instant::now() + after,
                            token,
                            generation,
                        )));
                    }
                    Cmd::CancelTimer { token } => {
                        self.timer_gen.remove(&token);
                    }
                    Cmd::Signal(signal) => self.handle_signal(signal),
                    Cmd::Note(_) => {}
                    Cmd::Print(text) => self.prints.push(text),
                }
            }
            if let Some((port, msg)) = local.pop_front() {
                let site = self.site;
                self.route_msg(site, port, msg);
            }
        }
    }

    fn run(mut self, rx: Receiver<LoopInput>) {
        while !self.stop {
            self.process_cmds();
            let timeout = self
                .next_deadline()
                .map(|d| d.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(200));
            match rx.recv_timeout(timeout) {
                Ok(input) => {
                    self.handle_input(input);
                    // Drain any further queued inputs without blocking.
                    while let Ok(more) = rx.try_recv() {
                        self.process_cmds();
                        self.handle_input(more);
                    }
                }
                Err(RecvTimeoutError::Timeout) => self.fire_due_timers(),
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
    }
}

/// A handle application threads use to talk to their site. Cloneable and
/// shareable across threads.
#[derive(Clone)]
pub struct MochaHandle {
    site: SiteId,
    tx: Sender<LoopInput>,
}

impl std::fmt::Debug for MochaHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MochaHandle({})", self.site)
    }
}

impl MochaHandle {
    /// This handle's site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    fn call<T>(&self, build: impl FnOnce(Sender<T>) -> AppRequest) -> Result<T, MochaError> {
        let (tx, rx) = unbounded();
        self.tx
            .send(LoopInput::App(build(tx)))
            .map_err(|_| MochaError::Shutdown)?;
        rx.recv_timeout(BLOCKING_TIMEOUT)
            .map_err(|_| MochaError::HomeUnreachable)
    }

    /// Registers shared replicas guarded by `lock` at this site.
    ///
    /// # Errors
    ///
    /// Returns [`MochaError::Shutdown`] if the site has stopped.
    pub fn register(&self, lock: LockId, specs: Vec<ReplicaSpec>) -> Result<(), MochaError> {
        self.call(|reply| AppRequest::Register { lock, specs, reply })
    }

    /// Sets the availability configuration (UR) for `lock`.
    ///
    /// # Errors
    ///
    /// Returns [`MochaError::Shutdown`] if the site has stopped.
    pub fn set_availability(
        &self,
        lock: LockId,
        avail: AvailabilityConfig,
    ) -> Result<(), MochaError> {
        self.call(|reply| AppRequest::SetAvailability { lock, avail, reply })
    }

    /// Acquires `lock`, blocking until granted and locally consistent —
    /// the paper's `rlock1.lock()`.
    ///
    /// # Errors
    ///
    /// [`MochaError::HomeUnreachable`] if the coordinator cannot be
    /// reached (or the request starves past the blocking timeout).
    pub fn lock(&self, lock: LockId) -> Result<(), MochaError> {
        self.lock_reporting(lock).map(|_| ())
    }

    /// Acquires `lock` exclusively, reporting whether the replica state is
    /// [`Freshness::Current`] or the freshest *surviving* version after a
    /// failure ([`Freshness::Stale`] — the paper's weakened consistency).
    ///
    /// # Errors
    ///
    /// See [`lock`](Self::lock).
    pub fn lock_reporting(&self, lock: LockId) -> Result<Freshness, MochaError> {
        self.call(|reply| AppRequest::Lock {
            lock,
            lease_ms: 0,
            mode: LockMode::Exclusive,
            reply,
        })?
    }

    /// Acquires `lock` in shared (read-only) mode: concurrent shared
    /// holders at different sites may read the replicas simultaneously.
    ///
    /// # Errors
    ///
    /// See [`lock`](Self::lock).
    pub fn lock_shared(&self, lock: LockId) -> Result<(), MochaError> {
        self.call(|reply| AppRequest::Lock {
            lock,
            lease_ms: 0,
            mode: LockMode::Shared,
            reply,
        })?
        .map(|_| ())
    }

    /// Acquires `lock` declaring an expected hold time (the §4 lease
    /// hint).
    ///
    /// # Errors
    ///
    /// See [`lock`](Self::lock).
    pub fn lock_with_lease(&self, lock: LockId, lease: Duration) -> Result<(), MochaError> {
        let lease_ms = u32::try_from(lease.as_millis()).unwrap_or(u32::MAX);
        self.call(|reply| AppRequest::Lock {
            lock,
            lease_ms,
            mode: LockMode::Exclusive,
            reply,
        })?
        .map(|_| ())
    }

    /// Releases `lock` — the paper's `rlock1.unlock()`. Set `dirty` when
    /// replicas were modified so the version advances and dissemination
    /// runs.
    ///
    /// # Errors
    ///
    /// [`MochaError::NotLocked`] if not held here;
    /// [`MochaError::LockBroken`] if the coordinator revoked it while
    /// held.
    pub fn unlock(&self, lock: LockId, dirty: bool) -> Result<(), MochaError> {
        self.call(|reply| AppRequest::Unlock { lock, dirty, reply })?
    }

    /// Reads a replica's current local value (requires holding its lock
    /// if guarded).
    ///
    /// # Errors
    ///
    /// [`MochaError::NotLocked`] / [`MochaError::UnknownReplica`].
    pub fn read(&self, replica: ReplicaId) -> Result<ReplicaPayload, MochaError> {
        self.call(|reply| AppRequest::Read { replica, reply })?
    }

    /// Writes a replica's local value (requires holding its lock if
    /// guarded).
    ///
    /// # Errors
    ///
    /// [`MochaError::NotLocked`] / [`MochaError::UnknownReplica`].
    pub fn write(&self, replica: ReplicaId, payload: ReplicaPayload) -> Result<(), MochaError> {
        self.call(|reply| AppRequest::Write {
            replica,
            payload,
            reply,
        })?
    }

    /// Publishes an unsynchronized cached replica's local value to all
    /// members — the paper's §7 non-synchronization-based consistency
    /// exploration. No lock is involved; concurrent publications converge
    /// last-writer-wins.
    ///
    /// # Errors
    ///
    /// [`MochaError::UnknownReplica`] if not registered here.
    pub fn publish(&self, replica: ReplicaId) -> Result<(), MochaError> {
        self.call(|reply| AppRequest::Publish { replica, reply })?
    }

    /// Spawns a task at `dest` and blocks for its result travel bag — the
    /// paper's `mocha.spawn("Myhello", p)` followed by collecting the
    /// `ResultHandle`.
    ///
    /// # Errors
    ///
    /// [`MochaError::SpawnFailed`] if the task errored remotely;
    /// [`MochaError::HomeUnreachable`] on timeout.
    pub fn spawn(
        &self,
        dest: SiteId,
        task_class: &str,
        params: &Parameter,
    ) -> Result<TravelBag, MochaError> {
        self.spawn_async(dest, task_class, params)?.wait()
    }

    /// Spawns a task without blocking, returning the paper's
    /// `ResultHandle` to collect later.
    ///
    /// # Errors
    ///
    /// Returns [`MochaError::Shutdown`] if the site has stopped.
    pub fn spawn_async(
        &self,
        dest: SiteId,
        task_class: &str,
        params: &Parameter,
    ) -> Result<ResultHandle, MochaError> {
        let (tx, rx) = unbounded();
        self.tx
            .send(LoopInput::App(AppRequest::Spawn {
                dest,
                task_class: task_class.to_string(),
                params: params.clone(),
                reply: tx,
            }))
            .map_err(|_| MochaError::Shutdown)?;
        Ok(ResultHandle { rx })
    }

    /// Takes the `mochaPrintln` output collected at this site.
    ///
    /// # Errors
    ///
    /// Returns [`MochaError::Shutdown`] if the site has stopped.
    pub fn take_prints(&self) -> Result<Vec<String>, MochaError> {
        self.call(|reply| AppRequest::TakePrints { reply })
    }
}

/// Builder for [`ThreadRuntime`].
pub struct ThreadRuntimeBuilder {
    sites: usize,
    config: MochaConfig,
    registry: TaskRegistry,
}

impl ThreadRuntimeBuilder {
    /// Number of sites (site 0 is the home site).
    #[must_use]
    pub fn sites(mut self, n: usize) -> Self {
        self.sites = n;
        self
    }

    /// Mocha configuration.
    #[must_use]
    pub fn config(mut self, config: MochaConfig) -> Self {
        self.config = config;
        self
    }

    /// Task registry for spawn support.
    #[must_use]
    pub fn registry(mut self, registry: TaskRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Starts all site event loops.
    ///
    /// # Panics
    ///
    /// Panics if `sites == 0` or the configuration is invalid.
    pub fn build(self) -> ThreadRuntime {
        assert!(self.sites >= 1);
        self.config.validate().expect("invalid MochaConfig");
        let router = Arc::new(Router::default());
        let registry = Arc::new(self.registry);
        let epoch = Instant::now();
        let home = SiteId(0);
        let stable_log: Arc<Mutex<Vec<(SiteId, Msg)>>> = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        let mut joins = Vec::new();
        for i in 0..self.sites {
            let site = SiteId(i as u32);
            let (tx, rx) = unbounded();
            router.senders.write().insert(site, tx.clone());
            let core = SiteCore {
                site,
                home,
                config: self.config,
                daemon: SiteDaemon::new(site, home, self.config.codec),
                coordinator: (site == home).then(|| SyncCoordinator::new(home, self.config)),
                manager: SiteManager::new(site, registry.clone(), site == home),
                sink: CmdSink::new(),
                router: router.clone(),
                epoch,
                stable_log: stable_log.clone(),
                avail: HashMap::new(),
                pending_grant: HashMap::new(),
                wait_data: HashMap::new(),
                held: HashMap::new(),
                revoked: HashMap::new(),
                local_queue: HashMap::new(),
                wait_push: HashMap::new(),
                pending_spawns: HashMap::new(),
                prints: Vec::new(),
                timers: BinaryHeap::new(),
                timer_gen: HashMap::new(),
                next_gen: 0,
                next_thread: 0,
                stop: false,
            };
            let join = std::thread::Builder::new()
                .name(format!("mocha-site-{i}"))
                .spawn(move || core.run(rx))
                .expect("spawn site thread");
            handles.push(MochaHandle { site, tx });
            joins.push(Some(join));
        }
        ThreadRuntime {
            router,
            handles,
            joins,
            killed: Vec::new(),
            config: self.config,
            registry,
            epoch,
            stable_log,
        }
    }
}

/// A running multi-threaded Mocha deployment.
pub struct ThreadRuntime {
    router: Arc<Router>,
    handles: Vec<MochaHandle>,
    joins: Vec<Option<JoinHandle<()>>>,
    killed: Vec<SiteId>,
    config: MochaConfig,
    registry: Arc<TaskRegistry>,
    epoch: Instant,
    stable_log: Arc<Mutex<Vec<(SiteId, Msg)>>>,
}

impl std::fmt::Debug for ThreadRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadRuntime")
            .field("sites", &self.handles.len())
            .field("killed", &self.killed)
            .finish()
    }
}

impl ThreadRuntime {
    /// Starts building a runtime. Defaults: 2 sites, default config.
    pub fn builder() -> ThreadRuntimeBuilder {
        ThreadRuntimeBuilder {
            sites: 2,
            config: MochaConfig::default(),
            registry: TaskRegistry::new(),
        }
    }

    /// The handle for site `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn handle(&self, i: usize) -> MochaHandle {
        self.handles[i].clone()
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.handles.len()
    }

    /// Kills a site: its event loop stops and all subsequent sends to it
    /// fail — the wide-area "remote node reboot" failure.
    pub fn kill_site(&mut self, i: usize) {
        let site = self.handles[i].site;
        self.router.remove(site);
        let _ = self.handles[i].tx.send(LoopInput::App(AppRequest::Stop));
        if let Some(join) = self.joins[i].take() {
            let _ = join.join();
        }
        self.killed.push(site);
    }

    /// Reboots a killed site with a fresh, empty Mocha stack. The new
    /// incarnation must re-register its replicas to rejoin (which also
    /// lifts any coordinator blacklist entry). The returned handle (and
    /// all future `handle(i)` calls) talk to the new incarnation.
    ///
    /// # Panics
    ///
    /// Panics if the site was never killed.
    pub fn restart_site(&mut self, i: usize) -> MochaHandle {
        let site = self.handles[i].site;
        assert!(
            self.killed.contains(&site),
            "restart_site requires a killed site"
        );
        self.killed.retain(|s| *s != site);
        let (tx, rx) = unbounded();
        self.router.senders.write().insert(site, tx.clone());
        let core = SiteCore {
            site,
            home: SiteId(0),
            config: self.config,
            daemon: SiteDaemon::new(site, SiteId(0), self.config.codec),
            coordinator: (site == SiteId(0))
                .then(|| SyncCoordinator::new(SiteId(0), self.config)),
            manager: SiteManager::new(site, self.registry.clone(), site == SiteId(0)),
            sink: CmdSink::new(),
            router: self.router.clone(),
            epoch: self.epoch,
            stable_log: self.stable_log.clone(),
            avail: HashMap::new(),
            pending_grant: HashMap::new(),
            wait_data: HashMap::new(),
            held: HashMap::new(),
            revoked: HashMap::new(),
            local_queue: HashMap::new(),
            wait_push: HashMap::new(),
            pending_spawns: HashMap::new(),
            prints: Vec::new(),
            timers: BinaryHeap::new(),
            timer_gen: HashMap::new(),
            next_gen: 0,
            next_thread: 0,
            stop: false,
        };
        let join = std::thread::Builder::new()
            .name(format!("mocha-site-{i}-reborn"))
            .spawn(move || core.run(rx))
            .expect("spawn site thread");
        self.joins[i] = Some(join);
        self.handles[i] = MochaHandle { site, tx };
        self.handles[i].clone()
    }

    /// Promotes site `i` to surrogate coordinator, replaying the home's
    /// stable-storage state log — the §4 synchronization-thread recovery
    /// for the real-thread runtime. Typically called after
    /// [`kill_site`](Self::kill_site)(0).
    pub fn promote_coordinator(&mut self, i: usize) {
        let log = self.stable_log.lock().clone();
        let (tx, rx) = unbounded();
        let _ = self.handles[i]
            .tx
            .send(LoopInput::App(AppRequest::Promote { log, reply: tx }));
        let _ = rx.recv_timeout(BLOCKING_TIMEOUT);
    }

    /// Stops every site and joins their threads.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        for i in 0..self.handles.len() {
            let site = self.handles[i].site;
            self.router.remove(site);
            let _ = self.handles[i].tx.send(LoopInput::App(AppRequest::Stop));
        }
        for join in &mut self.joins {
            if let Some(j) = join.take() {
                let _ = j.join();
            }
        }
    }
}

impl Drop for ThreadRuntime {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::replica_id;
    use crate::spawn::TaskSpec;

    const L: LockId = LockId(1);

    fn specs(name: &str) -> Vec<ReplicaSpec> {
        vec![ReplicaSpec::new(name, ReplicaPayload::empty())]
    }

    #[test]
    fn blocking_lock_write_read_across_sites() {
        let rt = ThreadRuntime::builder().sites(2).build();
        let a = rt.handle(0);
        let b = rt.handle(1);
        let idx = replica_id("idx");
        a.register(L, specs("idx")).unwrap();
        b.register(L, specs("idx")).unwrap();

        a.lock(L).unwrap();
        a.write(idx, ReplicaPayload::I32s(vec![41])).unwrap();
        a.unlock(L, true).unwrap();

        b.lock(L).unwrap();
        assert_eq!(b.read(idx).unwrap(), ReplicaPayload::I32s(vec![41]));
        b.write(idx, ReplicaPayload::I32s(vec![42])).unwrap();
        b.unlock(L, true).unwrap();

        a.lock(L).unwrap();
        assert_eq!(a.read(idx).unwrap(), ReplicaPayload::I32s(vec![42]));
        a.unlock(L, false).unwrap();
        rt.shutdown();
    }

    #[test]
    fn guarded_access_requires_lock() {
        let rt = ThreadRuntime::builder().sites(1).build();
        let a = rt.handle(0);
        let idx = replica_id("g");
        a.register(L, specs("g")).unwrap();
        assert!(matches!(
            a.write(idx, ReplicaPayload::empty()),
            Err(MochaError::NotLocked { .. })
        ));
        a.lock(L).unwrap();
        a.write(idx, ReplicaPayload::empty()).unwrap();
        a.unlock(L, false).unwrap();
        rt.shutdown();
    }

    #[test]
    fn unlock_without_lock_errors() {
        let rt = ThreadRuntime::builder().sites(1).build();
        let a = rt.handle(0);
        assert!(matches!(
            a.unlock(L, false),
            Err(MochaError::NotLocked { .. })
        ));
        rt.shutdown();
    }

    #[test]
    fn contended_lock_serialises_writers() {
        let rt = ThreadRuntime::builder().sites(3).build();
        let idx = replica_id("ctr");
        for i in 0..3 {
            rt.handle(i).register(L, specs("ctr")).unwrap();
        }
        rt.handle(0).lock(L).unwrap();
        rt.handle(0)
            .write(idx, ReplicaPayload::I32s(vec![0]))
            .unwrap();
        rt.handle(0).unlock(L, true).unwrap();

        let mut workers = Vec::new();
        for i in 0..3 {
            let h = rt.handle(i);
            workers.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    h.lock(L).unwrap();
                    let ReplicaPayload::I32s(v) = h.read(idx).unwrap() else {
                        panic!("wrong type");
                    };
                    h.write(idx, ReplicaPayload::I32s(vec![v[0] + 1])).unwrap();
                    h.unlock(L, true).unwrap();
                }
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
        rt.handle(0).lock(L).unwrap();
        assert_eq!(
            rt.handle(0).read(idx).unwrap(),
            ReplicaPayload::I32s(vec![30]),
            "30 increments under mutual exclusion"
        );
        rt.handle(0).unlock(L, false).unwrap();
        rt.shutdown();
    }

    #[test]
    fn spawn_round_trip() {
        let mut reg = TaskRegistry::new();
        reg.register_task(
            "AddOne",
            TaskSpec {
                requires: vec![],
                compute: Duration::ZERO,
                body: Arc::new(|p, _| {
                    let x = p.get_i32("x").map_err(|e| e.to_string())?;
                    let mut out = TravelBag::new();
                    out.add("y", x + 1);
                    Ok(out)
                }),
            },
        );
        let rt = ThreadRuntime::builder().sites(2).registry(reg).build();
        let mut params = Parameter::new();
        params.add("x", 4);
        let out = rt.handle(0).spawn(SiteId(1), "AddOne", &params).unwrap();
        assert_eq!(out.get_i32("y").unwrap(), 5);
        rt.shutdown();
    }
}

#[cfg(test)]
mod handle_tests {
    use super::*;
    use crate::hostfile::HostFile;
    use crate::spawn::TaskSpec;

    #[test]
    fn async_spawns_overlap_and_collect_via_result_handles() {
        let mut reg = TaskRegistry::new();
        reg.register_task(
            "Slow",
            TaskSpec {
                requires: vec![],
                compute: Duration::ZERO,
                body: Arc::new(|p, _| {
                    std::thread::sleep(Duration::from_millis(30));
                    let x = p.get_i32("x").map_err(|e| e.to_string())?;
                    let mut out = TravelBag::new();
                    out.add("sq", x * x);
                    Ok(out)
                }),
            },
        );
        let rt = ThreadRuntime::builder().sites(4).registry(reg).build();
        let home = rt.handle(0);
        let mut hosts = HostFile::all_remote(4);
        // Fan out via the hostfile's round-robin placement (Figure 1's
        // spawn-without-naming-a-host).
        let handles: Vec<(i32, ResultHandle)> = (1..=6)
            .map(|x| {
                let mut p = Parameter::new();
                p.add("x", x);
                let dest = hosts.next_site();
                (x, home.spawn_async(dest, "Slow", &p).unwrap())
            })
            .collect();
        for (x, rh) in handles {
            let out = rh.wait().unwrap();
            assert_eq!(out.get_i32("sq").unwrap(), x * x);
        }
        rt.shutdown();
    }

    #[test]
    fn try_wait_returns_handle_while_running() {
        let mut reg = TaskRegistry::new();
        reg.register_task(
            "Sleepy",
            TaskSpec {
                requires: vec![],
                compute: Duration::ZERO,
                body: Arc::new(|_, _| {
                    std::thread::sleep(Duration::from_millis(150));
                    Ok(TravelBag::new())
                }),
            },
        );
        let rt = ThreadRuntime::builder().sites(2).registry(reg).build();
        let rh = rt
            .handle(0)
            .spawn_async(SiteId(1), "Sleepy", &Parameter::new())
            .unwrap();
        // Immediately: still running.
        let rh = match rh.try_wait() {
            Err(rh) => rh,
            Ok(_) => panic!("finished suspiciously fast"),
        };
        assert!(rh.wait().is_ok());
        rt.shutdown();
    }
}

#[cfg(test)]
mod reboot_tests {
    use super::*;
    use crate::replica::replica_id;

    #[test]
    fn killed_site_reboots_and_rejoins() {
        let mut rt = ThreadRuntime::builder().sites(3).build();
        let lock = LockId(1);
        let idx = replica_id("v");
        for i in 0..3 {
            rt.handle(i)
                .register(lock, vec![ReplicaSpec::new("v", ReplicaPayload::empty())])
                .unwrap();
        }
        let h1 = rt.handle(1);
        h1.lock(lock).unwrap();
        h1.write(idx, ReplicaPayload::I32s(vec![6])).unwrap();
        h1.unlock(lock, true).unwrap();

        rt.kill_site(2);
        let h2 = rt.restart_site(2);
        // The fresh incarnation re-registers and reads current state.
        h2.register(lock, vec![ReplicaSpec::new("v", ReplicaPayload::empty())])
            .unwrap();
        h2.lock(lock).unwrap();
        assert_eq!(h2.read(idx).unwrap(), ReplicaPayload::I32s(vec![6]));
        h2.unlock(lock, false).unwrap();
        rt.shutdown();
    }
}

#[cfg(test)]
mod surrogate_tests {
    use super::*;
    use crate::replica::replica_id;

    #[test]
    fn surrogate_promotion_in_real_threads() {
        // Short lease/scan so a phantom hold (release lost with the dead
        // home) self-heals quickly via the heartbeat hold-check.
        let mut rt = ThreadRuntime::builder()
            .sites(3)
            .config(MochaConfig {
                default_lease: Duration::from_millis(400),
                lease_scan_interval: Duration::from_millis(150),
                heartbeat_timeout: Duration::from_millis(300),
                ..MochaConfig::default()
            })
            .build();
        let lock = LockId(1);
        let idx = replica_id("s");
        for i in 0..3 {
            rt.handle(i)
                .register(lock, vec![ReplicaSpec::new("s", ReplicaPayload::empty())])
                .unwrap();
        }
        // Normal traffic establishes coordinator state.
        let h1 = rt.handle(1);
        h1.lock(lock).unwrap();
        h1.write(idx, ReplicaPayload::Utf8("pre-crash".into())).unwrap();
        h1.unlock(lock, true).unwrap();

        // The home dies; site 2 becomes the surrogate.
        rt.kill_site(0);
        rt.promote_coordinator(2);
        // Give the SyncMoved broadcast a moment to land everywhere.
        std::thread::sleep(Duration::from_millis(200));

        // Locking still works, served by the surrogate, with state intact.
        let h2 = rt.handle(2);
        h2.lock(lock).unwrap();
        assert_eq!(h2.read(idx).unwrap(), ReplicaPayload::Utf8("pre-crash".into()));
        h2.write(idx, ReplicaPayload::Utf8("post-takeover".into())).unwrap();
        h2.unlock(lock, true).unwrap();

        h1.lock(lock).unwrap();
        assert_eq!(
            h1.read(idx).unwrap(),
            ReplicaPayload::Utf8("post-takeover".into())
        );
        h1.unlock(lock, false).unwrap();
        rt.shutdown();
    }
}
