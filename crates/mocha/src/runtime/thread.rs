//! The real-thread runtime: Mocha on OS threads with a blocking API.
//!
//! Each site runs an event-loop thread hosting the same protocol state
//! machines as the simulator (daemon, coordinator at the home site, site
//! manager). Application code calls blocking methods on a
//! [`MochaHandle`] — `lock`, `unlock`, `read`, `write`, `spawn` — exactly
//! the programming model of the paper's Figures 1–3.
//!
//! Transport is an in-process reliable message router (crossbeam
//! channels); timing fidelity and lossy-network behaviour live in the
//! simulator runtime, and real UDP/TCP deployment in the
//! [`socket`](crate::runtime::socket) runtime — all three animate the
//! identical protocol core ([`super::core`]). Failure injection is still
//! supported: [`ThreadRuntime::kill_site`] stops a site's event loop, and
//! sends to it then fail exactly like the paper's timeout detections —
//! triggering lock breaking, recovery polling and push replacement.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};

use mocha_net::{MsgClass, Port};
use mocha_store::{StoreConfig, StoreHandle};
use mocha_wire::{Msg, SiteId};

use crate::cmd::SendTag;
use crate::config::MochaConfig;
use crate::runtime::core::{
    await_reply, AppRequest, CoreSeed, Envelope, Link, LoopInput, SiteCore,
};
use crate::runtime::metrics::{RuntimeCounters, RuntimeMetrics};
use crate::spawn::TaskRegistry;

pub use crate::runtime::core::{Freshness, MochaHandle, Pending, ResultHandle};

/// Routes envelopes between site event loops. A killed site's entry is
/// removed; sends to it fail, which is the runtime's failure signal.
#[derive(Default)]
struct Router {
    senders: RwLock<HashMap<SiteId, Sender<(SiteId, LoopInput)>>>,
}

impl Router {
    fn send(&self, to: SiteId, env: Envelope) -> Result<(), ()> {
        let senders = self.senders.read();
        match senders.get(&to) {
            // Unbounded crossbeam send: never blocks, and the read guard
            // is only ever held against other readers here.
            // lint: allow(send-under-lock)
            Some(tx) => tx.send((to, LoopInput::Env(env))).map_err(|_| ()),
            None => Err(()),
        }
    }

    fn remove(&self, site: SiteId) {
        self.senders.write().remove(&site);
    }
}

/// The thread runtime's [`Link`]: synchronous channel delivery with
/// immediate failure when the peer is gone.
struct ThreadLink {
    site: SiteId,
    router: Arc<Router>,
    counters: Arc<RuntimeCounters>,
}

impl Link for ThreadLink {
    fn deliver(
        &mut self,
        to: SiteId,
        port: Port,
        msg: Msg,
        _class: MsgClass,
        _tag: &SendTag,
    ) -> bool {
        let env = Envelope {
            from: self.site,
            port,
            msg,
        };
        self.counters.inc_datagrams_sent(0);
        if self.router.send(to, env).is_ok() {
            true
        } else {
            self.counters.inc_datagrams_lost();
            false
        }
    }
}

/// Site event loop: blocks on the input channel up to the next timer
/// deadline.
fn run_site(mut core: SiteCore<ThreadLink>, rx: Receiver<(SiteId, LoopInput)>) {
    while !core.stop {
        core.process_cmds();
        let timeout = core
            .next_deadline()
            .map_or(Duration::from_millis(200), |d| {
                d.saturating_duration_since(Instant::now())
            });
        // The thread runtime's designed wait: one site per thread, parked
        // until the next input or timer deadline. Not a reactor shard.
        // lint: allow(blocking)
        match rx.recv_timeout(timeout) {
            Ok((_, input)) => {
                note_delivery(&core, &input);
                core.handle_input(input);
                // Drain any further queued inputs without blocking.
                while let Ok((_, more)) = rx.try_recv() {
                    core.process_cmds();
                    note_delivery(&core, &more);
                    core.handle_input(more);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                // Transport-namespace tokens never occur here.
                let _ = core.fire_due_timers();
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

fn note_delivery(core: &SiteCore<ThreadLink>, input: &LoopInput) {
    if matches!(input, LoopInput::Env(_)) {
        core.counters.inc_datagrams_delivered();
    }
}

/// Builder for [`ThreadRuntime`].
pub struct ThreadRuntimeBuilder {
    sites: usize,
    config: MochaConfig,
    registry: TaskRegistry,
    durable: Option<StoreConfig>,
}

impl ThreadRuntimeBuilder {
    /// Number of sites (site 0 is the home site).
    #[must_use]
    pub fn sites(mut self, n: usize) -> Self {
        self.sites = n;
        self
    }

    /// Mocha configuration.
    #[must_use]
    pub fn config(mut self, config: MochaConfig) -> Self {
        self.config = config;
        self
    }

    /// Task registry for spawn support.
    #[must_use]
    pub fn registry(mut self, registry: TaskRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Gives every site a durable store (in-memory backing, shared across
    /// restarts): applied and released versions are logged, and
    /// [`ThreadRuntime::restart_site`] recovers from snapshot + WAL
    /// instead of rebooting empty.
    #[must_use]
    pub fn durable(mut self, config: StoreConfig) -> Self {
        self.durable = Some(config);
        self
    }

    /// Starts all site event loops.
    ///
    /// # Panics
    ///
    /// Panics if `sites == 0` or the configuration is invalid.
    pub fn build(self) -> ThreadRuntime {
        assert!(self.sites >= 1);
        self.config.validate().expect("invalid MochaConfig");
        let router = Arc::new(Router::default());
        let registry = Arc::new(self.registry);
        let counters = Arc::new(RuntimeCounters::default());
        let epoch = Instant::now();
        let home = SiteId(0);
        let stable_log: Arc<Mutex<Vec<(SiteId, Msg)>>> = Arc::new(Mutex::new(Vec::new()));
        let stores: Vec<Option<StoreHandle>> = (0..self.sites)
            .map(|_| self.durable.map(StoreHandle::mem))
            .collect();
        let mut handles = Vec::new();
        let mut joins = Vec::new();
        for i in 0..self.sites {
            let site = SiteId(i as u32);
            let (tx, rx) = unbounded();
            router.senders.write().insert(site, tx.clone());
            let core = SiteCore::new(
                CoreSeed {
                    site,
                    home,
                    sites: (0..self.sites as u32).map(SiteId).collect(),
                    config: self.config,
                    registry: registry.clone(),
                    epoch,
                    stable_log: stable_log.clone(),
                    counters: counters.clone(),
                    store: stores[i].clone(),
                },
                ThreadLink {
                    site,
                    router: router.clone(),
                    counters: counters.clone(),
                },
            );
            let join = std::thread::Builder::new()
                .name(format!("mocha-site-{i}"))
                .spawn(move || run_site(core, rx))
                .expect("spawn site thread");
            handles.push(MochaHandle::new(site, tx, None));
            joins.push(Some(join));
        }
        ThreadRuntime {
            router,
            handles,
            joins,
            killed: Vec::new(),
            config: self.config,
            registry,
            epoch,
            stable_log,
            counters,
            stores,
        }
    }
}

/// A running multi-threaded Mocha deployment.
pub struct ThreadRuntime {
    router: Arc<Router>,
    handles: Vec<MochaHandle>,
    joins: Vec<Option<JoinHandle<()>>>,
    killed: Vec<SiteId>,
    config: MochaConfig,
    registry: Arc<TaskRegistry>,
    epoch: Instant,
    stable_log: Arc<Mutex<Vec<(SiteId, Msg)>>>,
    counters: Arc<RuntimeCounters>,
    /// Per-site durable stores (all `None` unless the builder opted in).
    /// The backing outlives a site's incarnation — that is the point.
    stores: Vec<Option<StoreHandle>>,
}

impl std::fmt::Debug for ThreadRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadRuntime")
            .field("sites", &self.handles.len())
            .field("killed", &self.killed)
            .finish()
    }
}

impl ThreadRuntime {
    /// Starts building a runtime. Defaults: 2 sites, default config.
    pub fn builder() -> ThreadRuntimeBuilder {
        ThreadRuntimeBuilder {
            sites: 2,
            config: MochaConfig::default(),
            registry: TaskRegistry::new(),
            durable: None,
        }
    }

    /// The handle for site `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn handle(&self, i: usize) -> MochaHandle {
        self.handles[i].clone()
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.handles.len()
    }

    /// A snapshot of the runtime's transport/timer counters (the
    /// real-execution mirror of [`mocha_sim::Metrics`]).
    pub fn metrics(&self) -> RuntimeMetrics {
        self.counters.snapshot()
    }

    /// Kills a site: its event loop stops and all subsequent sends to it
    /// fail — the wide-area "remote node reboot" failure.
    pub fn kill_site(&mut self, i: usize) {
        let site = self.handles[i].site();
        self.router.remove(site);
        let _ = self.handles[i].push(LoopInput::App(AppRequest::Stop));
        if let Some(join) = self.joins[i].take() {
            let _ = join.join();
        }
        self.killed.push(site);
    }

    /// Reboots a killed site with a fresh, empty Mocha stack. The new
    /// incarnation must re-register its replicas to rejoin (which also
    /// lifts any coordinator blacklist entry). The returned handle (and
    /// all future `handle(i)` calls) talk to the new incarnation.
    ///
    /// # Panics
    ///
    /// Panics if the site was never killed.
    pub fn restart_site(&mut self, i: usize) -> MochaHandle {
        let site = self.handles[i].site();
        assert!(
            self.killed.contains(&site),
            "restart_site requires a killed site"
        );
        self.killed.retain(|s| *s != site);
        let (tx, rx) = unbounded();
        self.router.senders.write().insert(site, tx.clone());
        let core = SiteCore::new(
            CoreSeed {
                site,
                home: SiteId(0),
                sites: (0..self.handles.len() as u32).map(SiteId).collect(),
                config: self.config,
                registry: self.registry.clone(),
                epoch: self.epoch,
                stable_log: self.stable_log.clone(),
                counters: self.counters.clone(),
                store: self.stores.get(i).cloned().flatten(),
            },
            ThreadLink {
                site,
                router: self.router.clone(),
                counters: self.counters.clone(),
            },
        );
        let join = std::thread::Builder::new()
            .name(format!("mocha-site-{i}-reborn"))
            .spawn(move || run_site(core, rx))
            .expect("spawn site thread");
        self.joins[i] = Some(join);
        self.handles[i] = MochaHandle::new(site, tx, None);
        self.handles[i].clone()
    }

    /// Site `i`'s durable store handle, if the builder opted in — the
    /// hostile-recovery tests use it to corrupt the stable image between
    /// [`kill_site`](Self::kill_site) and
    /// [`restart_site`](Self::restart_site).
    pub fn store_handle(&self, i: usize) -> Option<StoreHandle> {
        self.stores.get(i).cloned().flatten()
    }

    /// Promotes site `i` to surrogate coordinator, replaying the home's
    /// stable-storage state log — the §4 synchronization-thread recovery
    /// for the real-thread runtime. Typically called after
    /// [`kill_site`](Self::kill_site)(0).
    pub fn promote_coordinator(&mut self, i: usize) {
        let log = self.stable_log.lock().clone();
        let (tx, rx) = unbounded();
        let _ = self.handles[i].push(LoopInput::App(AppRequest::Promote { log, reply: tx }));
        let _ = await_reply(&rx);
    }

    /// Stops every site and joins their threads.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        for i in 0..self.handles.len() {
            let site = self.handles[i].site();
            self.router.remove(site);
            let _ = self.handles[i].push(LoopInput::App(AppRequest::Stop));
        }
        for join in &mut self.joins {
            if let Some(j) = join.take() {
                let _ = j.join();
            }
        }
    }
}

impl Drop for ThreadRuntime {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::MochaError;
    use crate::replica::{replica_id, ReplicaSpec};
    use crate::spawn::TaskSpec;
    use crate::travelbag::{Parameter, TravelBag};
    use mocha_wire::{LockId, ReplicaPayload};

    const L: LockId = LockId(1);

    fn specs(name: &str) -> Vec<ReplicaSpec> {
        vec![ReplicaSpec::new(name, ReplicaPayload::empty())]
    }

    #[test]
    fn blocking_lock_write_read_across_sites() {
        let rt = ThreadRuntime::builder().sites(2).build();
        let a = rt.handle(0);
        let b = rt.handle(1);
        let idx = replica_id("idx");
        a.register(L, specs("idx")).unwrap();
        b.register(L, specs("idx")).unwrap();

        a.lock(L).unwrap();
        a.write(idx, ReplicaPayload::I32s(vec![41])).unwrap();
        a.unlock(L, true).unwrap();

        b.lock(L).unwrap();
        assert_eq!(b.read(idx).unwrap(), ReplicaPayload::I32s(vec![41]));
        b.write(idx, ReplicaPayload::I32s(vec![42])).unwrap();
        b.unlock(L, true).unwrap();

        a.lock(L).unwrap();
        assert_eq!(a.read(idx).unwrap(), ReplicaPayload::I32s(vec![42]));
        a.unlock(L, false).unwrap();
        rt.shutdown();
    }

    #[test]
    fn guarded_access_requires_lock() {
        let rt = ThreadRuntime::builder().sites(1).build();
        let a = rt.handle(0);
        let idx = replica_id("g");
        a.register(L, specs("g")).unwrap();
        assert!(matches!(
            a.write(idx, ReplicaPayload::empty()),
            Err(MochaError::NotLocked { .. })
        ));
        a.lock(L).unwrap();
        a.write(idx, ReplicaPayload::empty()).unwrap();
        a.unlock(L, false).unwrap();
        rt.shutdown();
    }

    #[test]
    fn unlock_without_lock_errors() {
        let rt = ThreadRuntime::builder().sites(1).build();
        let a = rt.handle(0);
        assert!(matches!(
            a.unlock(L, false),
            Err(MochaError::NotLocked { .. })
        ));
        rt.shutdown();
    }

    #[test]
    fn contended_lock_serialises_writers() {
        let rt = ThreadRuntime::builder().sites(3).build();
        let idx = replica_id("ctr");
        for i in 0..3 {
            rt.handle(i).register(L, specs("ctr")).unwrap();
        }
        rt.handle(0).lock(L).unwrap();
        rt.handle(0)
            .write(idx, ReplicaPayload::I32s(vec![0]))
            .unwrap();
        rt.handle(0).unlock(L, true).unwrap();

        let mut workers = Vec::new();
        for i in 0..3 {
            let h = rt.handle(i);
            workers.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    h.lock(L).unwrap();
                    let ReplicaPayload::I32s(v) = h.read(idx).unwrap() else {
                        panic!("wrong type");
                    };
                    h.write(idx, ReplicaPayload::I32s(vec![v[0] + 1])).unwrap();
                    h.unlock(L, true).unwrap();
                }
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
        rt.handle(0).lock(L).unwrap();
        assert_eq!(
            rt.handle(0).read(idx).unwrap(),
            ReplicaPayload::I32s(vec![30]),
            "30 increments under mutual exclusion"
        );
        rt.handle(0).unlock(L, false).unwrap();

        // The runtime-level counters observed the traffic: inter-site
        // messages flowed, timers fired or not, nothing was lost.
        let m = rt.metrics();
        assert!(m.msgs_sent > 0, "cross-site protocol traffic counted");
        assert!(m.datagrams_delivered > 0);
        assert_eq!(m.datagrams_lost, 0, "no site died in this scenario");
        assert_eq!(m.sends_failed, 0);
        rt.shutdown();
    }

    #[test]
    fn spawn_round_trip() {
        let mut reg = TaskRegistry::new();
        reg.register_task(
            "AddOne",
            TaskSpec {
                requires: vec![],
                compute: Duration::ZERO,
                body: Arc::new(|p, _| {
                    let x = p.get_i32("x").map_err(|e| e.to_string())?;
                    let mut out = TravelBag::new();
                    out.add("y", x + 1);
                    Ok(out)
                }),
            },
        );
        let rt = ThreadRuntime::builder().sites(2).registry(reg).build();
        let mut params = Parameter::new();
        params.add("x", 4);
        let out = rt.handle(0).spawn(SiteId(1), "AddOne", &params).unwrap();
        assert_eq!(out.get_i32("y").unwrap(), 5);
        rt.shutdown();
    }
}

#[cfg(test)]
mod handle_tests {
    use super::*;
    use crate::hostfile::HostFile;
    use crate::spawn::TaskSpec;
    use crate::travelbag::{Parameter, TravelBag};

    #[test]
    fn async_spawns_overlap_and_collect_via_result_handles() {
        let mut reg = TaskRegistry::new();
        reg.register_task(
            "Slow",
            TaskSpec {
                requires: vec![],
                compute: Duration::ZERO,
                body: Arc::new(|p, _| {
                    std::thread::sleep(Duration::from_millis(30));
                    let x = p.get_i32("x").map_err(|e| e.to_string())?;
                    let mut out = TravelBag::new();
                    out.add("sq", x * x);
                    Ok(out)
                }),
            },
        );
        let rt = ThreadRuntime::builder().sites(4).registry(reg).build();
        let home = rt.handle(0);
        let mut hosts = HostFile::all_remote(4);
        // Fan out via the hostfile's round-robin placement (Figure 1's
        // spawn-without-naming-a-host).
        let handles: Vec<(i32, ResultHandle)> = (1..=6)
            .map(|x| {
                let mut p = Parameter::new();
                p.add("x", x);
                let dest = hosts.next_site();
                (x, home.spawn_async(dest, "Slow", &p).unwrap())
            })
            .collect();
        for (x, rh) in handles {
            let out = rh.wait().unwrap();
            assert_eq!(out.get_i32("sq").unwrap(), x * x);
        }
        rt.shutdown();
    }

    #[test]
    fn try_wait_returns_handle_while_running() {
        let mut reg = TaskRegistry::new();
        reg.register_task(
            "Sleepy",
            TaskSpec {
                requires: vec![],
                compute: Duration::ZERO,
                body: Arc::new(|_, _| {
                    std::thread::sleep(Duration::from_millis(150));
                    Ok(TravelBag::new())
                }),
            },
        );
        let rt = ThreadRuntime::builder().sites(2).registry(reg).build();
        let rh = rt
            .handle(0)
            .spawn_async(SiteId(1), "Sleepy", &Parameter::new())
            .unwrap();
        // Immediately: still running.
        let rh = match rh.try_wait() {
            Err(rh) => rh,
            Ok(_) => panic!("finished suspiciously fast"),
        };
        assert!(rh.wait().is_ok());
        rt.shutdown();
    }
}

#[cfg(test)]
mod reboot_tests {
    use super::*;
    use crate::replica::{replica_id, ReplicaSpec};
    use mocha_wire::{LockId, ReplicaPayload};

    #[test]
    fn killed_site_reboots_and_rejoins() {
        let mut rt = ThreadRuntime::builder().sites(3).build();
        let lock = LockId(1);
        let idx = replica_id("v");
        for i in 0..3 {
            rt.handle(i)
                .register(lock, vec![ReplicaSpec::new("v", ReplicaPayload::empty())])
                .unwrap();
        }
        let h1 = rt.handle(1);
        h1.lock(lock).unwrap();
        h1.write(idx, ReplicaPayload::I32s(vec![6])).unwrap();
        h1.unlock(lock, true).unwrap();

        rt.kill_site(2);
        let h2 = rt.restart_site(2);
        // The fresh incarnation re-registers and reads current state.
        h2.register(lock, vec![ReplicaSpec::new("v", ReplicaPayload::empty())])
            .unwrap();
        h2.lock(lock).unwrap();
        assert_eq!(h2.read(idx).unwrap(), ReplicaPayload::I32s(vec![6]));
        h2.unlock(lock, false).unwrap();
        rt.shutdown();
    }
}

#[cfg(test)]
mod surrogate_tests {
    use super::*;
    use crate::replica::{replica_id, ReplicaSpec};
    use mocha_wire::{LockId, ReplicaPayload};

    #[test]
    fn surrogate_promotion_in_real_threads() {
        // Short lease/scan so a phantom hold (release lost with the dead
        // home) self-heals quickly via the heartbeat hold-check.
        let mut rt = ThreadRuntime::builder()
            .sites(3)
            .config(MochaConfig {
                default_lease: Duration::from_millis(400),
                lease_scan_interval: Duration::from_millis(150),
                heartbeat_timeout: Duration::from_millis(300),
                ..MochaConfig::default()
            })
            .build();
        let lock = LockId(1);
        let idx = replica_id("s");
        for i in 0..3 {
            rt.handle(i)
                .register(lock, vec![ReplicaSpec::new("s", ReplicaPayload::empty())])
                .unwrap();
        }
        // Normal traffic establishes coordinator state.
        let h1 = rt.handle(1);
        h1.lock(lock).unwrap();
        h1.write(idx, ReplicaPayload::Utf8("pre-crash".into()))
            .unwrap();
        h1.unlock(lock, true).unwrap();
        // The unlock reply races the ReleaseLock message still in flight
        // to the home's loop; let it reach the stable log before the home
        // dies, or the surrogate replays a log without the release (a
        // near-certain loss on single-CPU schedulers).
        std::thread::sleep(Duration::from_millis(50));

        // The home dies; site 2 becomes the surrogate.
        rt.kill_site(0);
        rt.promote_coordinator(2);
        // Give the SyncMoved broadcast a moment to land everywhere.
        std::thread::sleep(Duration::from_millis(200));

        // Locking still works, served by the surrogate, with state intact.
        let h2 = rt.handle(2);
        h2.lock(lock).unwrap();
        assert_eq!(
            h2.read(idx).unwrap(),
            ReplicaPayload::Utf8("pre-crash".into())
        );
        h2.write(idx, ReplicaPayload::Utf8("post-takeover".into()))
            .unwrap();
        h2.unlock(lock, true).unwrap();

        h1.lock(lock).unwrap();
        assert_eq!(
            h1.read(idx).unwrap(),
            ReplicaPayload::Utf8("post-takeover".into())
        );
        h1.unlock(lock, false).unwrap();
        rt.shutdown();
    }
}
