//! The deterministic virtual-time runtime.
//!
//! Each participating site becomes one simulator [`Host`]: a [`SiteHost`]
//! owning the site's transport stack, daemon, application runner and site
//! manager — plus, at the home site, the synchronization coordinator. The
//! host's job is purely mechanical: route arriving datagrams and timers
//! into the right state machine, and execute the [`Cmd`]s they emit
//! (sends, charges, timers, local signals).
//!
//! [`SimCluster`] is the harness the tests and benchmarks use: build a
//! cluster, attach scripts, run, inspect records and replica state.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use mocha_net::{Action, Port, SendHandle, TransportEvent, TransportMux};
use mocha_sim::{profiles, CpuProfile, Host, HostCtx, LinkProfile, NodeId, SimTime, World};
use mocha_store::{SiteStore, StoreConfig, StoreHandle};
use mocha_wire::io::{ByteReader, ByteWriter};
use mocha_wire::{LockId, Msg, ReplicaId, ReplicaPayload, SiteId, ThreadId, Version};

use crate::app::{AppRunner, Record, Script};
use crate::cmd::{Cmd, CmdSink, SendTag, Signal};
use crate::config::MochaConfig;
use crate::daemon::{DaemonStats, SiteDaemon};
use crate::directory::Directory;
use crate::spawn::{SiteManager, SpawnOutcome, TaskRegistry};
use crate::sync::{CoordinatorStats, SyncCoordinator};
use crate::travelbag::Parameter;

/// Harness-injected datagrams start with this byte (distinct from the
/// transport protocol discriminators).
const HARNESS_PROTO: u8 = 0xFE;
const HARNESS_KICK: u8 = 0;
const HARNESS_SPAWN: u8 = 1;
const HARNESS_PROMOTE: u8 = 2;

/// One site of a simulated Mocha deployment.
pub struct SiteHost {
    site: SiteId,
    config: MochaConfig,
    mux: TransportMux,
    daemon: SiteDaemon,
    coordinator: Option<SyncCoordinator>,
    runner: AppRunner,
    manager: SiteManager,
    sink: CmdSink,
    store: Option<SiteStore>,
    tags: HashMap<SendHandle, SendTag>,
    local_queue: VecDeque<(Port, Msg)>,
    prints: Vec<String>,
    notes: Vec<String>,
}

impl SiteHost {
    /// Creates a site host. The coordinator runs only at `home`.
    pub fn new(
        site: SiteId,
        home: SiteId,
        config: MochaConfig,
        registry: Arc<TaskRegistry>,
    ) -> SiteHost {
        let coordinator = (site == home).then(|| SyncCoordinator::new(home, config));
        let mut daemon = SiteDaemon::new(site, home, config.codec);
        daemon.set_faults(config.faults);
        daemon.set_push_options(config.push);
        let mut mux =
            TransportMux::new(site, config.net).expect("MochaConfig validated before host build");
        // Deterministic first-incarnation epoch: simulated wire bytes
        // become a pure function of (site, config, schedule), which the
        // schedule explorer's state fingerprints and trace replays rely
        // on. Reboots get fresh epochs via [`SiteHost::set_transport_epoch`].
        mux.set_epoch(site.as_raw() + 1);
        SiteHost {
            site,
            config,
            mux,
            daemon,
            coordinator,
            runner: AppRunner::new(site, home),
            manager: SiteManager::new(site, registry, site == home),
            sink: CmdSink::new(),
            store: None,
            tags: HashMap::new(),
            local_queue: VecDeque::new(),
            prints: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Switches this host into consistent-hash directory mode over
    /// `sites`: the daemon routes per lock, and a coordinator runs here
    /// owning this site's ring share (replacing the fixed-home-only
    /// coordinator, if any).
    pub fn install_directory(&mut self, sites: &[SiteId]) {
        self.daemon
            .install_directory(Directory::new(sites, self.config.home.virtual_shards));
        self.coordinator = Some(SyncCoordinator::with_directory(
            self.site,
            self.config,
            sites,
        ));
    }

    /// The application runner (scripts, records, observations).
    pub fn runner(&self) -> &AppRunner {
        &self.runner
    }

    /// Mutable runner access (adding threads).
    pub fn runner_mut(&mut self) -> &mut AppRunner {
        &mut self.runner
    }

    /// The site daemon (replica store).
    pub fn daemon(&self) -> &SiteDaemon {
        &self.daemon
    }

    /// The coordinator, present only at the home site.
    pub fn coordinator(&self) -> Option<&SyncCoordinator> {
        self.coordinator.as_ref()
    }

    /// The site manager (spawn outcomes, prints).
    pub fn manager(&self) -> &SiteManager {
        &self.manager
    }

    /// Mutable site-manager access (e.g. installing a security policy).
    pub fn manager_mut(&mut self) -> &mut SiteManager {
        &mut self.manager
    }

    /// Overrides the transport incarnation epoch. The simulator calls
    /// this on reboot so each incarnation stamps distinct (but still
    /// deterministic) epochs on the wire.
    pub fn set_transport_epoch(&mut self, epoch: u32) {
        self.mux.set_epoch(epoch);
    }

    /// Attaches a durable store, replaying any recovered state into the
    /// daemon before the site rejoins. Recovery output (the
    /// [`Msg::SiteRecovered`] announcement to the coordinator) queues in
    /// the command sink and flushes on the next pump. A store that fails
    /// to open degrades to a note and a non-durable site — never a panic.
    pub fn attach_store(&mut self, handle: &StoreHandle) {
        match handle.open() {
            Ok(opened) => {
                if let Some(c) = &opened.report().wal_corruption {
                    self.notes
                        .push(format!("store recovery truncated WAL: {c}"));
                }
                if opened.recovered().is_empty() {
                    self.daemon.mark_durable();
                } else {
                    self.daemon.restore(opened.recovered(), &mut self.sink);
                }
                self.store = Some(opened);
            }
            Err(e) => self
                .notes
                .push(format!("durable store unavailable ({e}); running non-durable")),
        }
    }

    /// `mochaPrintln` output that reached this site.
    pub fn prints(&self) -> &[String] {
        &self.prints
    }

    /// Diagnostic notes emitted by components at this site.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Routes a delivered protocol message to the owning component.
    fn route_msg(&mut self, now: SimTime, from: SiteId, port: Port, msg: Msg) {
        match port {
            mocha_net::ports::SYNC => match self.coordinator.as_mut() {
                Some(c) => c.on_msg(now, from, msg, &mut self.sink),
                None => self
                    .notes
                    .push(format!("SYNC message at non-home {}", self.site)),
            },
            mocha_net::ports::DAEMON => self.daemon.on_msg(now, from, msg, &mut self.sink),
            mocha_net::ports::APP => {
                self.runner
                    .on_msg(now, from, msg, &mut self.daemon, &mut self.sink);
            }
            mocha_net::ports::SITE_MANAGER => self.manager.on_msg(now, from, msg, &mut self.sink),
            other => self.notes.push(format!("message on unknown port {other}")),
        }
    }

    fn route_transport_event(&mut self, now: SimTime, event: TransportEvent) {
        match event {
            TransportEvent::Delivered { from, port, bytes } => match Msg::decode(&bytes) {
                Ok(msg) => self.route_msg(now, from, port, msg),
                Err(e) => self
                    .notes
                    .push(format!("undecodable message from {from}: {e}")),
            },
            TransportEvent::MsgAcked { handle, .. } => {
                self.tags.remove(&handle);
            }
            TransportEvent::SendFailed { handle, .. } => {
                if let Some(tag) = self.tags.remove(&handle) {
                    match &tag {
                        SendTag::TransferDirective { .. }
                        | SendTag::Heartbeat { .. }
                        | SendTag::Migrate { .. } => {
                            if let Some(c) = self.coordinator.as_mut() {
                                c.on_send_failed(now, &tag, &mut self.sink);
                            }
                        }
                        SendTag::Push { .. } => {
                            self.daemon.on_send_failed(&tag, &mut self.sink);
                        }
                        SendTag::Acquire { .. } => {
                            self.runner.on_send_failed(now, &tag, &mut self.sink);
                        }
                        SendTag::Spawn { .. } => {
                            self.manager.on_send_failed(&tag, &mut self.sink);
                        }
                        SendTag::None => {}
                    }
                }
            }
            TransportEvent::PeerUnreachable { to } => {
                self.notes.push(format!("peer {to} unreachable"));
            }
        }
    }

    /// Executes everything pending: transport actions, component
    /// commands, loopback deliveries — until quiescent.
    fn pump(&mut self, ctx: &mut HostCtx<'_>) {
        loop {
            let mut progressed = false;

            for action in self.mux.drain_actions() {
                progressed = true;
                match action {
                    Action::Transmit { to, datagram } => {
                        ctx.send_datagram(NodeId::from_raw(to.as_raw()), datagram);
                    }
                    Action::SetTimer { token, after } => ctx.set_timer(after, token),
                    Action::CancelTimer { token } => {
                        ctx.cancel_timer(token);
                    }
                    Action::Charge(work) => ctx.charge(work),
                    Action::Event(ev) => self.route_transport_event(ctx.now(), ev),
                }
            }

            for cmd in self.sink.drain() {
                progressed = true;
                match cmd {
                    Cmd::Send {
                        to,
                        port,
                        msg,
                        class,
                        tag,
                    } => {
                        if to == self.site {
                            // Loopback: in-process queue, no transport.
                            self.local_queue.push_back((port, msg));
                        } else {
                            let handle = self.mux.send(to, port, &msg.encode(), class);
                            if tag != SendTag::None {
                                self.tags.insert(handle, tag);
                            }
                        }
                    }
                    Cmd::Charge(work) => ctx.charge(work),
                    Cmd::ChargeTime(d) => ctx.charge_time(d),
                    Cmd::SetTimer { token, after } => ctx.set_timer(after, token),
                    Cmd::CancelTimer { token } => {
                        ctx.cancel_timer(token);
                    }
                    Cmd::Persist {
                        lock,
                        version,
                        updates,
                    } => {
                        if let Some(store) = self.store.as_mut() {
                            if let Err(e) = store.append(lock, version, &updates) {
                                self.notes.push(format!("WAL append failed: {e}"));
                            }
                        }
                    }
                    Cmd::Signal(signal) => match &signal {
                        Signal::DataArrived { .. }
                        | Signal::PushesComplete { .. }
                        | Signal::HomeChanged { .. } => {
                            self.runner.on_signal(
                                ctx.now(),
                                &signal,
                                &mut self.daemon,
                                &mut self.sink,
                            );
                        }
                        Signal::SpawnDone { .. } => {
                            // Outcomes already recorded by the manager.
                        }
                    },
                    Cmd::Note(text) => {
                        ctx.note(text.clone());
                        self.notes.push(text);
                    }
                    Cmd::Print(text) => self.prints.push(text),
                }
            }

            while let Some((port, msg)) = self.local_queue.pop_front() {
                progressed = true;
                let site = self.site;
                self.route_msg(ctx.now(), site, port, msg);
            }

            if !progressed {
                break;
            }
        }
    }

    fn handle_harness(&mut self, ctx: &HostCtx<'_>, bytes: &[u8]) {
        let mut r = ByteReader::new(bytes);
        if r.get_u8().is_err() {
            self.notes.push("truncated harness datagram".into());
            return;
        }
        match r.get_u8() {
            Ok(HARNESS_KICK) => {
                let now = ctx.now();
                self.runner.run(now, &mut self.daemon, &mut self.sink);
            }
            Ok(HARNESS_PROMOTE) => {
                // Become the surrogate coordinator: rebuild state from the
                // predecessor's log, announce to every member daemon, and
                // redirect local components.
                let Ok(n) = r.get_u32() else {
                    self.notes.push("malformed harness promote".into());
                    return;
                };
                let mut log = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let entry = SiteId::decode(&mut r).and_then(|from| {
                        let bytes = r.get_bytes()?;
                        Ok((from, Msg::decode(bytes)?))
                    });
                    let Ok((from, msg)) = entry else {
                        self.notes.push("malformed harness promote log".into());
                        return;
                    };
                    log.push((from, msg));
                }
                let me = self.site;
                let mut coordinator = SyncCoordinator::replay(me, self.config, &log, ctx.now());
                let members = coordinator.all_members();
                coordinator.resume(&mut self.sink);
                self.coordinator = Some(coordinator);
                for member in members {
                    self.sink.send(
                        member,
                        mocha_net::ports::DAEMON,
                        Msg::SyncMoved { new_home: me },
                        mocha_net::MsgClass::Control,
                    );
                }
                // Local components redirect immediately.
                self.daemon.on_msg(
                    ctx.now(),
                    me,
                    Msg::SyncMoved { new_home: me },
                    &mut self.sink,
                );
            }
            Ok(HARNESS_SPAWN) => {
                let decoded = SiteId::decode(&mut r).and_then(|dest| {
                    let class = r.get_string()?;
                    let params = Parameter::decode(r.get_bytes()?)?;
                    Ok((dest, class, params))
                });
                let Ok((dest, class, params)) = decoded else {
                    self.notes.push("malformed harness spawn".into());
                    return;
                };
                self.manager.spawn(dest, &class, &params, &mut self.sink);
            }
            _ => {}
        }
    }
}

impl Host for SiteHost {
    fn on_datagram(&mut self, ctx: &mut HostCtx<'_>, from: NodeId, bytes: Vec<u8>) {
        // Virtual time drives the transport's RTT estimation, keeping the
        // adaptive RTO fully deterministic under the simulator.
        self.mux.set_now(ctx.now().since_start());
        if bytes.first() == Some(&HARNESS_PROTO) {
            self.handle_harness(ctx, &bytes);
        } else {
            self.mux
                .on_datagram(SiteId::from_raw(from.as_raw()), &bytes);
        }
        self.pump(ctx);
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, token: u64) {
        let now = ctx.now();
        self.mux.set_now(now.since_start());
        let handled = self.mux.on_timer(token)
            || self
                .coordinator
                .as_mut()
                .is_some_and(|c| c.on_timer(now, token, &mut self.sink))
            || self
                .runner
                .on_timer(now, token, &mut self.daemon, &mut self.sink);
        if !handled {
            self.notes.push(format!("unhandled timer {token:#x}"));
        }
        self.pump(ctx);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn fingerprint(&self) -> Option<u64> {
        use std::hash::{Hash, Hasher};
        // Protocol-state digest for the schedule explorer. Deliberately
        // excludes the transport mux (RTO estimators, retransmit queues):
        // pending retransmissions surface as pending events in the world's
        // fingerprint, and folding estimator state in here would make
        // almost every interleaving look distinct, defeating dedup. The
        // resulting fingerprint is a sound-enough heuristic for a bounded
        // checker, not a full bisimulation key.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.site.hash(&mut h);
        match &self.coordinator {
            Some(c) => {
                1u8.hash(&mut h);
                c.hash_state(&mut h);
            }
            None => 0u8.hash(&mut h),
        }
        self.daemon.hash_state(&mut h);
        self.runner.hash_state(&mut h);
        Some(h.finish())
    }
}

impl std::fmt::Debug for SiteHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SiteHost")
            .field("site", &self.site)
            .field("is_home", &self.coordinator.is_some())
            .finish()
    }
}

/// Builder for [`SimCluster`].
pub struct SimClusterBuilder {
    sites: usize,
    seed: u64,
    link: LinkProfile,
    cpu: CpuProfile,
    per_site_cpu: HashMap<usize, CpuProfile>,
    config: MochaConfig,
    registry: TaskRegistry,
    durable: Option<StoreConfig>,
}

impl SimClusterBuilder {
    /// Number of sites (≥ 1). Site 0 is the home site.
    #[must_use]
    pub fn sites(mut self, n: usize) -> Self {
        self.sites = n;
        self
    }

    /// RNG seed (defaults to 42).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Link profile between every pair of sites.
    #[must_use]
    pub fn link(mut self, link: LinkProfile) -> Self {
        self.link = link;
        self
    }

    /// CPU profile for every site.
    #[must_use]
    pub fn cpu(mut self, cpu: CpuProfile) -> Self {
        self.cpu = cpu;
        self
    }

    /// Overrides one site's CPU profile.
    #[must_use]
    pub fn cpu_for(mut self, site: usize, cpu: CpuProfile) -> Self {
        self.per_site_cpu.insert(site, cpu);
        self
    }

    /// Mocha configuration (protocol mode, codec, failure handling).
    #[must_use]
    pub fn config(mut self, config: MochaConfig) -> Self {
        self.config = config;
        self
    }

    /// Task registry for spawn support.
    #[must_use]
    pub fn registry(mut self, registry: TaskRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Enables per-site durability: each site journals applied replica
    /// versions to an in-memory durable device (WAL + snapshots) that
    /// survives [`SimCluster::restart_site`], so a rebooted site recovers
    /// its state and announces it instead of starting empty.
    #[must_use]
    pub fn durable(mut self, config: StoreConfig) -> Self {
        self.durable = Some(config);
        self
    }

    /// Builds the cluster.
    ///
    /// # Panics
    ///
    /// Panics if `sites == 0` or the configuration is invalid.
    pub fn build(self) -> SimCluster {
        assert!(self.sites >= 1, "a cluster needs at least one site");
        self.config.validate().expect("invalid MochaConfig");
        let mut world = World::new(self.seed);
        world.set_default_link(self.link);
        world.set_default_cpu(self.cpu);
        let registry = Arc::new(self.registry);
        let home = SiteId(0);
        let store_handles: Vec<Option<StoreHandle>> = (0..self.sites)
            .map(|_| self.durable.map(StoreHandle::mem))
            .collect();
        let mut nodes = Vec::with_capacity(self.sites);
        let membership: Vec<SiteId> = (0..self.sites as u32).map(SiteId).collect();
        for i in 0..self.sites {
            let mut host = SiteHost::new(SiteId(i as u32), home, self.config, registry.clone());
            if self.config.home.hash_directory {
                host.install_directory(&membership);
            }
            if let Some(handle) = &store_handles[i] {
                host.attach_store(handle);
            }
            let node = world.add_host(Box::new(host));
            if let Some(cpu) = self.per_site_cpu.get(&i) {
                world.set_cpu_profile(node, *cpu);
            }
            nodes.push(node);
        }
        let incarnations = vec![0; self.sites];
        let mut cluster = SimCluster {
            world,
            nodes,
            home,
            restart_config: self.config,
            registry,
            incarnations,
            store_handles,
        };
        // Let on_start events fire so hosts are initialised.
        cluster.world.run_until(SimTime::ZERO);
        cluster
    }
}

/// A complete simulated Mocha deployment: the harness for tests and
/// benchmarks. See the crate-level example.
pub struct SimCluster {
    world: World,
    nodes: Vec<NodeId>,
    home: SiteId,
    /// Configuration used for rebooted sites (same as the original build).
    restart_config: MochaConfig,
    registry: Arc<TaskRegistry>,
    /// Reboot count per site, for deterministic per-incarnation transport
    /// epochs.
    incarnations: Vec<u32>,
    /// Per-site durable devices (when built with
    /// [`SimClusterBuilder::durable`]); these outlive crashes, so a
    /// restarted site reopens the same device and recovers.
    store_handles: Vec<Option<StoreHandle>>,
}

impl std::fmt::Debug for SimCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCluster")
            .field("sites", &self.nodes.len())
            .field("now", &self.world.now())
            .finish()
    }
}

impl SimCluster {
    /// Starts building a cluster. Defaults: 2 sites, deterministic LAN,
    /// instant CPUs, basic protocol, seed 42.
    pub fn builder() -> SimClusterBuilder {
        SimClusterBuilder {
            sites: 2,
            seed: 42,
            link: profiles::lan_deterministic(),
            cpu: CpuProfile::instant(),
            per_site_cpu: HashMap::new(),
            config: MochaConfig::default(),
            registry: TaskRegistry::new(),
            durable: None,
        }
    }

    /// The home site id.
    pub fn home(&self) -> SiteId {
        self.home
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.nodes.len()
    }

    /// Direct access to the simulation world (links, crashes, metrics).
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Read access to the simulation world.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    fn host_mut(&mut self, site: usize) -> &mut SiteHost {
        let node = self.nodes[site];
        self.world.host_mut::<SiteHost>(node)
    }

    /// Adds an application thread running `script` at `site`.
    pub fn add_script(&mut self, site: usize, script: Script) -> ThreadId {
        let id = self.host_mut(site).runner_mut().add_thread(script);
        // Kick the host so the new thread starts executing.
        let node = self.nodes[site];
        self.world
            .inject_datagram(node, node, vec![HARNESS_PROTO, HARNESS_KICK]);
        id
    }

    /// Promotes `new_home` to surrogate coordinator, replaying the state
    /// log extracted from the (possibly crashed) current home site — the
    /// paper's §4 synchronization-thread recovery, with the harness
    /// standing in for stable storage.
    pub fn promote_coordinator(&mut self, old_home: usize, new_home: usize) {
        let log: Vec<(SiteId, Msg)> = {
            let host = self.host_mut(old_home);
            let coordinator = host.coordinator().expect("old home had the coordinator");
            coordinator.log().to_vec()
        };
        let mut w = ByteWriter::new();
        w.put_u8(HARNESS_PROTO);
        w.put_u8(HARNESS_PROMOTE);
        w.put_u32(log.len() as u32);
        for (from, msg) in &log {
            from.encode(&mut w);
            w.put_bytes(&msg.encode());
        }
        let node = self.nodes[new_home];
        self.world.inject_datagram(node, node, w.into_bytes());
    }

    /// Spawns `task_class` at `dest` from `origin`'s site manager.
    pub fn spawn(&mut self, origin: usize, dest: usize, task_class: &str, params: &Parameter) {
        let mut w = ByteWriter::new();
        w.put_u8(HARNESS_PROTO);
        w.put_u8(HARNESS_SPAWN);
        SiteId(dest as u32).encode(&mut w);
        w.put_str(task_class);
        w.put_bytes(&params.encode());
        let node = self.nodes[origin];
        self.world.inject_datagram(node, node, w.into_bytes());
    }

    /// Runs until no events remain. Returns the final time.
    pub fn run_until_idle(&mut self) -> SimTime {
        self.world.run_until_idle()
    }

    /// Runs for `d` of simulated time.
    pub fn run_for(&mut self, d: Duration) {
        self.world.run_for(d);
    }

    /// Partitions two sites symmetrically (both directions down).
    pub fn partition(&mut self, a: usize, b: usize) {
        let (na, nb) = (self.nodes[a], self.nodes[b]);
        self.world.network_mut().set_link_up_between(na, nb, false);
    }

    /// Heals a partition between two sites.
    pub fn heal(&mut self, a: usize, b: usize) {
        let (na, nb) = (self.nodes[a], self.nodes[b]);
        self.world.network_mut().set_link_up_between(na, nb, true);
    }

    /// Crashes a site immediately.
    pub fn crash_site(&mut self, site: usize) {
        let node = self.nodes[site];
        self.world.crash(node);
    }

    /// Reboots a crashed site with a fresh Mocha stack (daemon, runner,
    /// manager). Without durability the site comes back empty and must
    /// re-register its replicas to rejoin; with
    /// [`SimClusterBuilder::durable`] it reopens its surviving device,
    /// replays snapshot + WAL, and announces the recovered versions to
    /// the coordinator. Either way, rejoining lifts any coordinator
    /// blacklist entry from its previous incarnation.
    pub fn restart_site(&mut self, site: usize) {
        let node = self.nodes[site];
        let mut host = SiteHost::new(
            SiteId(site as u32),
            self.home,
            self.restart_config,
            self.registry.clone(),
        );
        if self.restart_config.home.hash_directory {
            let membership: Vec<SiteId> = (0..self.nodes.len() as u32).map(SiteId).collect();
            host.install_directory(&membership);
        }
        // A fresh incarnation must stamp a distinct epoch so peers detect
        // the reboot — but a deterministic one, so explorer replays stay
        // byte-identical.
        self.incarnations[site] += 1;
        host.set_transport_epoch((self.incarnations[site] << 16) | (site as u32 + 1));
        let durable = self.store_handles[site].is_some();
        if let Some(handle) = &self.store_handles[site] {
            host.attach_store(handle);
        }
        self.world.restart(node, Box::new(host));
        if durable {
            // Flush the queued recovery announcement (and any restored
            // daemon state) through the host's first pump.
            self.world
                .inject_datagram(node, node, vec![HARNESS_PROTO, HARNESS_KICK]);
        }
    }

    /// Schedules a reboot of `site` at an absolute time, for harnesses
    /// (like the schedule explorer) that cannot intervene mid-run. The
    /// incarnation epoch is computed eagerly so wire bytes stay a pure
    /// function of the schedule; if the site is not actually crashed when
    /// the closure fires (e.g. the crash was reordered away), the restart
    /// is a no-op.
    pub fn restart_site_at(&mut self, at: SimTime, site: usize) {
        let node = self.nodes[site];
        let home = self.home;
        let config = self.restart_config;
        let registry = self.registry.clone();
        self.incarnations[site] += 1;
        let epoch = (self.incarnations[site] << 16) | (site as u32 + 1);
        let handle = self.store_handles[site].clone();
        let site_count = self.nodes.len() as u32;
        self.world.schedule_at(at, move |world| {
            if !world.is_crashed(node) {
                return;
            }
            let mut host = SiteHost::new(SiteId(site as u32), home, config, registry);
            if config.home.hash_directory {
                let membership: Vec<SiteId> = (0..site_count).map(SiteId).collect();
                host.install_directory(&membership);
            }
            host.set_transport_epoch(epoch);
            let durable = handle.is_some();
            if let Some(handle) = &handle {
                host.attach_store(handle);
            }
            world.restart(node, Box::new(host));
            if durable {
                world.inject_datagram(node, node, vec![HARNESS_PROTO, HARNESS_KICK]);
            }
        });
    }

    /// The durable store handle for a site, when the cluster was built
    /// with [`SimClusterBuilder::durable`]. Tests use this to inject
    /// corruption into the backing device between crash and restart.
    pub fn store_handle(&self, site: usize) -> Option<StoreHandle> {
        self.store_handles.get(site).cloned().flatten()
    }

    /// Schedules a site crash at an absolute time.
    pub fn crash_site_at(&mut self, at: SimTime, site: usize) {
        let node = self.nodes[site];
        self.world.schedule_crash(at, node);
    }

    /// Records of one thread at one site.
    pub fn records(&mut self, site: usize, thread: ThreadId) -> Vec<Record> {
        self.host_mut(site).runner().records(thread).to_vec()
    }

    /// All records at a site.
    pub fn all_records(&mut self, site: usize) -> Vec<(ThreadId, Record)> {
        self.host_mut(site).runner().all_records()
    }

    /// Payloads observed by `Read` ops at a site.
    pub fn observed_payloads(&mut self, site: usize) -> Vec<ReplicaPayload> {
        self.host_mut(site).runner().observed()
    }

    /// Whether all threads at `site` finished.
    pub fn all_done(&mut self, site: usize) -> bool {
        self.host_mut(site).runner().all_done()
    }

    /// Failures reported by threads at `site`.
    pub fn failures(&mut self, site: usize) -> Vec<(ThreadId, String)> {
        self.host_mut(site).runner().failures()
    }

    /// A replica's current value at a site.
    pub fn replica_value(&mut self, site: usize, replica: ReplicaId) -> Option<ReplicaPayload> {
        self.host_mut(site).daemon().read(replica).ok().cloned()
    }

    /// The newest version a site's daemon holds for `lock`.
    pub fn daemon_version(&mut self, site: usize, lock: LockId) -> Version {
        self.host_mut(site).daemon().version_of(lock)
    }

    /// Daemon statistics for a site.
    pub fn daemon_stats(&mut self, site: usize) -> DaemonStats {
        self.host_mut(site).daemon().stats()
    }

    /// Coordinator statistics (home site).
    pub fn coordinator_stats(&mut self) -> CoordinatorStats {
        self.coordinator_stats_at(0)
    }

    /// Coordinator statistics at an arbitrary site (e.g. a promoted
    /// surrogate).
    pub fn coordinator_stats_at(&mut self, site: usize) -> CoordinatorStats {
        self.host_mut(site)
            .coordinator()
            .expect("site hosts a coordinator")
            .stats()
    }

    /// Coordinator statistics at a site, or `None` when it hosts no
    /// coordinator (every non-home site outside hash-directory mode).
    pub fn try_coordinator_stats_at(&mut self, site: usize) -> Option<CoordinatorStats> {
        self.host_mut(site).coordinator().map(SyncCoordinator::stats)
    }

    /// Spawn outcomes observed at a site.
    pub fn spawn_outcomes(&mut self, site: usize) -> Vec<SpawnOutcome> {
        self.host_mut(site).manager().outcomes().to_vec()
    }

    /// Installs a remote-evaluation security policy at a site.
    pub fn set_security_policy(&mut self, site: usize, policy: crate::spawn::SecurityPolicy) {
        self.host_mut(site).manager_mut().set_policy(policy);
    }

    /// Remote prints that reached a site.
    pub fn prints(&mut self, site: usize) -> Vec<String> {
        self.host_mut(site).prints().to_vec()
    }

    /// Diagnostic notes at a site.
    pub fn notes(&mut self, site: usize) -> Vec<String> {
        self.host_mut(site).notes().to_vec()
    }

    /// Snapshots the protocol state of every live site for the invariant
    /// oracle ([`crate::invariants::InvariantOracle`]). Crashed sites are
    /// omitted — their state is unobservable and their invariants moot
    /// until restart.
    pub fn cluster_view(&mut self) -> crate::invariants::ClusterView {
        let mut view = crate::invariants::ClusterView::default();
        // Directory mode hosts a coordinator everywhere by design; the
        // oracle then checks single-home *per lock* instead.
        view.multi_home_ok = self.restart_config.home.hash_directory;
        for i in 0..self.nodes.len() {
            let node = self.nodes[i];
            if self.world.is_crashed(node) {
                continue;
            }
            let host = self.world.host_mut::<SiteHost>(node);
            let site = host.site;
            view.sites.push(crate::invariants::SiteView {
                site,
                versions: host.daemon().versions(),
                holds: host.runner().active_holds(),
                hosts_coordinator: host.coordinator().is_some(),
            });
            if let Some(c) = host.coordinator() {
                view.coordinators.push(crate::invariants::CoordinatorView {
                    site,
                    locks: c.lock_views(),
                    locks_broken: c.stats().locks_broken,
                });
            }
        }
        view
    }

    /// Finds the duration between two record labels for a thread,
    /// panicking with context if either is missing. Convenience for
    /// benchmarks.
    pub fn latency_between(
        &mut self,
        site: usize,
        thread: ThreadId,
        from_label: &str,
        to_label: &str,
    ) -> Duration {
        let records = self.records(site, thread);
        let from = records
            .iter()
            .find(|r| r.label == from_label)
            .unwrap_or_else(|| panic!("record {from_label:?} missing: {records:?}"));
        let to = records
            .iter()
            .find(|r| r.label == to_label)
            .unwrap_or_else(|| panic!("record {to_label:?} missing: {records:?}"));
        to.at - from.at
    }
}

// Re-export commonly used protocol message kinds for harness code.
pub use mocha_net::ports;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::Script;
    use crate::replica::replica_id;

    const L: LockId = LockId(1);

    #[test]
    fn two_site_write_then_read_transfers_state() {
        let mut cluster = SimCluster::builder().sites(2).build();
        let idx = replica_id("idx");
        cluster.add_script(
            0,
            Script::new()
                .register(L, &["idx"])
                .lock(L)
                .write(idx, ReplicaPayload::I32s(vec![7]))
                .unlock_dirty(L),
        );
        cluster.add_script(
            1,
            Script::new()
                .register(L, &["idx"])
                .sleep(Duration::from_millis(100))
                .lock(L)
                .read(idx)
                .unlock(L),
        );
        cluster.run_until_idle();
        assert!(cluster.all_done(0), "site0: {:?}", cluster.failures(0));
        assert!(cluster.all_done(1), "site1: {:?}", cluster.failures(1));
        assert_eq!(
            cluster.observed_payloads(1),
            vec![ReplicaPayload::I32s(vec![7])]
        );
        assert_eq!(cluster.coordinator_stats().grants, 2);
        assert_eq!(cluster.coordinator_stats().grants_with_transfer, 1);
    }

    #[test]
    fn home_site_loopback_locking_works() {
        let mut cluster = SimCluster::builder().sites(1).build();
        let idx = replica_id("idx");
        cluster.add_script(
            0,
            Script::new()
                .register(L, &["idx"])
                .lock(L)
                .write(idx, ReplicaPayload::I32s(vec![1]))
                .unlock_dirty(L)
                .lock(L)
                .read(idx)
                .unlock(L),
        );
        cluster.run_until_idle();
        assert!(cluster.all_done(0), "{:?}", cluster.failures(0));
        assert_eq!(
            cluster.observed_payloads(0),
            vec![ReplicaPayload::I32s(vec![1])]
        );
    }

    #[test]
    fn alternating_ownership_ping_pongs_data() {
        let mut cluster = SimCluster::builder().sites(2).build();
        let idx = replica_id("counter");
        // Site 0 writes 1; site 1 reads and writes 2; site 0 reads.
        cluster.add_script(
            0,
            Script::new()
                .register(L, &["counter"])
                .lock(L)
                .write(idx, ReplicaPayload::I32s(vec![1]))
                .unlock_dirty(L)
                .sleep(Duration::from_millis(200))
                .lock(L)
                .read(idx)
                .unlock(L),
        );
        cluster.add_script(
            1,
            Script::new()
                .register(L, &["counter"])
                .sleep(Duration::from_millis(100))
                .lock(L)
                .read(idx)
                .write(idx, ReplicaPayload::I32s(vec![2]))
                .unlock_dirty(L),
        );
        cluster.run_until_idle();
        assert!(cluster.all_done(0) && cluster.all_done(1));
        assert_eq!(
            cluster.observed_payloads(1),
            vec![ReplicaPayload::I32s(vec![1])],
            "site 1 sees site 0's write"
        );
        assert_eq!(
            cluster.observed_payloads(0),
            vec![ReplicaPayload::I32s(vec![2])],
            "site 0 sees site 1's write"
        );
    }

    #[test]
    fn lock_latency_is_measurable() {
        let mut cluster = SimCluster::builder()
            .sites(2)
            .cpu(profiles::ultra1())
            .build();
        cluster.add_script(0, Script::new().register(L, &["x"]));
        let th = cluster.add_script(
            1,
            Script::new()
                .register(L, &["x"])
                .sleep(Duration::from_millis(50))
                .lock(L)
                .unlock(L),
        );
        cluster.run_until_idle();
        let latency = cluster.latency_between(1, th, "lock_request:lock1", "lock_acquired:lock1");
        assert!(latency > Duration::ZERO);
        assert!(latency < Duration::from_millis(100), "latency {latency:?}");
    }
}
