//! Runtime-level counters for the real-concurrency runtimes.
//!
//! The simulator accumulates [`mocha_sim::Metrics`] for every run; the
//! thread and socket runtimes mirror the useful subset here so tests and
//! deployments can make the same assertions ("nothing was lost", "timers
//! actually fired") against real execution. Counters are lock-free
//! atomics shared by every site loop of a runtime; read a consistent-ish
//! snapshot with `metrics()` on the runtime.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Shared mutable counters (one instance per runtime, updated by all
/// site loops).
#[derive(Debug, Default)]
pub(crate) struct RuntimeCounters {
    datagrams_sent: AtomicU64,
    datagrams_delivered: AtomicU64,
    datagrams_lost: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_sent: AtomicU64,
    msgs_delivered: AtomicU64,
    sends_failed: AtomicU64,
    timers_fired: AtomicU64,
    retransmits: AtomicU64,
    fast_retransmits: AtomicU64,
    rto_backoffs: AtomicU64,
    /// Gauge, not a counter: congestion window of the most recently
    /// active peer, in fragments.
    cwnd: AtomicU64,
    delta_pushes: AtomicU64,
    delta_bytes_saved: AtomicU64,
    delta_nacks: AtomicU64,
    /// Gauge: push targets awaiting acknowledgement across this
    /// runtime's daemons at the last sample point.
    push_window_inflight: AtomicU64,
    socket_errors: AtomicU64,
    migrations: AtomicU64,
    stale_home_redirects: AtomicU64,
}

impl RuntimeCounters {
    pub(crate) fn inc_datagrams_sent(&self, bytes: u64) {
        self.datagrams_sent.fetch_add(1, Relaxed);
        self.bytes_sent.fetch_add(bytes, Relaxed);
    }

    pub(crate) fn inc_datagrams_delivered(&self) {
        self.datagrams_delivered.fetch_add(1, Relaxed);
    }

    pub(crate) fn inc_datagrams_lost(&self) {
        self.datagrams_lost.fetch_add(1, Relaxed);
    }

    pub(crate) fn inc_msgs_sent(&self) {
        self.msgs_sent.fetch_add(1, Relaxed);
    }

    pub(crate) fn inc_msgs_delivered(&self) {
        self.msgs_delivered.fetch_add(1, Relaxed);
    }

    pub(crate) fn inc_sends_failed(&self) {
        self.sends_failed.fetch_add(1, Relaxed);
    }

    pub(crate) fn inc_timers_fired(&self) {
        self.timers_fired.fetch_add(1, Relaxed);
    }

    pub(crate) fn add_retransmits(&self, n: u64) {
        if n > 0 {
            self.retransmits.fetch_add(n, Relaxed);
        }
    }

    pub(crate) fn add_fast_retransmits(&self, n: u64) {
        if n > 0 {
            self.fast_retransmits.fetch_add(n, Relaxed);
        }
    }

    pub(crate) fn add_rto_backoffs(&self, n: u64) {
        if n > 0 {
            self.rto_backoffs.fetch_add(n, Relaxed);
        }
    }

    pub(crate) fn set_cwnd(&self, v: u64) {
        self.cwnd.store(v, Relaxed);
    }

    pub(crate) fn add_delta_pushes(&self, n: u64) {
        if n > 0 {
            self.delta_pushes.fetch_add(n, Relaxed);
        }
    }

    pub(crate) fn add_delta_bytes_saved(&self, n: u64) {
        if n > 0 {
            self.delta_bytes_saved.fetch_add(n, Relaxed);
        }
    }

    pub(crate) fn add_delta_nacks(&self, n: u64) {
        if n > 0 {
            self.delta_nacks.fetch_add(n, Relaxed);
        }
    }

    pub(crate) fn set_push_window_inflight(&self, v: u64) {
        self.push_window_inflight.store(v, Relaxed);
    }

    pub(crate) fn inc_socket_errors(&self) {
        self.socket_errors.fetch_add(1, Relaxed);
    }

    pub(crate) fn add_migrations(&self, n: u64) {
        if n > 0 {
            self.migrations.fetch_add(n, Relaxed);
        }
    }

    pub(crate) fn add_stale_home_redirects(&self, n: u64) {
        if n > 0 {
            self.stale_home_redirects.fetch_add(n, Relaxed);
        }
    }

    pub(crate) fn snapshot(&self) -> RuntimeMetrics {
        RuntimeMetrics {
            datagrams_sent: self.datagrams_sent.load(Relaxed),
            datagrams_delivered: self.datagrams_delivered.load(Relaxed),
            datagrams_lost: self.datagrams_lost.load(Relaxed),
            bytes_sent: self.bytes_sent.load(Relaxed),
            msgs_sent: self.msgs_sent.load(Relaxed),
            msgs_delivered: self.msgs_delivered.load(Relaxed),
            sends_failed: self.sends_failed.load(Relaxed),
            timers_fired: self.timers_fired.load(Relaxed),
            retransmits: self.retransmits.load(Relaxed),
            fast_retransmits: self.fast_retransmits.load(Relaxed),
            rto_backoffs: self.rto_backoffs.load(Relaxed),
            cwnd: self.cwnd.load(Relaxed),
            delta_pushes: self.delta_pushes.load(Relaxed),
            delta_bytes_saved: self.delta_bytes_saved.load(Relaxed),
            delta_nacks: self.delta_nacks.load(Relaxed),
            push_window_inflight: self.push_window_inflight.load(Relaxed),
            socket_errors: self.socket_errors.load(Relaxed),
            migrations: self.migrations.load(Relaxed),
            stale_home_redirects: self.stale_home_redirects.load(Relaxed),
        }
    }
}

/// A point-in-time snapshot of a runtime's counters, mirroring
/// [`mocha_sim::Metrics`] for real execution.
///
/// *Datagrams* are transport-level units: one routed envelope in the
/// thread runtime, one UDP datagram (including MochaNet retransmissions
/// and fragments) in the socket runtime. *Messages* are protocol-level
/// [`Msg`](mocha_wire::Msg) sends between sites; loopback delivery on
/// the same site is not counted, matching the simulator's accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeMetrics {
    /// Datagrams handed to the transport.
    pub datagrams_sent: u64,
    /// Datagrams delivered to a site's event loop.
    pub datagrams_delivered: u64,
    /// Datagrams known to be dropped (dead in-process peer, OS send
    /// rejection, unknown address). Wide-area losses are invisible here
    /// and surface as retransmissions / failed sends instead.
    pub datagrams_lost: u64,
    /// Total payload bytes handed to the transport.
    pub bytes_sent: u64,
    /// Protocol messages sent to remote sites.
    pub msgs_sent: u64,
    /// Protocol messages delivered from remote sites.
    pub msgs_delivered: u64,
    /// Sends whose failure handling ran (the paper's timeout detections).
    pub sends_failed: u64,
    /// Wall-clock timers that fired and were dispatched.
    pub timers_fired: u64,
    /// MochaNet fragments retransmitted after an RTO expiry.
    pub retransmits: u64,
    /// MochaNet fragments retransmitted via the duplicate-ack fast path.
    pub fast_retransmits: u64,
    /// RTO expiries that retransmitted and backed the timer off.
    pub rto_backoffs: u64,
    /// Congestion window (fragments) of the most recently active peer —
    /// a gauge, not a counter.
    pub cwnd: u64,
    /// Pushes and transfers sent as edit scripts instead of full
    /// payloads (delta dissemination enabled and applicable).
    pub delta_pushes: u64,
    /// Payload bytes avoided by delta sends (full size minus script
    /// size, summed).
    pub delta_bytes_saved: u64,
    /// Delta sends the receiver refused, each answered with a full
    /// resend.
    pub delta_nacks: u64,
    /// Push targets awaiting acknowledgement at the last sample point —
    /// a gauge, not a counter (> 1 only with the pipelined window).
    pub push_window_inflight: u64,
    /// Transient OS socket errors absorbed by the runtime's
    /// exponential-backoff recovery (each one paused the affected shard
    /// loop briefly; none are fatal).
    pub socket_errors: u64,
    /// Completed dynamic home migrations (directory mode): locks whose
    /// coordinator moved to the site dominating their acquire traffic.
    pub migrations: u64,
    /// `StaleHome` redirects served by this runtime's coordinators —
    /// how often a site addressed a home the lock had moved away from.
    pub stale_home_redirects: u64,
}

impl RuntimeMetrics {
    /// Fraction of sent datagrams known lost, or 0 if nothing was sent.
    pub fn loss_rate(&self) -> f64 {
        if self.datagrams_sent == 0 {
            0.0
        } else {
            self.datagrams_lost as f64 / self.datagrams_sent as f64
        }
    }
}

impl std::fmt::Display for RuntimeMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "datagrams sent={} delivered={} lost={} ({} bytes); \
             msgs sent={} delivered={} failed={}; timers fired={}; \
             retx={} fast={} backoffs={} cwnd={}; \
             delta pushes={} saved={} nacks={} inflight={}; \
             sock errs={}; migrations={} stale homes={}",
            self.datagrams_sent,
            self.datagrams_delivered,
            self.datagrams_lost,
            self.bytes_sent,
            self.msgs_sent,
            self.msgs_delivered,
            self.sends_failed,
            self.timers_fired,
            self.retransmits,
            self.fast_retransmits,
            self.rto_backoffs,
            self.cwnd,
            self.delta_pushes,
            self.delta_bytes_saved,
            self.delta_nacks,
            self.push_window_inflight,
            self.socket_errors,
            self.migrations,
            self.stale_home_redirects,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot_roundtrip() {
        let c = RuntimeCounters::default();
        c.inc_datagrams_sent(100);
        c.inc_datagrams_sent(50);
        c.inc_datagrams_delivered();
        c.inc_datagrams_lost();
        c.inc_msgs_sent();
        c.inc_msgs_delivered();
        c.inc_sends_failed();
        c.inc_timers_fired();
        c.add_retransmits(3);
        c.add_fast_retransmits(0); // no-op
        c.add_fast_retransmits(2);
        c.add_rto_backoffs(1);
        c.set_cwnd(16);
        c.set_cwnd(8); // gauge: last write wins
        c.add_delta_pushes(2);
        c.add_delta_bytes_saved(4096);
        c.add_delta_nacks(0); // no-op
        c.add_delta_nacks(1);
        c.set_push_window_inflight(3);
        c.set_push_window_inflight(2); // gauge: last write wins
        c.inc_socket_errors();
        c.inc_socket_errors();
        c.add_migrations(0); // no-op
        c.add_migrations(2);
        c.add_stale_home_redirects(3);
        let m = c.snapshot();
        assert_eq!(m.datagrams_sent, 2);
        assert_eq!(m.bytes_sent, 150);
        assert_eq!(m.datagrams_delivered, 1);
        assert_eq!(m.datagrams_lost, 1);
        assert_eq!(m.msgs_sent, 1);
        assert_eq!(m.msgs_delivered, 1);
        assert_eq!(m.sends_failed, 1);
        assert_eq!(m.timers_fired, 1);
        assert_eq!(m.retransmits, 3);
        assert_eq!(m.fast_retransmits, 2);
        assert_eq!(m.rto_backoffs, 1);
        assert_eq!(m.cwnd, 8);
        assert_eq!(m.delta_pushes, 2);
        assert_eq!(m.delta_bytes_saved, 4096);
        assert_eq!(m.delta_nacks, 1);
        assert_eq!(m.push_window_inflight, 2);
        assert_eq!(m.socket_errors, 2);
        assert_eq!(m.migrations, 2);
        assert_eq!(m.stale_home_redirects, 3);
        assert!((m.loss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_is_compact_single_line() {
        let s = RuntimeMetrics::default().to_string();
        assert!(!s.contains('\n'));
        assert!(s.contains("datagrams"));
    }
}
