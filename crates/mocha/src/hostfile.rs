//! Host files and spawn placement (paper §2).
//!
//! "When a new instance of the Mocha object is created, a hostfile is read
//! which provides a list of potential sites at which remote threads may be
//! spawned. ... Other spawn methods are available which allow the
//! application to specify the exact host in the host file on which a
//! remote thread should execute."
//!
//! A [`HostFile`] lists candidate sites (one per line, `#` comments
//! allowed) and hands them out round-robin for placement-agnostic spawns.
//!
//! For real-network deployments (the socket runtime and the `mochad`
//! daemon) an entry may also carry the site's socket address:
//!
//! ```text
//! # site            address (UDP; and TCP bulk leg in hybrid mode)
//! site0=127.0.0.1:7000
//! site1=10.0.0.2:7000
//! 2=node2.cluster:7000
//! site3                  # address-less entries still parse (sim/thread use)
//! ```

use std::fmt;
use std::str::FromStr;

use mocha_wire::SiteId;

/// Error parsing a host file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseHostFileError {
    /// 1-based line number of the offending entry.
    pub line: usize,
    /// The unparsable text.
    pub entry: String,
}

impl fmt::Display for ParseHostFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid host entry {:?} on line {}",
            self.entry, self.line
        )
    }
}

impl std::error::Error for ParseHostFileError {}

/// An ordered list of candidate sites for remote evaluation.
///
/// ```
/// use mocha::hostfile::HostFile;
/// use mocha_wire::SiteId;
///
/// let mut hosts: HostFile = "site1\nsite2\n3\n".parse()?;
/// assert_eq!(hosts.len(), 3);
/// assert_eq!(hosts.next_site(), SiteId(1));
/// assert_eq!(hosts.next_site(), SiteId(2));
/// assert_eq!(hosts.next_site(), SiteId(3));
/// assert_eq!(hosts.next_site(), SiteId(1)); // round-robin wraps
/// # Ok::<(), mocha::hostfile::ParseHostFileError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostFile {
    sites: Vec<SiteId>,
    /// Optional `ip:port` (or `host:port`) per site, parallel to `sites`.
    addrs: Vec<Option<String>>,
    cursor: usize,
}

impl HostFile {
    /// Builds a host file from explicit sites (no addresses).
    ///
    /// # Panics
    ///
    /// Panics if `sites` is empty.
    pub fn new(sites: Vec<SiteId>) -> HostFile {
        assert!(!sites.is_empty(), "a host file needs at least one site");
        let addrs = vec![None; sites.len()];
        HostFile {
            sites,
            addrs,
            cursor: 0,
        }
    }

    /// A host file naming every non-home site of an `n`-site deployment
    /// (the common "spawn anywhere but here" setup).
    pub fn all_remote(n_sites: usize) -> HostFile {
        assert!(n_sites >= 2, "need at least one remote site");
        HostFile::new((1..n_sites as u32).map(SiteId).collect())
    }

    /// Number of candidate sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the list is empty (never true: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The candidate sites in file order.
    pub fn sites(&self) -> &[SiteId] {
        &self.sites
    }

    /// The site at `index` in the file (the paper's "specify the exact
    /// host in the host file").
    pub fn site_at(&self, index: usize) -> Option<SiteId> {
        self.sites.get(index).copied()
    }

    /// Next placement, round-robin.
    pub fn next_site(&mut self) -> SiteId {
        let site = self.sites[self.cursor % self.sites.len()];
        self.cursor += 1;
        site
    }

    /// The socket address string declared for `site` (the `name=ip:port`
    /// form), if any. Returns the *first* entry's address when a site is
    /// listed more than once.
    pub fn address_of(&self, site: SiteId) -> Option<&str> {
        self.sites
            .iter()
            .position(|s| *s == site)
            .and_then(|i| self.addrs[i].as_deref())
    }

    /// True when every entry carries an address — i.e. the file can drive
    /// a real-network deployment.
    pub fn fully_addressed(&self) -> bool {
        self.addrs.iter().all(Option::is_some)
    }
}

impl FromStr for HostFile {
    type Err = ParseHostFileError;

    fn from_str(text: &str) -> Result<HostFile, ParseHostFileError> {
        let mut sites = Vec::new();
        let mut addrs = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            // Allow trailing comments so addressed entries stay annotatable.
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = || ParseHostFileError {
                line: i + 1,
                entry: line.to_string(),
            };
            let (name, addr) = match line.split_once('=') {
                Some((name, addr)) => {
                    let addr = addr.trim();
                    // An address must at least separate host from port.
                    if addr.is_empty() || !addr.contains(':') {
                        return Err(err());
                    }
                    (name.trim(), Some(addr.to_string()))
                }
                None => (line, None),
            };
            let digits = name.strip_prefix("site").unwrap_or(name);
            match digits.parse::<u32>() {
                Ok(n) => {
                    sites.push(SiteId(n));
                    addrs.push(addr);
                }
                Err(_) => return Err(err()),
            }
        }
        if sites.is_empty() {
            return Err(ParseHostFileError {
                line: 0,
                entry: "<no hosts>".to_string(),
            });
        }
        Ok(HostFile {
            sites,
            addrs,
            cursor: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_names_numbers_comments_and_blanks() {
        let hf: HostFile = "# comment\n\nsite4\n7\n site2 \n".parse().unwrap();
        assert_eq!(hf.sites(), &[SiteId(4), SiteId(7), SiteId(2)]);
    }

    #[test]
    fn bad_entries_report_line_numbers() {
        let err = "site1\nnot-a-host\n".parse::<HostFile>().unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.entry, "not-a-host");
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn empty_file_is_an_error() {
        assert!("# nothing\n".parse::<HostFile>().is_err());
    }

    #[test]
    fn round_robin_wraps() {
        let mut hf = HostFile::new(vec![SiteId(1), SiteId(2)]);
        assert_eq!(
            [hf.next_site(), hf.next_site(), hf.next_site()],
            [SiteId(1), SiteId(2), SiteId(1)]
        );
    }

    #[test]
    fn all_remote_skips_home() {
        let hf = HostFile::all_remote(4);
        assert_eq!(hf.sites(), &[SiteId(1), SiteId(2), SiteId(3)]);
        assert_eq!(hf.site_at(1), Some(SiteId(2)));
        assert_eq!(hf.site_at(9), None);
        assert!(!hf.is_empty());
        assert_eq!(hf.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn empty_explicit_list_panics() {
        let _ = HostFile::new(vec![]);
    }

    #[test]
    fn addressed_entries_parse_alongside_bare_ones() {
        let hf: HostFile = "site0=127.0.0.1:7000\n1 = 10.0.0.2:7000 # annotated\nsite2\n"
            .parse()
            .unwrap();
        assert_eq!(hf.sites(), &[SiteId(0), SiteId(1), SiteId(2)]);
        assert_eq!(hf.address_of(SiteId(0)), Some("127.0.0.1:7000"));
        assert_eq!(hf.address_of(SiteId(1)), Some("10.0.0.2:7000"));
        assert_eq!(hf.address_of(SiteId(2)), None);
        assert_eq!(hf.address_of(SiteId(9)), None);
        assert!(!hf.fully_addressed());

        let full: HostFile = "site0=127.0.0.1:7000\nsite1=node1:7000\n".parse().unwrap();
        assert!(full.fully_addressed());
    }

    #[test]
    fn bad_addresses_report_line_numbers() {
        // Missing port separator.
        let err = "site0=127.0.0.1:7000\nsite1=10.0.0.2\n"
            .parse::<HostFile>()
            .unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.entry.contains("10.0.0.2"));

        // Empty address.
        let err = "site1=\n".parse::<HostFile>().unwrap_err();
        assert_eq!(err.line, 1);

        // Bad site name with an address attached.
        let err = "host-one=1.2.3.4:5\n".parse::<HostFile>().unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn explicit_constructors_have_no_addresses() {
        let hf = HostFile::all_remote(3);
        assert_eq!(hf.address_of(SiteId(1)), None);
        assert!(!hf.fully_addressed());
    }
}
