//! Application threads: the lock()/unlock() client side (paper §3
//! Figure 5) driven by per-thread scripts.
//!
//! In the simulator, "application code" is a [`Script`]: a sequence of
//! [`Op`]s (acquire, write, release, compute, sleep…) executed by an
//! [`AppRunner`]-managed thread state machine. The runner implements the
//! client half of the consistency protocol:
//!
//! * **local queuing** — if another local thread holds or awaits a lock,
//!   the caller waits locally first (Figure 5's leading `wait()`), and a
//!   local hand-off still goes through the coordinator ("a local transfer
//!   is not permitted to insure ... fairness");
//! * **grant handling** — a `GRANT` carries the version and a flag; with
//!   `NEEDNEWVERSION` the thread blocks until the local daemon applies the
//!   incoming replica data;
//! * **release** — computes the new version, triggers the daemon's
//!   push-based dissemination when `UR > 1`, and reports the disseminated
//!   set to the coordinator.
//!
//! Every state transition is timestamped into [`Record`]s, which is what
//! the benchmark harness mines for latencies.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Duration;

use mocha_net::{ports, MsgClass};
use mocha_sim::SimTime;
use mocha_wire::message::{LockMode, VersionFlag};
use mocha_wire::{LockId, Msg, ReplicaId, ReplicaPayload, SiteId, ThreadId, Version};

use crate::cmd::{timer_ns, CmdSink, SendTag, Signal};

/// Timer-token flag (within the APP namespace) distinguishing acquire
/// retries from sleep expiries.
const RETRY_FLAG: u64 = 1 << 32;

/// How long a stranded thread waits before re-trying its acquire against
/// the (possibly healed or relocated) home site.
const HOME_RETRY: Duration = Duration::from_secs(2);

/// How long a granted thread waits for its replica data before asking the
/// coordinator again. Deliberately far beyond any legitimate transfer
/// time so the retry never interrupts (and needlessly duplicates) a slow
/// large transfer that is actually progressing.
const DATA_RETRY: Duration = Duration::from_secs(20);
use crate::config::AvailabilityConfig;
use crate::daemon::SiteDaemon;
use crate::replica::ReplicaSpec;

/// The reserved lock id for unguarded (cached, consistency-free) replicas
/// — the paper's image replicas "not associated with a ReplicaLock".
pub const UNGUARDED: LockId = LockId(0);

/// One scripted application operation.
#[derive(Debug, Clone)]
pub enum Op {
    /// Create/attach shared replicas guarded by `lock` and register them.
    Register {
        /// The guarding lock ([`UNGUARDED`] for consistency-free caching).
        lock: LockId,
        /// Replica declarations.
        specs: Vec<ReplicaSpec>,
    },
    /// Configure the availability (UR) of a lock's replica set.
    SetAvailability {
        /// The lock.
        lock: LockId,
        /// The availability configuration.
        avail: AvailabilityConfig,
    },
    /// Acquire a lock (blocks until granted and consistent).
    Lock {
        /// The lock.
        lock: LockId,
        /// Expected hold time reported to the coordinator (0 = default).
        lease_ms: u32,
        /// Exclusive or shared (read-only) access.
        mode: LockMode,
    },
    /// Release a lock.
    Unlock {
        /// The lock.
        lock: LockId,
        /// Whether replicas were modified (advances the version).
        dirty: bool,
    },
    /// Overwrite a replica's value.
    Write {
        /// Target replica.
        replica: ReplicaId,
        /// New value.
        payload: ReplicaPayload,
    },
    /// Read a replica's value into the thread's observation log.
    Read {
        /// Source replica.
        replica: ReplicaId,
    },
    /// Publish an unsynchronized cached replica's local value to all
    /// members (no lock; last-writer-wins; §7 future work).
    Publish {
        /// The cached replica.
        replica: ReplicaId,
    },
    /// Busy computation for the given duration.
    Compute(Duration),
    /// Idle sleep for the given duration.
    Sleep(Duration),
    /// Record a labelled timestamp.
    Mark(String),
}

/// A fluent builder for thread scripts.
///
/// ```
/// use mocha::app::Script;
/// use mocha_wire::LockId;
/// use std::time::Duration;
///
/// let script = Script::new()
///     .register(LockId(1), &["sharedIndex"])
///     .lock(LockId(1))
///     .mark("critical-section")
///     .unlock(LockId(1))
///     .sleep(Duration::from_millis(10));
/// assert_eq!(script.len(), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Script {
    ops: Vec<Op>,
}

impl Script {
    /// An empty script.
    pub fn new() -> Script {
        Script::default()
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the script has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Registers named replicas (empty initial payloads) under `lock`.
    #[must_use]
    pub fn register(mut self, lock: LockId, names: &[&str]) -> Script {
        let specs = names
            .iter()
            .map(|n| ReplicaSpec::new(*n, ReplicaPayload::empty()))
            .collect();
        self.ops.push(Op::Register { lock, specs });
        self
    }

    /// Registers replicas with explicit initial payloads under `lock`.
    #[must_use]
    pub fn register_specs(mut self, lock: LockId, specs: Vec<ReplicaSpec>) -> Script {
        self.ops.push(Op::Register { lock, specs });
        self
    }

    /// Sets the availability configuration for `lock`.
    #[must_use]
    pub fn set_availability(mut self, lock: LockId, avail: AvailabilityConfig) -> Script {
        self.ops.push(Op::SetAvailability { lock, avail });
        self
    }

    /// Acquires `lock` exclusively with the default lease.
    #[must_use]
    pub fn lock(mut self, lock: LockId) -> Script {
        self.ops.push(Op::Lock {
            lock,
            lease_ms: 0,
            mode: LockMode::Exclusive,
        });
        self
    }

    /// Acquires `lock` in shared (read-only) mode: concurrent shared
    /// holders at different sites are allowed.
    #[must_use]
    pub fn lock_shared(mut self, lock: LockId) -> Script {
        self.ops.push(Op::Lock {
            lock,
            lease_ms: 0,
            mode: LockMode::Shared,
        });
        self
    }

    /// Acquires `lock` exclusively, declaring an expected hold time.
    #[must_use]
    pub fn lock_with_lease(mut self, lock: LockId, lease: Duration) -> Script {
        self.ops.push(Op::Lock {
            lock,
            lease_ms: u32::try_from(lease.as_millis()).unwrap_or(u32::MAX),
            mode: LockMode::Exclusive,
        });
        self
    }

    /// Releases `lock` without having written (version unchanged).
    #[must_use]
    pub fn unlock(mut self, lock: LockId) -> Script {
        self.ops.push(Op::Unlock { lock, dirty: false });
        self
    }

    /// Releases `lock` after writing (version advances, dissemination
    /// runs).
    #[must_use]
    pub fn unlock_dirty(mut self, lock: LockId) -> Script {
        self.ops.push(Op::Unlock { lock, dirty: true });
        self
    }

    /// Writes `payload` into `replica`.
    #[must_use]
    pub fn write(mut self, replica: ReplicaId, payload: ReplicaPayload) -> Script {
        self.ops.push(Op::Write { replica, payload });
        self
    }

    /// Writes a byte payload of the given size (benchmark workloads).
    #[must_use]
    pub fn write_bytes(self, replica: ReplicaId, size: usize) -> Script {
        self.write(replica, ReplicaPayload::Bytes(vec![0xAB; size]))
    }

    /// Reads `replica` into the observation log.
    #[must_use]
    pub fn read(mut self, replica: ReplicaId) -> Script {
        self.ops.push(Op::Read { replica });
        self
    }

    /// Publishes an unsynchronized cached replica (no lock required).
    #[must_use]
    pub fn publish(mut self, replica: ReplicaId) -> Script {
        self.ops.push(Op::Publish { replica });
        self
    }

    /// Computes (busy CPU) for `d`.
    #[must_use]
    pub fn compute(mut self, d: Duration) -> Script {
        self.ops.push(Op::Compute(d));
        self
    }

    /// Sleeps (idle) for `d`.
    #[must_use]
    pub fn sleep(mut self, d: Duration) -> Script {
        self.ops.push(Op::Sleep(d));
        self
    }

    /// Records a labelled timestamp.
    #[must_use]
    pub fn mark(mut self, label: impl Into<String>) -> Script {
        self.ops.push(Op::Mark(label.into()));
        self
    }

    /// Appends `body` `n` times.
    #[must_use]
    pub fn repeat(mut self, n: usize, body: Script) -> Script {
        for _ in 0..n {
            self.ops.extend(body.ops.iter().cloned());
        }
        self
    }

    /// Appends another script.
    #[must_use]
    pub fn then(mut self, other: Script) -> Script {
        self.ops.extend(other.ops);
        self
    }
}

/// A timestamped event in a thread's life.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Event label, e.g. `"lock_granted:lock1"`.
    pub label: String,
    /// When it happened.
    pub at: SimTime,
}

#[derive(Debug, Clone, PartialEq)]
enum TState {
    Ready,
    /// Waiting for a local thread to release the lock.
    WaitLocal(LockId),
    /// AcquireLock sent; awaiting GRANT.
    WaitGrant(LockId),
    /// GRANT said NEEDNEWVERSION; awaiting replica data.
    WaitData {
        lock: LockId,
        need: Version,
    },
    /// The home site stopped answering; waiting for a surrogate
    /// coordinator to announce itself.
    WaitHome(LockId),
    /// Dissemination in progress; the release message goes out when it
    /// completes (with the *acknowledged* target set, so the
    /// coordinator's up-to-date bookkeeping is never optimistic).
    WaitPush {
        lock: LockId,
        new_version: Version,
    },
    Sleeping,
    Done,
    /// Stopped after an unrecoverable error (home unreachable).
    Failed(String),
}

#[derive(Debug)]
struct AppThread {
    id: ThreadId,
    ops: Vec<Op>,
    pc: usize,
    state: TState,
    granted: HashMap<LockId, (Version, LockMode)>,
    records: Vec<Record>,
    observed: Vec<ReplicaPayload>,
}

#[derive(Debug, Default)]
struct LocalLock {
    holder: Option<usize>,
    waiters: VecDeque<usize>,
}

/// Manages all scripted application threads at one site.
#[derive(Debug)]
pub struct AppRunner {
    site: SiteId,
    home: SiteId,
    threads: Vec<AppThread>,
    avail: HashMap<LockId, AvailabilityConfig>,
    local_locks: HashMap<LockId, LocalLock>,
    /// Locks revoked by the coordinator while held here.
    revoked: HashSet<LockId>,
    /// Mode of the outstanding acquire per lock.
    pending_mode: HashMap<LockId, LockMode>,
}

impl AppRunner {
    /// Creates a runner for `site` whose coordinator lives at `home`.
    pub fn new(site: SiteId, home: SiteId) -> AppRunner {
        AppRunner {
            site,
            home,
            threads: Vec::new(),
            avail: HashMap::new(),
            local_locks: HashMap::new(),
            revoked: HashSet::new(),
            pending_mode: HashMap::new(),
        }
    }

    /// Adds a thread executing `script`; it becomes runnable immediately.
    pub fn add_thread(&mut self, script: Script) -> ThreadId {
        let id = ThreadId(self.threads.len() as u32);
        self.threads.push(AppThread {
            id,
            ops: script.ops,
            pc: 0,
            state: TState::Ready,
            granted: HashMap::new(),
            records: Vec::new(),
            observed: Vec::new(),
        });
        id
    }

    /// All records of a thread, in order.
    pub fn records(&self, thread: ThreadId) -> &[Record] {
        &self.threads[thread.as_raw() as usize].records
    }

    /// Records across all threads at this site, in thread order.
    pub fn all_records(&self) -> Vec<(ThreadId, Record)> {
        self.threads
            .iter()
            .flat_map(|t| t.records.iter().cloned().map(move |r| (t.id, r)))
            .collect()
    }

    /// Payloads observed by `Read` ops, across all threads in order.
    pub fn observed(&self) -> Vec<ReplicaPayload> {
        self.threads
            .iter()
            .flat_map(|t| t.observed.iter().cloned())
            .collect()
    }

    /// Whether every thread has finished (successfully or not).
    pub fn all_done(&self) -> bool {
        self.threads
            .iter()
            .all(|t| matches!(t.state, TState::Done | TState::Failed(_)))
    }

    /// Error messages of failed threads.
    pub fn failures(&self) -> Vec<(ThreadId, String)> {
        self.threads
            .iter()
            .filter_map(|t| match &t.state {
                TState::Failed(e) => Some((t.id, e.clone())),
                _ => None,
            })
            .collect()
    }

    /// Locks this site's threads currently believe they hold, for the
    /// invariant oracle. Excludes revoked locks (the coordinator has
    /// broken them; the thread just hasn't released yet) and grants still
    /// waiting on replica data (the grant is provisional until the data
    /// arrives). Sorted by (lock, mode) for determinism.
    pub fn active_holds(&self) -> Vec<(LockId, LockMode)> {
        let mut out: Vec<(LockId, LockMode)> = Vec::new();
        for t in &self.threads {
            for (&lock, &(_, mode)) in &t.granted {
                if self.revoked.contains(&lock) {
                    continue;
                }
                if matches!(t.state, TState::WaitData { lock: l, .. } if l == lock) {
                    continue;
                }
                out.push((lock, mode));
            }
        }
        out.sort();
        out
    }

    /// Locks revoked by the coordinator but not yet released locally,
    /// sorted for determinism.
    pub fn revoked_locks(&self) -> Vec<LockId> {
        let mut out: Vec<LockId> = self.revoked.iter().copied().collect();
        out.sort();
        out
    }

    /// Feeds the protocol-relevant runner state into `h`, for the schedule
    /// explorer's state fingerprint.
    pub fn hash_state(&self, h: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        self.site.hash(h);
        self.home.hash(h);
        for t in &self.threads {
            t.id.hash(h);
            t.pc.hash(h);
            match &t.state {
                TState::Ready => 0u8.hash(h),
                TState::WaitLocal(l) => {
                    1u8.hash(h);
                    l.hash(h);
                }
                TState::WaitGrant(l) => {
                    2u8.hash(h);
                    l.hash(h);
                }
                TState::WaitData { lock, need } => {
                    3u8.hash(h);
                    lock.hash(h);
                    need.hash(h);
                }
                TState::WaitHome(l) => {
                    4u8.hash(h);
                    l.hash(h);
                }
                TState::WaitPush { lock, new_version } => {
                    5u8.hash(h);
                    lock.hash(h);
                    new_version.hash(h);
                }
                TState::Sleeping => 6u8.hash(h),
                TState::Done => 7u8.hash(h),
                TState::Failed(e) => {
                    8u8.hash(h);
                    e.hash(h);
                }
            }
            // Sorted then hashed; the lint can't see through `Hash::hash`.
            #[allow(clippy::collection_is_never_read)]
            let mut granted: Vec<(LockId, Version, LockMode)> =
                t.granted.iter().map(|(&l, &(v, m))| (l, v, m)).collect();
            granted.sort();
            granted.hash(h);
        }
        self.revoked_locks().hash(h);
        #[allow(clippy::collection_is_never_read)]
        let mut pending: Vec<(LockId, LockMode)> =
            self.pending_mode.iter().map(|(&l, &m)| (l, m)).collect();
        pending.sort();
        pending.hash(h);
    }

    fn record(thread: &mut AppThread, now: SimTime, label: impl Into<String>) {
        thread.records.push(Record {
            label: label.into(),
            at: now,
        });
    }

    /// Runs every runnable thread until it blocks or finishes. Call after
    /// any event delivery.
    pub fn run(&mut self, now: SimTime, daemon: &mut SiteDaemon, sink: &mut CmdSink) {
        loop {
            let Some(idx) = self.threads.iter().position(|t| t.state == TState::Ready) else {
                return;
            };
            self.run_thread(idx, now, daemon, sink);
        }
    }

    /// Executes one thread until it blocks or finishes.
    fn run_thread(
        &mut self,
        idx: usize,
        now: SimTime,
        daemon: &mut SiteDaemon,
        sink: &mut CmdSink,
    ) {
        loop {
            let Some(t) = self.threads.get_mut(idx) else {
                return; // stale index from a caller's token: nothing to run
            };
            if t.state != TState::Ready {
                return;
            }
            let Some(op) = t.ops.get(t.pc).cloned() else {
                t.state = TState::Done;
                return;
            };
            match op {
                Op::Register { lock, specs } => {
                    daemon.register_local(lock, &specs, sink);
                    self.threads[idx].pc += 1;
                }
                Op::SetAvailability { lock, avail } => {
                    self.avail.insert(lock, avail);
                    self.threads[idx].pc += 1;
                }
                Op::Lock {
                    lock,
                    lease_ms,
                    mode,
                } => {
                    let ll = self.local_locks.entry(lock).or_default();
                    if ll.holder == Some(idx) {
                        // Woken after a local wait: proceed to acquire.
                    } else if ll.holder.is_none() && ll.waiters.is_empty() {
                        ll.holder = Some(idx);
                    } else {
                        if !ll.waiters.contains(&idx) {
                            ll.waiters.push_back(idx);
                        }
                        self.threads[idx].state = TState::WaitLocal(lock);
                        return;
                    }
                    let site = self.site;
                    // Per-lock routing via the daemon's directory; `None`
                    // (single-home mode) falls back to the fixed home.
                    let home = daemon.home_for(lock).unwrap_or(self.home);
                    let thread = &mut self.threads[idx];
                    Self::record(thread, now, format!("lock_request:{lock}"));
                    let msg = Msg::AcquireLock {
                        lock,
                        site,
                        thread: thread.id,
                        lease_hint_ms: lease_ms,
                        mode,
                    };
                    sink.send_tagged(
                        home,
                        ports::SYNC,
                        msg,
                        MsgClass::Control,
                        SendTag::Acquire { lock },
                    );
                    thread.state = TState::WaitGrant(lock);
                    self.pending_mode.insert(lock, mode);
                    // pc advances now; the grant unblocks the next op.
                    thread.pc += 1;
                    return;
                }
                Op::Unlock { lock, dirty } => {
                    let Some(&(granted, mode)) = self.threads[idx].granted.get(&lock) else {
                        self.threads[idx].state =
                            TState::Failed(format!("unlock of unheld {lock}"));
                        return;
                    };
                    let revoked = self.revoked.remove(&lock);
                    // Writes under a shared hold were rejected, so a
                    // shared release never advances the version.
                    let dirty = dirty && mode == LockMode::Exclusive;
                    let new_version = if dirty { granted.next() } else { granted };
                    let avail = self.avail.get(&lock).copied().unwrap_or_default();
                    let ur = if dirty && !revoked { avail.ur } else { 1 };
                    let disseminated = daemon.disseminate(lock, new_version, ur, sink);
                    {
                        let thread = &mut self.threads[idx];
                        thread.granted.remove(&lock);
                        Self::record(thread, now, format!("unlock:{lock}"));
                        if revoked {
                            Self::record(thread, now, format!("unlock_revoked:{lock}"));
                        }
                    }
                    // The release goes out (or is deferred until pushes
                    // ack) BEFORE the local hand-off, so a successor's
                    // acquire can never overtake it to the coordinator.
                    if disseminated.is_empty() {
                        sink.send(
                            daemon.home_for(lock).unwrap_or(self.home),
                            ports::SYNC,
                            Msg::ReleaseLock {
                                lock,
                                site: self.site,
                                new_version,
                                disseminated_to: Vec::new(),
                            },
                            MsgClass::Control,
                        );
                    }
                    // Local hand-off: next local waiter becomes the holder
                    // and re-runs its Lock op (which sends its own acquire
                    // to the coordinator — no local data short-circuit).
                    let ll = self.local_locks.entry(lock).or_default();
                    ll.holder = None;
                    if let Some(next) = ll.waiters.pop_front() {
                        ll.holder = Some(next);
                        if self.threads[next].state == TState::WaitLocal(lock) {
                            self.threads[next].state = TState::Ready;
                        }
                    }
                    let thread = &mut self.threads[idx];
                    thread.pc += 1;
                    if !disseminated.is_empty() {
                        // The release follows once dissemination is
                        // acknowledged: the coordinator must never believe
                        // a site is up to date before it actually is.
                        thread.state = TState::WaitPush { lock, new_version };
                        return;
                    }
                }
                Op::Write { replica, payload } => {
                    if let Err(lock) = self.check_guard(idx, daemon, replica, true) {
                        let thread = &mut self.threads[idx];
                        Self::record(thread, now, format!("guard_violation:{lock}"));
                        thread.pc += 1;
                        continue;
                    }
                    if let Err(e) = daemon.write(replica, payload) {
                        self.threads[idx].state = TState::Failed(e.to_string());
                        return;
                    }
                    self.threads[idx].pc += 1;
                }
                Op::Read { replica } => {
                    if let Err(lock) = self.check_guard(idx, daemon, replica, false) {
                        let thread = &mut self.threads[idx];
                        Self::record(thread, now, format!("guard_violation:{lock}"));
                        thread.pc += 1;
                        continue;
                    }
                    match daemon.read(replica) {
                        Ok(p) => {
                            let p = p.clone();
                            self.threads[idx].observed.push(p);
                        }
                        Err(e) => {
                            self.threads[idx].state = TState::Failed(e.to_string());
                            return;
                        }
                    }
                    self.threads[idx].pc += 1;
                }
                Op::Publish { replica } => {
                    if let Err(e) = daemon.publish(replica, sink) {
                        self.threads[idx].state = TState::Failed(e.to_string());
                        return;
                    }
                    self.threads[idx].pc += 1;
                }
                Op::Compute(d) => {
                    sink.charge_time(d);
                    self.threads[idx].pc += 1;
                }
                Op::Sleep(d) => {
                    let token = timer_ns::APP | idx as u64;
                    sink.set_timer(token, d);
                    self.threads[idx].state = TState::Sleeping;
                    self.threads[idx].pc += 1;
                    return;
                }
                Op::Mark(label) => {
                    let thread = &mut self.threads[idx];
                    Self::record(thread, now, label);
                    thread.pc += 1;
                }
            }
        }
    }

    /// Entry-consistency guard: a replica associated with a lock may only
    /// be accessed while this thread holds that lock. Unguarded replicas
    /// (the paper's cached image replicas) are always accessible.
    fn check_guard(
        &self,
        idx: usize,
        daemon: &SiteDaemon,
        replica: ReplicaId,
        write: bool,
    ) -> Result<(), LockId> {
        match daemon.lock_of(replica) {
            Some(lock) if lock != UNGUARDED => match self.threads[idx].granted.get(&lock) {
                Some((_, LockMode::Exclusive)) => Ok(()),
                Some((_, LockMode::Shared)) if !write => Ok(()),
                _ => Err(lock),
            },
            _ => Ok(()),
        }
    }

    /// Handles a protocol message addressed to the APP port.
    pub fn on_msg(
        &mut self,
        now: SimTime,
        from: SiteId,
        msg: Msg,
        daemon: &mut SiteDaemon,
        sink: &mut CmdSink,
    ) {
        match msg {
            Msg::Grant {
                lock,
                version,
                flag,
            } => {
                let Some(idx) = self
                    .threads
                    .iter()
                    .position(|t| t.state == TState::WaitGrant(lock))
                else {
                    sink.note(format!("grant for {lock} with no waiter"));
                    return;
                };
                let mode = self
                    .pending_mode
                    .remove(&lock)
                    .unwrap_or(LockMode::Exclusive);
                {
                    let thread = &mut self.threads[idx];
                    thread.granted.insert(lock, (version, mode));
                    Self::record(thread, now, format!("lock_granted:{lock}"));
                }
                let have = daemon.version_of(lock);
                if flag == VersionFlag::VersionOk || have >= version {
                    let thread = &mut self.threads[idx];
                    Self::record(thread, now, format!("lock_acquired:{lock}"));
                    thread.state = TState::Ready;
                } else {
                    self.threads[idx].state = TState::WaitData {
                        lock,
                        need: version,
                    };
                    // Guard against a failed data leg (e.g. the transfer
                    // source is partitioned from us): re-ask the
                    // coordinator if the data does not arrive. The
                    // coordinator re-grants and re-directs the transfer.
                    sink.set_timer(timer_ns::APP | RETRY_FLAG | idx as u64, DATA_RETRY);
                }
                self.run(now, daemon, sink);
            }
            Msg::Heartbeat { lock, req } => {
                // Liveness + hold check from the coordinator (§4).
                let holding = self.threads.iter().any(|t| t.granted.contains_key(&lock));
                sink.send(
                    from,
                    ports::SYNC,
                    Msg::HeartbeatAck {
                        site: self.site,
                        req,
                        holding,
                    },
                    MsgClass::Control,
                );
            }
            Msg::LockRevoked { lock, .. } => {
                let mut held = false;
                for t in &mut self.threads {
                    if t.granted.contains_key(&lock) {
                        Self::record(t, now, format!("revoked:{lock}"));
                        held = true;
                    }
                }
                if held {
                    self.revoked.insert(lock);
                }
            }
            other => {
                sink.note(format!("app runner ignoring {other:?}"));
            }
        }
    }

    /// Handles a local signal from the daemon.
    pub fn on_signal(
        &mut self,
        now: SimTime,
        signal: &Signal,
        daemon: &mut SiteDaemon,
        sink: &mut CmdSink,
    ) {
        match signal {
            Signal::DataArrived { lock, version } => {
                for idx in 0..self.threads.len() {
                    if let TState::WaitData { lock: l, need } = self.threads[idx].state.clone() {
                        if l == *lock {
                            let label = if *version >= need {
                                format!("data_ready:{lock}")
                            } else {
                                // Weakened consistency: the freshest
                                // surviving version is older than promised.
                                format!("data_stale:{lock}")
                            };
                            let local = daemon.version_of(*lock);
                            let thread = &mut self.threads[idx];
                            Self::record(thread, now, label);
                            Self::record(thread, now, format!("lock_acquired:{lock}"));
                            // The thread proceeds with whatever version
                            // the daemon now holds.
                            let mode = thread
                                .granted
                                .get(lock)
                                .map_or(LockMode::Exclusive, |(_, m)| *m);
                            thread.granted.insert(*lock, (local, mode));
                            thread.state = TState::Ready;
                        }
                    }
                }
                self.run(now, daemon, sink);
            }
            Signal::PushesComplete { lock, acked } => {
                let site = self.site;
                let home = daemon.home_for(*lock).unwrap_or(self.home);
                for t in &mut self.threads {
                    if let TState::WaitPush {
                        lock: l,
                        new_version,
                    } = t.state.clone()
                    {
                        if l == *lock {
                            Self::record(t, now, format!("pushes_done:{lock}"));
                            sink.send(
                                home,
                                ports::SYNC,
                                Msg::ReleaseLock {
                                    lock: *lock,
                                    site,
                                    new_version,
                                    disseminated_to: acked.clone(),
                                },
                                MsgClass::Control,
                            );
                            t.state = TState::Ready;
                        }
                    }
                }
                self.run(now, daemon, sink);
            }
            Signal::HomeChanged { new_home } => {
                self.on_home_changed(now, *new_home, sink);
            }
            Signal::SpawnDone { .. } => {}
        }
    }

    /// Handles an application timer (sleep expiry).
    /// Returns `true` if the token belonged to this component.
    pub fn on_timer(
        &mut self,
        now: SimTime,
        token: u64,
        daemon: &mut SiteDaemon,
        sink: &mut CmdSink,
    ) -> bool {
        if timer_ns::of(token) != timer_ns::APP {
            return false;
        }
        let idx = (token & 0xffff_ffff) as usize;
        if token & RETRY_FLAG != 0 {
            // Acquire retry for a thread stranded by home unreachability
            // or by a transfer whose data leg failed.
            let Some(TState::WaitHome(lock) | TState::WaitData { lock, .. }) =
                self.threads.get(idx).map(|t| t.state.clone())
            else {
                return true; // recovered some other way
            };
            // Ask the daemon for the coordinator's current location (§4:
            // threads "query the local daemon thread to obtain the
            // location of the newly created surrogate synchronization
            // thread").
            self.home = daemon.home();
            // Directory mode routes the retry per lock — the directory may
            // have learned a migrated home while this thread waited.
            let home = daemon.home_for(lock).unwrap_or(self.home);
            let mode = self
                .threads
                .get(idx)
                .and_then(|t| t.granted.get(&lock).map(|(_, m)| *m))
                .or_else(|| self.pending_mode.get(&lock).copied())
                .unwrap_or(LockMode::Exclusive);
            self.pending_mode.insert(lock, mode);
            let Some(t) = self.threads.get_mut(idx) else {
                return true;
            };
            Self::record(t, now, format!("reacquire_retry:{lock}"));
            sink.send_tagged(
                home,
                ports::SYNC,
                Msg::AcquireLock {
                    lock,
                    site: self.site,
                    thread: t.id,
                    lease_hint_ms: 0,
                    mode,
                },
                MsgClass::Control,
                SendTag::Acquire { lock },
            );
            t.state = TState::WaitGrant(lock);
            return true;
        }
        if let Some(t) = self.threads.get_mut(idx) {
            if t.state == TState::Sleeping {
                t.state = TState::Ready;
            }
        }
        self.run(now, daemon, sink);
        true
    }

    /// Handles a transport failure of a tagged application send. The
    /// thread does not fail outright: it waits for either a surrogate
    /// coordinator announcement (§4's synchronization-thread recovery) or
    /// a periodic retry — the home may merely be partitioned away and the
    /// path may heal.
    pub fn on_send_failed(&mut self, now: SimTime, tag: &SendTag, sink: &mut CmdSink) {
        if let SendTag::Acquire { lock } = tag {
            for (idx, t) in self.threads.iter_mut().enumerate() {
                if t.state == TState::WaitGrant(*lock) {
                    Self::record(t, now, format!("home_unreachable:{lock}"));
                    t.state = TState::WaitHome(*lock);
                    sink.set_timer(timer_ns::APP | RETRY_FLAG | idx as u64, HOME_RETRY);
                }
            }
        }
    }

    /// Handles the surrogate-coordinator announcement: redirect, and
    /// resend any acquire that was outstanding or stranded.
    pub fn on_home_changed(&mut self, now: SimTime, new_home: SiteId, sink: &mut CmdSink) {
        self.home = new_home;
        let site = self.site;
        for t in &mut self.threads {
            let (TState::WaitHome(lock) | TState::WaitGrant(lock)) = t.state else {
                continue;
            };
            let mode = self
                .pending_mode
                .get(&lock)
                .copied()
                .unwrap_or(LockMode::Exclusive);
            Self::record(t, now, format!("reacquire_at_surrogate:{lock}"));
            sink.send_tagged(
                new_home,
                ports::SYNC,
                Msg::AcquireLock {
                    lock,
                    site,
                    thread: t.id,
                    lease_hint_ms: 0,
                    mode,
                },
                MsgClass::Control,
                SendTag::Acquire { lock },
            );
            t.state = TState::WaitGrant(lock);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::Cmd;
    use mocha_wire::codec::CodecKind;
    use mocha_wire::RequestId;

    const SITE: SiteId = SiteId(1);
    const HOME: SiteId = SiteId(0);
    const L: LockId = LockId(1);

    fn setup() -> (AppRunner, SiteDaemon, CmdSink) {
        (
            AppRunner::new(SITE, HOME),
            SiteDaemon::new(SITE, HOME, CodecKind::ByteAtATime),
            CmdSink::new(),
        )
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + Duration::from_millis(ms)
    }

    fn grant(version: u64, flag: VersionFlag) -> Msg {
        Msg::Grant {
            lock: L,
            version: Version(version),
            flag,
        }
    }

    #[test]
    fn lock_sends_acquire_and_blocks() {
        let (mut r, mut d, mut sink) = setup();
        let th = r.add_thread(Script::new().register(L, &["x"]).lock(L).unlock(L));
        r.run(t(0), &mut d, &mut sink);
        let cmds = sink.drain();
        assert!(cmds.iter().any(|c| matches!(c,
            Cmd::Send { msg: Msg::AcquireLock { lock, .. }, .. } if *lock == L)));
        assert!(!r.all_done());
        assert_eq!(r.records(th).last().unwrap().label, "lock_request:lock1");
    }

    #[test]
    fn version_ok_grant_unblocks_immediately() {
        let (mut r, mut d, mut sink) = setup();
        let th = r.add_thread(Script::new().register(L, &["x"]).lock(L).unlock(L));
        r.run(t(0), &mut d, &mut sink);
        sink.drain();
        r.on_msg(
            t(5),
            HOME,
            grant(0, VersionFlag::VersionOk),
            &mut d,
            &mut sink,
        );
        assert!(r.all_done());
        let labels: Vec<&str> = r.records(th).iter().map(|rec| rec.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "lock_request:lock1",
                "lock_granted:lock1",
                "lock_acquired:lock1",
                "unlock:lock1"
            ]
        );
        // Release was sent with unchanged version (clean unlock).
        let release_ok = sink.drain().iter().any(|c| {
            matches!(c,
            Cmd::Send { msg: Msg::ReleaseLock { new_version, .. }, .. }
                if *new_version == Version(0))
        });
        assert!(release_ok);
    }

    #[test]
    fn need_new_version_waits_for_data() {
        let (mut r, mut d, mut sink) = setup();
        let th = r.add_thread(Script::new().register(L, &["x"]).lock(L).unlock(L));
        r.run(t(0), &mut d, &mut sink);
        sink.drain();
        r.on_msg(
            t(5),
            HOME,
            grant(3, VersionFlag::NeedNewVersion),
            &mut d,
            &mut sink,
        );
        assert!(!r.all_done(), "must wait for data");
        // Data arrives at the daemon.
        d.on_msg(
            t(9),
            SiteId(2),
            Msg::ReplicaData {
                lock: L,
                version: Version(3),
                updates: vec![],
                req: RequestId(0),
            },
            &mut sink,
        );
        r.on_signal(
            t(10),
            &Signal::DataArrived {
                lock: L,
                version: Version(3),
            },
            &mut d,
            &mut sink,
        );
        assert!(r.all_done());
        let labels: Vec<&str> = r.records(th).iter().map(|rec| rec.label.as_str()).collect();
        assert!(labels.contains(&"data_ready:lock1"));
    }

    #[test]
    fn stale_data_is_labelled_and_still_unblocks() {
        let (mut r, mut d, mut sink) = setup();
        let th = r.add_thread(Script::new().register(L, &["x"]).lock(L).unlock(L));
        r.run(t(0), &mut d, &mut sink);
        sink.drain();
        r.on_msg(
            t(5),
            HOME,
            grant(9, VersionFlag::NeedNewVersion),
            &mut d,
            &mut sink,
        );
        // Recovery could only find version 2.
        d.on_msg(
            t(9),
            SiteId(2),
            Msg::ReplicaData {
                lock: L,
                version: Version(2),
                updates: vec![],
                req: RequestId(0),
            },
            &mut sink,
        );
        r.on_signal(
            t(10),
            &Signal::DataArrived {
                lock: L,
                version: Version(2),
            },
            &mut d,
            &mut sink,
        );
        assert!(r.all_done());
        let labels: Vec<&str> = r.records(th).iter().map(|rec| rec.label.as_str()).collect();
        assert!(labels.contains(&"data_stale:lock1"));
    }

    #[test]
    fn dirty_unlock_advances_version() {
        let (mut r, mut d, mut sink) = setup();
        let x = crate::replica::replica_id("x");
        r.add_thread(
            Script::new()
                .register(L, &["x"])
                .lock(L)
                .write(x, ReplicaPayload::I32s(vec![1]))
                .unlock_dirty(L),
        );
        r.run(t(0), &mut d, &mut sink);
        sink.drain();
        r.on_msg(
            t(5),
            HOME,
            grant(4, VersionFlag::VersionOk),
            &mut d,
            &mut sink,
        );
        let release_version = sink.drain().into_iter().find_map(|c| match c {
            Cmd::Send {
                msg: Msg::ReleaseLock { new_version, .. },
                ..
            } => Some(new_version),
            _ => None,
        });
        assert_eq!(release_version, Some(Version(5)));
        assert_eq!(d.version_of(L), Version(5));
    }

    #[test]
    fn local_threads_queue_fairly_and_both_contact_coordinator() {
        let (mut r, mut d, mut sink) = setup();
        r.add_thread(Script::new().register(L, &["x"]).lock(L).unlock(L));
        r.add_thread(Script::new().lock(L).unlock(L));
        r.run(t(0), &mut d, &mut sink);
        // Only one acquire so far (thread 1 waits locally).
        let acquires = sink
            .drain()
            .iter()
            .filter(|c| {
                matches!(
                    c,
                    Cmd::Send {
                        msg: Msg::AcquireLock { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(acquires, 1);
        // Grant thread 0; it unlocks; thread 1 must then send its own
        // acquire (no local short-circuit).
        r.on_msg(
            t(5),
            HOME,
            grant(0, VersionFlag::VersionOk),
            &mut d,
            &mut sink,
        );
        let acquires = sink
            .drain()
            .iter()
            .filter(|c| {
                matches!(
                    c,
                    Cmd::Send {
                        msg: Msg::AcquireLock { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(acquires, 1, "second thread contacts coordinator");
        r.on_msg(
            t(8),
            HOME,
            grant(0, VersionFlag::VersionOk),
            &mut d,
            &mut sink,
        );
        assert!(r.all_done());
    }

    #[test]
    fn guarded_access_without_lock_is_recorded() {
        let (mut r, mut d, mut sink) = setup();
        let x = crate::replica::replica_id("x");
        let th = r.add_thread(
            Script::new()
                .register(L, &["x"])
                .write(x, ReplicaPayload::I32s(vec![1])), // no lock held!
        );
        r.run(t(0), &mut d, &mut sink);
        let labels: Vec<&str> = r.records(th).iter().map(|rec| rec.label.as_str()).collect();
        assert!(labels.iter().any(|l| l.starts_with("guard_violation")));
    }

    #[test]
    fn unguarded_replicas_are_freely_accessible() {
        let (mut r, mut d, mut sink) = setup();
        let img = crate::replica::replica_id("image");
        r.add_thread(
            Script::new()
                .register(UNGUARDED, &["image"])
                .write(img, ReplicaPayload::Bytes(vec![1, 2]))
                .read(img),
        );
        r.run(t(0), &mut d, &mut sink);
        assert!(r.all_done());
        assert_eq!(r.observed(), vec![ReplicaPayload::Bytes(vec![1, 2])]);
    }

    #[test]
    fn sleep_blocks_until_timer() {
        let (mut r, mut d, mut sink) = setup();
        r.add_thread(Script::new().sleep(Duration::from_millis(50)).mark("woke"));
        r.run(t(0), &mut d, &mut sink);
        assert!(!r.all_done());
        let token = timer_ns::APP;
        assert!(r.on_timer(t(50), token, &mut d, &mut sink));
        assert!(r.all_done());
    }

    #[test]
    fn home_unreachable_waits_for_surrogate_and_reacquires() {
        let (mut r, mut d, mut sink) = setup();
        let th = r.add_thread(Script::new().register(L, &["x"]).lock(L).unlock(L));
        r.run(t(0), &mut d, &mut sink);
        sink.drain();
        r.on_send_failed(t(10), &SendTag::Acquire { lock: L }, &mut sink);
        assert!(!r.all_done(), "thread waits for a surrogate");
        // A surrogate at site 5 announces itself.
        r.on_home_changed(t(20), SiteId(5), &mut sink);
        let resent = sink.drain().iter().any(|c| {
            matches!(c,
            Cmd::Send { to, msg: Msg::AcquireLock { .. }, .. } if *to == SiteId(5))
        });
        assert!(resent, "acquire re-sent to the surrogate");
        // Grant from the surrogate completes the script.
        r.on_msg(
            t(25),
            SiteId(5),
            grant(0, VersionFlag::VersionOk),
            &mut d,
            &mut sink,
        );
        assert!(r.all_done());
        let labels: Vec<&str> = r.records(th).iter().map(|rec| rec.label.as_str()).collect();
        assert!(labels.contains(&"home_unreachable:lock1"));
        assert!(labels.contains(&"reacquire_at_surrogate:lock1"));
    }

    #[test]
    fn unlock_without_lock_fails() {
        let (mut r, mut d, mut sink) = setup();
        r.add_thread(Script::new().unlock(L));
        r.run(t(0), &mut d, &mut sink);
        assert_eq!(r.failures().len(), 1);
    }

    #[test]
    fn revocation_while_held_marks_the_release() {
        let (mut r, mut d, mut sink) = setup();
        let th = r.add_thread(
            Script::new()
                .register(L, &["x"])
                .lock(L)
                .sleep(Duration::from_millis(100)) // long critical section
                .unlock_dirty(L),
        );
        r.run(t(0), &mut d, &mut sink);
        sink.drain();
        r.on_msg(
            t(5),
            HOME,
            grant(0, VersionFlag::VersionOk),
            &mut d,
            &mut sink,
        );
        // While sleeping, the coordinator breaks the lock.
        r.on_msg(
            t(50),
            HOME,
            Msg::LockRevoked {
                lock: L,
                version: Version(0),
            },
            &mut d,
            &mut sink,
        );
        // Wake up and unlock.
        assert!(r.on_timer(t(105), timer_ns::APP, &mut d, &mut sink));
        assert!(r.all_done());
        let labels: Vec<&str> = r.records(th).iter().map(|rec| rec.label.as_str()).collect();
        assert!(labels.contains(&"revoked:lock1"));
        assert!(labels.contains(&"unlock_revoked:lock1"));
    }

    #[test]
    fn wait_for_acks_blocks_until_pushes_complete() {
        let (mut r, mut d, mut sink) = setup();
        // Site knows about a peer member so dissemination has a target.
        let th = r.add_thread(
            Script::new()
                .register(L, &["x"])
                .set_availability(
                    L,
                    AvailabilityConfig {
                        ur: 2,
                        wait_for_acks: true,
                    },
                )
                .lock(L)
                .unlock_dirty(L),
        );
        r.run(t(0), &mut d, &mut sink);
        sink.drain();
        // Teach the daemon about member site 2 (coordinator forward).
        d.on_msg(
            t(1),
            HOME,
            Msg::RegisterReplica {
                lock: L,
                replica: crate::replica::replica_id("x"),
                site: SiteId(2),
                name: "x".into(),
            },
            &mut sink,
        );
        sink.drain();
        r.on_msg(
            t(5),
            HOME,
            grant(0, VersionFlag::VersionOk),
            &mut d,
            &mut sink,
        );
        assert!(!r.all_done(), "waiting for push acks");
        // Ack arrives at the daemon; daemon signals completion.
        d.on_msg(
            t(9),
            SiteId(2),
            Msg::PushAck {
                lock: L,
                version: Version(1),
                site: SiteId(2),
                req: RequestId(1),
            },
            &mut sink,
        );
        r.on_signal(
            t(10),
            &Signal::PushesComplete {
                lock: L,
                acked: vec![SiteId(2)],
            },
            &mut d,
            &mut sink,
        );
        assert!(r.all_done());
        let labels: Vec<&str> = r.records(th).iter().map(|rec| rec.label.as_str()).collect();
        assert!(labels.contains(&"pushes_done:lock1"));
    }

    #[test]
    fn script_builder_composes() {
        let inner = Script::new().lock(L).unlock(L);
        let s = Script::new().repeat(3, inner).mark("end");
        assert_eq!(s.len(), 7);
        assert!(!s.is_empty());
        let s2 = Script::new().then(s);
        assert_eq!(s2.len(), 7);
    }
}
