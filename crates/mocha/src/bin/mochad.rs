//! `mochad` — one Mocha site as one OS process.
//!
//! Boots a single site of the socket runtime from a hostfile whose
//! entries carry addresses (`siteN=ip:port`), registers a demo counter
//! replica, and runs a small workload. This is the deployment shape of
//! the paper's prototypes: independent daemons on separate hosts talking
//! MochaNet over UDP (and TCP for bulk data in `--hybrid` mode).
//!
//! ```text
//! mochad --hostfile hosts.txt --site 0 --workload serve
//! mochad --hostfile hosts.txt --site 1 --workload incr:25
//! ```
//!
//! Workloads:
//!
//! * `serve` — print `READY`, participate in the protocol until stdin
//!   closes, then exit. Used for the home/coordinator process. Each
//!   stdin line reading `read` acquires the lock once and prints
//!   `VALUE <value>` — the control channel multi-process tests use to
//!   assert entry consistency.
//! * `incr:N` — acquire the demo lock N times, incrementing the shared
//!   counter under it each time; print `FINAL <value>` when done.
//! * `read` — acquire once, print `VALUE <value>`, release clean.
//!
//! Every run prints a `RECOVERED <n>` line at boot (how many locks were
//! replayed from the `--store-dir` journal; 0 without one) and a
//! `METRICS <counters>` line at exit — the runtime's mirror of the
//! simulator's per-run metrics.

use std::process::ExitCode;
use std::time::Duration;

use mocha::config::{AvailabilityConfig, MochaConfig};
use mocha::hostfile::HostFile;
use mocha::replica::{replica_id, ReplicaSpec};
use mocha::runtime::socket::{address_book, MochaHandle, SocketRuntime};
use mocha_store::StoreConfig;
use mocha_wire::{LockId, ReplicaPayload, SiteId};

/// The demo lock every workload contends on.
const LOCK: LockId = LockId(1);

struct Args {
    hostfile: String,
    site: u32,
    home: u32,
    hybrid: bool,
    ur: usize,
    store_dir: Option<String>,
    workload: Workload,
}

enum Workload {
    Serve,
    Incr(u32),
    Read,
}

fn usage() -> ! {
    eprintln!(
        "usage: mochad --hostfile PATH --site N [--home N] [--hybrid] [--ur K] \
         [--store-dir PATH] --workload serve|incr:N|read"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        hostfile: String::new(),
        site: u32::MAX,
        home: 0,
        hybrid: false,
        ur: 1,
        store_dir: None,
        workload: Workload::Serve,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--hostfile" => args.hostfile = value(),
            "--site" => args.site = value().parse().unwrap_or_else(|_| usage()),
            "--home" => args.home = value().parse().unwrap_or_else(|_| usage()),
            "--ur" => args.ur = value().parse().unwrap_or_else(|_| usage()),
            "--store-dir" => args.store_dir = Some(value()),
            "--hybrid" => args.hybrid = true,
            "--workload" => {
                let w = value();
                args.workload = match w.as_str() {
                    "serve" => Workload::Serve,
                    "read" => Workload::Read,
                    _ => match w.strip_prefix("incr:").and_then(|n| n.parse().ok()) {
                        Some(n) => Workload::Incr(n),
                        None => usage(),
                    },
                };
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    if args.hostfile.is_empty() || args.site == u32::MAX {
        usage();
    }
    args
}

fn counter_value(payload: &ReplicaPayload) -> i64 {
    match payload {
        ReplicaPayload::I64s(v) => v.first().copied().unwrap_or(0),
        _ => 0,
    }
}

fn run_workload(handle: &MochaHandle, workload: &Workload) -> Result<(), String> {
    let counter = replica_id("counter");
    match workload {
        Workload::Serve => {
            println!("READY");
            // Participate until the parent closes our stdin; serve `read`
            // requests in the meantime.
            for line in std::io::stdin().lines() {
                let Ok(line) = line else { break };
                if line.trim() == "read" {
                    handle.lock(LOCK).map_err(|e| e.to_string())?;
                    let v = counter_value(&handle.read(counter).map_err(|e| e.to_string())?);
                    handle.unlock(LOCK, false).map_err(|e| e.to_string())?;
                    println!("VALUE {v}");
                }
            }
        }
        Workload::Incr(n) => {
            for _ in 0..*n {
                handle.lock(LOCK).map_err(|e| e.to_string())?;
                let v = counter_value(&handle.read(counter).map_err(|e| e.to_string())?);
                handle
                    .write(counter, ReplicaPayload::I64s(vec![v + 1]))
                    .map_err(|e| e.to_string())?;
                handle.unlock(LOCK, true).map_err(|e| e.to_string())?;
            }
            handle.lock(LOCK).map_err(|e| e.to_string())?;
            let v = counter_value(&handle.read(counter).map_err(|e| e.to_string())?);
            handle.unlock(LOCK, false).map_err(|e| e.to_string())?;
            println!("FINAL {v}");
        }
        Workload::Read => {
            handle.lock(LOCK).map_err(|e| e.to_string())?;
            let v = counter_value(&handle.read(counter).map_err(|e| e.to_string())?);
            handle.unlock(LOCK, false).map_err(|e| e.to_string())?;
            println!("VALUE {v}");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    let text = match std::fs::read_to_string(&args.hostfile) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("mochad: cannot read {}: {e}", args.hostfile);
            return ExitCode::from(2);
        }
    };
    let hosts: HostFile = match text.parse() {
        Ok(h) => h,
        Err(e) => {
            eprintln!("mochad: {}: {e}", args.hostfile);
            return ExitCode::from(2);
        }
    };
    let book = match address_book(&hosts) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("mochad: {}: {e}", args.hostfile);
            return ExitCode::from(2);
        }
    };
    let config = if args.hybrid {
        MochaConfig::hybrid()
    } else {
        MochaConfig::basic()
    };
    let mut builder = SocketRuntime::builder().config(config);
    if let Some(dir) = &args.store_dir {
        // Durable mode: journal applied versions under dir/site-<N>/ so a
        // restarted process replays them and rejoins with its state.
        builder = builder.store_dir(dir, StoreConfig::default());
    }
    let site = match builder.build_site(SiteId(args.site), SiteId(args.home), book) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mochad: cannot boot site {}: {e}", args.site);
            return ExitCode::FAILURE;
        }
    };
    // Observable recovery: how many locks came back from this site's own
    // journal (0 without --store-dir or on a first boot). The
    // kill-and-restart test keys on this to prove the state survived the
    // process, not merely the cluster.
    println!("RECOVERED {}", site.recovered_locks());
    let handle = site.handle();
    if let Err(e) = handle.register(
        LOCK,
        vec![ReplicaSpec::new("counter", ReplicaPayload::I64s(vec![0]))],
    ) {
        eprintln!("mochad: register failed: {e}");
        return ExitCode::FAILURE;
    }
    if args.ur > 1 {
        let avail = AvailabilityConfig {
            ur: args.ur,
            ..AvailabilityConfig::default()
        };
        if let Err(e) = handle.set_availability(LOCK, avail) {
            eprintln!("mochad: set_availability failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    // Let peers bind before the workload starts hammering the coordinator
    // (MochaNet would retry through the skew anyway; this trims noise).
    std::thread::sleep(Duration::from_millis(50));

    let result = run_workload(&handle, &args.workload);
    println!("METRICS {}", site.metrics());
    site.shutdown();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mochad: workload failed: {e}");
            ExitCode::FAILURE
        }
    }
}
