//! The per-site daemon thread (paper §3 Figure 6, plus §4 dissemination).
//!
//! Every site runs one daemon. It has direct access to the site's shared
//! replica objects, which lets it:
//!
//! * serve `TRANSFERREPLICA` directives by marshaling the replicas
//!   associated with a lock and sending them straight to the requesting
//!   site (daemon-to-daemon, never through the coordinator);
//! * apply arriving replica data and pushed updates directly;
//! * answer the coordinator's failure-handling polls (`PollVersion`) and
//!   heartbeats;
//! * perform push-based dissemination at release time when `UR > 1`,
//!   choosing replacement targets when a push times out.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use mocha_net::{ports, MsgClass};
use mocha_sim::{SimTime, Work};
use mocha_wire::codec::CodecKind;
use mocha_wire::message::ReplicaUpdate;
use mocha_wire::{LockId, Msg, ReplicaId, ReplicaPayload, RequestId, SiteId, Version};

use crate::cmd::{CmdSink, SendTag, Signal};
use crate::config::FaultPlan;
use crate::error::MochaError;
use crate::replica::ReplicaSpec;

/// A dissemination task: one release's pushes.
///
/// Pushes are **sequential and synchronous**: the daemon sends to one
/// target, waits for its `PushAck`, then moves to the next. This matches
/// the simple reliable-send loop of the paper's implementation and is
/// what makes the cost of keeping `UR` copies up to date scale linearly
/// in `UR` ("the overhead for consistency maintenance approximately
/// doubles" when UR goes from 1 to 2 — §5, Figure 12).
#[derive(Debug)]
struct PushTask {
    lock: LockId,
    version: Version,
    /// The target currently awaiting acknowledgement.
    current: Option<SiteId>,
    /// Targets not yet pushed to, in order.
    remaining: VecDeque<SiteId>,
    /// Every site tried so far (successful or not), to avoid retrying the
    /// same dead target.
    tried: BTreeSet<SiteId>,
    /// Targets that acknowledged.
    acked: Vec<SiteId>,
}

/// Statistics the daemon accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Transfer directives served.
    pub transfers_served: u64,
    /// Replica data messages applied.
    pub updates_applied: u64,
    /// Stale (older-version) data messages discarded.
    pub stale_updates_discarded: u64,
    /// Pushes sent (including replacements).
    pub pushes_sent: u64,
    /// Push targets replaced after timeout.
    pub push_replacements: u64,
    /// Version polls answered.
    pub polls_answered: u64,
}

/// The daemon thread's state machine.
#[derive(Debug)]
pub struct SiteDaemon {
    me: SiteId,
    home: SiteId,
    codec: CodecKind,
    /// Replica values, directly accessible (the paper registers shared
    /// objects with the local daemon).
    store: HashMap<ReplicaId, ReplicaPayload>,
    names: HashMap<ReplicaId, String>,
    /// Replicas guarded by each lock.
    lock_replicas: HashMap<LockId, BTreeSet<ReplicaId>>,
    /// Known member sites per lock (maintained from coordinator
    /// registration forwards) — the dissemination candidate set.
    lock_members: HashMap<LockId, BTreeSet<SiteId>>,
    /// Newest version held locally per lock.
    lock_version: BTreeMap<LockId, Version>,
    pushes: HashMap<RequestId, PushTask>,
    /// Relay-ablation bookkeeping: transfers expected to pass through this
    /// (home) site on their way to the mapped destination.
    expect_relays: HashMap<RequestId, SiteId>,
    /// Last-writer-wins stamps for *unsynchronized* cached replicas
    /// (Lamport counter, publishing site).
    cache_stamps: HashMap<ReplicaId, (u64, SiteId)>,
    /// Local Lamport clock for cache publications.
    cache_clock: u64,
    next_req: RequestId,
    stats: DaemonStats,
    /// Deliberate faults for oracle testing (inert unless built with the
    /// `fault-injection` feature).
    faults: FaultPlan,
}

impl SiteDaemon {
    /// Creates the daemon for site `me`, with the coordinator at `home`.
    pub fn new(me: SiteId, home: SiteId, codec: CodecKind) -> SiteDaemon {
        SiteDaemon {
            me,
            home,
            codec,
            store: HashMap::new(),
            names: HashMap::new(),
            lock_replicas: HashMap::new(),
            lock_members: HashMap::new(),
            lock_version: BTreeMap::new(),
            pushes: HashMap::new(),
            expect_relays: HashMap::new(),
            cache_stamps: HashMap::new(),
            cache_clock: 0,
            next_req: RequestId(1),
            stats: DaemonStats::default(),
            faults: FaultPlan::default(),
        }
    }

    /// Installs the deliberate-fault plan (mutant harness only; the flags
    /// are inert unless built with the `fault-injection` feature).
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DaemonStats {
        self.stats
    }

    /// This site's id.
    pub fn site(&self) -> SiteId {
        self.me
    }

    /// The coordinator's current location as known locally — application
    /// threads "query the local daemon thread to obtain the location of
    /// the newly created surrogate synchronization thread" (§4).
    pub fn home(&self) -> SiteId {
        self.home
    }

    /// Newest locally held version for `lock`.
    pub fn version_of(&self, lock: LockId) -> Version {
        self.lock_version
            .get(&lock)
            .copied()
            .unwrap_or(Version::INITIAL)
    }

    /// Every (lock, newest local version) pair, sorted by lock id — the
    /// invariant oracle's view of this daemon.
    pub fn versions(&self) -> Vec<(LockId, Version)> {
        self.lock_version.iter().map(|(l, v)| (*l, *v)).collect()
    }

    /// Feeds the daemon's protocol-relevant state into `h`, in a
    /// deterministic order, for explorer state fingerprinting.
    pub fn hash_state(&self, h: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        self.me.hash(h);
        self.home.hash(h);
        // lock_version is a BTreeMap: iteration order is deterministic.
        for (lock, version) in &self.lock_version {
            lock.hash(h);
            version.hash(h);
        }
        // Replica contents, via their wire encoding (payloads hold f64s
        // and so cannot derive Hash).
        let mut replicas: Vec<&ReplicaId> = self.store.keys().collect();
        replicas.sort_unstable();
        for id in replicas {
            id.hash(h);
            let mut w = mocha_wire::io::ByteWriter::new();
            self.store[id].encode(&mut w);
            w.into_bytes().hash(h);
        }
        // In-flight pushes decide which acks advance the dissemination.
        let mut reqs: Vec<&RequestId> = self.pushes.keys().collect();
        reqs.sort_unstable();
        for req in reqs {
            let task = &self.pushes[req];
            req.hash(h);
            task.lock.hash(h);
            task.version.hash(h);
            task.current.hash(h);
            task.remaining.hash(h);
            task.acked.hash(h);
        }
    }

    /// Reads a replica's current local value.
    ///
    /// # Errors
    ///
    /// Returns [`MochaError::UnknownReplica`] if never registered here.
    pub fn read(&self, replica: ReplicaId) -> Result<&ReplicaPayload, MochaError> {
        self.store
            .get(&replica)
            .ok_or(MochaError::UnknownReplica { replica })
    }

    /// Overwrites a replica's local value (caller must hold the guarding
    /// lock; the application layer enforces that).
    ///
    /// # Errors
    ///
    /// Returns [`MochaError::UnknownReplica`] if never registered here.
    pub fn write(&mut self, replica: ReplicaId, payload: ReplicaPayload) -> Result<(), MochaError> {
        match self.store.get_mut(&replica) {
            Some(slot) => {
                *slot = payload;
                Ok(())
            }
            None => Err(MochaError::UnknownReplica { replica }),
        }
    }

    /// Registers replicas guarded by `lock` at this site, with initial
    /// values, and announces the registration to the coordinator.
    pub fn register_local(&mut self, lock: LockId, specs: &[ReplicaSpec], sink: &mut CmdSink) {
        self.lock_members.entry(lock).or_default().insert(self.me);
        for spec in specs {
            let id = spec.id();
            self.store.entry(id).or_insert_with(|| spec.initial.clone());
            self.names.insert(id, spec.name.clone());
            self.lock_replicas.entry(lock).or_default().insert(id);
            sink.send(
                self.home,
                ports::SYNC,
                Msg::RegisterReplica {
                    lock,
                    replica: id,
                    site: self.me,
                    name: spec.name.clone(),
                },
                MsgClass::Control,
            );
        }
    }

    /// The lock guarding `replica`, if any is known locally.
    pub fn lock_of(&self, replica: ReplicaId) -> Option<LockId> {
        self.lock_replicas
            .iter()
            .find(|(_, ids)| ids.contains(&replica))
            .map(|(lock, _)| *lock)
    }

    /// Registered member sites of `lock` as known locally.
    pub fn members_of(&self, lock: LockId) -> Vec<SiteId> {
        self.lock_members
            .get(&lock)
            .map(|m| m.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Marshals the current values of `lock`'s replicas, charging the
    /// configured codec's cost.
    fn marshal_for(&self, lock: LockId, sink: &mut CmdSink) -> Vec<ReplicaUpdate> {
        let updates: Vec<ReplicaUpdate> = self
            .lock_replicas
            .get(&lock)
            .map(|ids| {
                ids.iter()
                    .filter_map(|id| {
                        self.store.get(id).map(|p| ReplicaUpdate {
                            replica: *id,
                            payload: p.clone(),
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();
        let cost = self.codec.marshaller().marshal_cost(&updates);
        sink.charge(Work::marshal_ops(cost.ops));
        updates
    }

    /// Charges the unmarshal cost for received updates.
    fn charge_unmarshal(&self, updates: &[ReplicaUpdate], sink: &mut CmdSink) {
        let bytes: usize = updates.iter().map(|u| u.payload.data_bytes()).sum();
        let cost = self.codec.marshaller().unmarshal_cost(bytes, updates.len());
        sink.charge(Work::marshal_ops(cost.ops));
    }

    /// Applies replica data if it is at least as new as what we hold.
    /// Returns whether it was applied.
    fn apply(&mut self, lock: LockId, version: Version, updates: Vec<ReplicaUpdate>) -> bool {
        let local = self.version_of(lock);
        // Mutant-harness hook: dropping the staleness guard lets reordered
        // deliveries regress the local version (the bug the oracle's
        // VersionRegression invariant exists to catch).
        if version < local && !self.faults.active().accept_any_version {
            self.stats.stale_updates_discarded += 1;
            return false;
        }
        debug_assert!(
            version >= local || self.faults.active().accept_any_version,
            "daemon {me} applying {version:?} over newer local {local:?} for {lock}",
            me = self.me
        );
        for u in updates {
            // Transfers can carry replicas not yet registered locally
            // (another site created them); adopt them.
            self.store.insert(u.replica, u.payload);
            self.lock_replicas
                .entry(lock)
                .or_default()
                .insert(u.replica);
        }
        self.lock_version.insert(lock, version);
        self.stats.updates_applied += 1;
        true
    }

    /// Publishes the current local value of an *unsynchronized* cached
    /// replica to every registered member — the paper's §7 future work
    /// (non-synchronization-based consistency, Bayou/Rover-style). Updates
    /// are ordered by (Lamport counter, site): concurrent publications
    /// converge to the same last-writer-wins value everywhere.
    ///
    /// # Errors
    ///
    /// Returns [`MochaError::UnknownReplica`] if the replica is not
    /// registered here.
    pub fn publish(&mut self, replica: ReplicaId, sink: &mut CmdSink) -> Result<(), MochaError> {
        let payload = self.read(replica)?.clone();
        self.cache_clock += 1;
        let stamp = (self.cache_clock, self.me);
        self.cache_stamps.insert(replica, stamp);
        let lock = self.lock_of(replica).unwrap_or(crate::app::UNGUARDED);
        let members: Vec<SiteId> = self
            .lock_members
            .get(&lock)
            .map(|m| m.iter().copied().filter(|s| *s != self.me).collect())
            .unwrap_or_default();
        for member in members {
            sink.send(
                member,
                ports::DAEMON,
                Msg::CacheUpdate {
                    replica,
                    counter: stamp.0,
                    origin: self.me,
                    payload: payload.clone(),
                },
                MsgClass::Bulk,
            );
        }
        Ok(())
    }

    /// The LWW stamp of a cached replica, if it was ever published.
    pub fn cache_stamp(&self, replica: ReplicaId) -> Option<(u64, SiteId)> {
        self.cache_stamps.get(&replica).copied()
    }

    /// Performs push-based dissemination at release time (§4): sends the
    /// new value to `ur - 1` other member sites. Returns the target list
    /// (reported to the coordinator in the release message).
    pub fn disseminate(
        &mut self,
        lock: LockId,
        new_version: Version,
        ur: usize,
        sink: &mut CmdSink,
    ) -> Vec<SiteId> {
        self.lock_version.insert(lock, new_version);
        if ur <= 1 {
            return Vec::new();
        }
        let candidates: Vec<SiteId> = self
            .lock_members
            .get(&lock)
            .map(|m| m.iter().copied().filter(|s| *s != self.me).collect())
            .unwrap_or_default();
        let targets: Vec<SiteId> = candidates.iter().copied().take(ur - 1).collect();
        if targets.is_empty() {
            return Vec::new();
        }
        let req = self.next_req;
        self.next_req = self.next_req.next();
        let mut task = PushTask {
            lock,
            version: new_version,
            current: None,
            remaining: targets.iter().copied().collect(),
            tried: BTreeSet::new(),
            acked: Vec::new(),
        };
        task.tried.insert(self.me);
        self.pushes.insert(req, task);
        self.push_next(req, sink);
        targets
    }

    /// Sends the next pending push of task `req`, or signals completion.
    fn push_next(&mut self, req: RequestId, sink: &mut CmdSink) {
        let (lock, version, target) = {
            let Some(task) = self.pushes.get_mut(&req) else {
                return;
            };
            if let Some(target) = task.remaining.pop_front() {
                task.current = Some(target);
                task.tried.insert(target);
                (task.lock, task.version, target)
            } else {
                task.current = None;
                if let Some(task) = self.pushes.remove(&req) {
                    sink.signal(Signal::PushesComplete {
                        lock: task.lock,
                        acked: task.acked,
                    });
                }
                return;
            }
        };
        // Re-marshaled per destination, as a per-send pack loop would.
        let updates = self.marshal_for(lock, sink);
        self.stats.pushes_sent += 1;
        sink.send_tagged(
            target,
            ports::DAEMON,
            Msg::PushUpdate {
                lock,
                version,
                updates,
                req,
            },
            MsgClass::Bulk,
            SendTag::Push {
                lock,
                to: target,
                req,
            },
        );
    }

    /// Handles a protocol message addressed to the DAEMON port.
    pub fn on_msg(&mut self, _now: SimTime, from: SiteId, msg: Msg, sink: &mut CmdSink) {
        sink.charge(Work::events(1));
        match msg {
            Msg::TransferReplica {
                lock,
                dest,
                version: _,
                req,
            } => {
                self.stats.transfers_served += 1;
                let updates = self.marshal_for(lock, sink);
                let version = self.version_of(lock);
                sink.send(
                    dest,
                    ports::DAEMON,
                    Msg::ReplicaData {
                        lock,
                        version,
                        updates,
                        req,
                    },
                    MsgClass::Bulk,
                );
            }
            Msg::ReplicaData {
                lock,
                version,
                updates,
                req,
            } => {
                if let Some(dest) = self.expect_relays.remove(&req) {
                    if dest != self.me {
                        // Relay ablation: store-and-forward through this
                        // site. Pays a full unmarshal + remarshal.
                        self.charge_unmarshal(&updates, sink);
                        let cost = self.codec.marshaller().marshal_cost(&updates);
                        sink.charge(Work::marshal_ops(cost.ops));
                        sink.send(
                            dest,
                            ports::DAEMON,
                            Msg::ReplicaData {
                                lock,
                                version,
                                updates,
                                req,
                            },
                            MsgClass::Bulk,
                        );
                        return;
                    }
                }
                self.charge_unmarshal(&updates, sink);
                self.apply(lock, version, updates);
                // Even stale data unblocks a waiter: it is the freshest
                // available (weakened consistency path).
                let local = self.version_of(lock);
                sink.signal(Signal::DataArrived {
                    lock,
                    version: local,
                });
            }
            Msg::PushUpdate {
                lock,
                version,
                updates,
                req,
            } => {
                self.charge_unmarshal(&updates, sink);
                let applied = self.apply(lock, version, updates);
                sink.send(
                    from,
                    ports::DAEMON,
                    Msg::PushAck {
                        lock,
                        version,
                        site: self.me,
                        req,
                    },
                    MsgClass::Control,
                );
                if applied {
                    sink.signal(Signal::DataArrived { lock, version });
                }
            }
            Msg::PushAck { req, site, .. } => {
                let advance = self.pushes.get_mut(&req).is_some_and(|task| {
                    if task.current == Some(site) {
                        task.current = None;
                        task.acked.push(site);
                        true
                    } else {
                        false
                    }
                });
                if advance {
                    self.push_next(req, sink);
                }
            }
            Msg::PollVersion { lock, req } => {
                self.stats.polls_answered += 1;
                sink.send(
                    self.home,
                    ports::SYNC,
                    Msg::PollResponse {
                        lock,
                        version: self.version_of(lock),
                        site: self.me,
                        req,
                    },
                    MsgClass::Control,
                );
            }
            Msg::CacheUpdate {
                replica,
                counter,
                origin,
                payload,
            } => {
                // Lamport clock advance + last-writer-wins merge.
                self.cache_clock = self.cache_clock.max(counter);
                let incoming = (counter, origin);
                let apply = self
                    .cache_stamps
                    .get(&replica)
                    .is_none_or(|local| incoming > *local);
                if apply {
                    self.cache_stamps.insert(replica, incoming);
                    self.store.insert(replica, payload);
                    self.stats.updates_applied += 1;
                } else {
                    self.stats.stale_updates_discarded += 1;
                }
            }
            Msg::ExpectRelay { dest, req, .. } => {
                self.expect_relays.insert(req, dest);
            }
            Msg::SyncMoved { new_home } => {
                // Surrogate takeover: redirect all future coordinator
                // traffic and tell local application threads.
                self.home = new_home;
                sink.signal(Signal::HomeChanged { new_home });
            }
            Msg::RegisterReplica {
                lock,
                replica,
                site,
                name,
            } => {
                // Membership forward from the coordinator.
                self.lock_members.entry(lock).or_default().insert(site);
                self.lock_replicas.entry(lock).or_default().insert(replica);
                self.names.entry(replica).or_insert(name);
                self.store
                    .entry(replica)
                    .or_insert_with(ReplicaPayload::empty);
            }
            other => {
                sink.note(format!("daemon {me} ignoring {other:?}", me = self.me));
            }
        }
    }

    /// Handles a push-send failure: pick an untried member as replacement
    /// (§4: "the failure ... can be handled by choosing another daemon
    /// thread at another site to receive a copy"), or move on to the next
    /// target when nobody is left.
    pub fn on_send_failed(&mut self, tag: &SendTag, sink: &mut CmdSink) {
        let SendTag::Push { lock, to, req } = tag else {
            return;
        };
        let replacement = {
            let Some(task) = self.pushes.get_mut(req) else {
                return;
            };
            if task.current != Some(*to) {
                return; // stale failure for an already-advanced push
            }
            task.current = None;
            let replacement = self
                .lock_members
                .get(lock)
                .and_then(|m| m.iter().copied().find(|s| !task.tried.contains(s)));
            if let Some(r) = replacement {
                // Put the replacement at the head of the queue; push_next
                // will pick it up.
                task.remaining.push_front(r);
            }
            replacement
        };
        if replacement.is_some() {
            self.stats.push_replacements += 1;
        }
        self.push_next(*req, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::Cmd;
    use crate::replica::replica_id;

    const ME: SiteId = SiteId(1);
    const HOME: SiteId = SiteId(0);
    const S2: SiteId = SiteId(2);
    const S3: SiteId = SiteId(3);
    const L: LockId = LockId(1);

    fn daemon() -> SiteDaemon {
        SiteDaemon::new(ME, HOME, CodecKind::ByteAtATime)
    }

    fn now() -> SimTime {
        SimTime::ZERO
    }

    fn spec(name: &str, data: &[i32]) -> ReplicaSpec {
        ReplicaSpec::new(name, ReplicaPayload::I32s(data.to_vec()))
    }

    fn sends(sink: &mut CmdSink) -> Vec<(SiteId, Msg)> {
        sink.drain()
            .into_iter()
            .filter_map(|c| match c {
                Cmd::Send { to, msg, .. } => Some((to, msg)),
                _ => None,
            })
            .collect()
    }

    fn signals(sink: &mut CmdSink) -> Vec<Signal> {
        sink.drain()
            .into_iter()
            .filter_map(|c| match c {
                Cmd::Signal(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn register_stores_initial_and_notifies_home() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[1, 2])], &mut sink);
        let msgs = sends(&mut sink);
        assert!(msgs
            .iter()
            .any(|(to, m)| *to == HOME
                && matches!(m, Msg::RegisterReplica { site, .. } if *site == ME)));
        assert_eq!(
            d.read(replica_id("idx")).unwrap(),
            &ReplicaPayload::I32s(vec![1, 2])
        );
    }

    #[test]
    fn write_and_read_roundtrip() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[0])], &mut sink);
        let id = replica_id("idx");
        d.write(id, ReplicaPayload::I32s(vec![9])).unwrap();
        assert_eq!(d.read(id).unwrap(), &ReplicaPayload::I32s(vec![9]));
    }

    #[test]
    fn unknown_replica_errors() {
        let mut d = daemon();
        let id = replica_id("nope");
        assert!(matches!(d.read(id), Err(MochaError::UnknownReplica { .. })));
        assert!(matches!(
            d.write(id, ReplicaPayload::empty()),
            Err(MochaError::UnknownReplica { .. })
        ));
    }

    #[test]
    fn transfer_directive_sends_data_to_dest() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[7])], &mut sink);
        sink.drain();
        d.on_msg(
            now(),
            HOME,
            Msg::TransferReplica {
                lock: L,
                dest: S2,
                version: Version(0),
                req: RequestId(5),
            },
            &mut sink,
        );
        let msgs = sends(&mut sink);
        let (to, data) = &msgs[0];
        assert_eq!(*to, S2);
        match data {
            Msg::ReplicaData {
                lock, updates, req, ..
            } => {
                assert_eq!(*lock, L);
                assert_eq!(updates.len(), 1);
                assert_eq!(*req, RequestId(5));
            }
            other => panic!("expected ReplicaData, got {other:?}"),
        }
        assert_eq!(d.stats().transfers_served, 1);
    }

    #[test]
    fn replica_data_applies_and_signals() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[0])], &mut sink);
        sink.drain();
        let id = replica_id("idx");
        d.on_msg(
            now(),
            S2,
            Msg::ReplicaData {
                lock: L,
                version: Version(3),
                updates: vec![ReplicaUpdate {
                    replica: id,
                    payload: ReplicaPayload::I32s(vec![42]),
                }],
                req: RequestId(0),
            },
            &mut sink,
        );
        assert_eq!(d.read(id).unwrap(), &ReplicaPayload::I32s(vec![42]));
        assert_eq!(d.version_of(L), Version(3));
        assert_eq!(
            signals(&mut sink),
            vec![Signal::DataArrived {
                lock: L,
                version: Version(3)
            }]
        );
    }

    #[test]
    fn stale_data_discarded_but_still_signals() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[0])], &mut sink);
        sink.drain();
        let id = replica_id("idx");
        d.on_msg(
            now(),
            S2,
            Msg::ReplicaData {
                lock: L,
                version: Version(5),
                updates: vec![ReplicaUpdate {
                    replica: id,
                    payload: ReplicaPayload::I32s(vec![5]),
                }],
                req: RequestId(0),
            },
            &mut sink,
        );
        sink.drain();
        d.on_msg(
            now(),
            S3,
            Msg::ReplicaData {
                lock: L,
                version: Version(2),
                updates: vec![ReplicaUpdate {
                    replica: id,
                    payload: ReplicaPayload::I32s(vec![2]),
                }],
                req: RequestId(0),
            },
            &mut sink,
        );
        // v2 < v5: value kept at 5, but the waiter still unblocks with the
        // freshest local version.
        assert_eq!(d.read(id).unwrap(), &ReplicaPayload::I32s(vec![5]));
        assert_eq!(d.stats().stale_updates_discarded, 1);
        assert_eq!(
            signals(&mut sink),
            vec![Signal::DataArrived {
                lock: L,
                version: Version(5)
            }]
        );
    }

    #[test]
    fn push_applies_acks_and_signals() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[0])], &mut sink);
        sink.drain();
        d.on_msg(
            now(),
            S2,
            Msg::PushUpdate {
                lock: L,
                version: Version(1),
                updates: vec![ReplicaUpdate {
                    replica: replica_id("idx"),
                    payload: ReplicaPayload::I32s(vec![1]),
                }],
                req: RequestId(9),
            },
            &mut sink,
        );
        let cmds = sink.drain();
        let acked = cmds.iter().any(|c| matches!(c,
            Cmd::Send { to, msg: Msg::PushAck { req, .. }, .. } if *to == S2 && *req == RequestId(9)));
        assert!(acked);
        assert!(cmds
            .iter()
            .any(|c| matches!(c, Cmd::Signal(Signal::DataArrived { .. }))));
    }

    #[test]
    fn disseminate_pushes_to_ur_minus_one_members() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[1])], &mut sink);
        // Learn about members S2, S3 via coordinator forwards.
        for s in [S2, S3] {
            d.on_msg(
                now(),
                HOME,
                Msg::RegisterReplica {
                    lock: L,
                    replica: replica_id("idx"),
                    site: s,
                    name: "idx".into(),
                },
                &mut sink,
            );
        }
        sink.drain();
        let targets = d.disseminate(L, Version(1), 3, &mut sink);
        assert_eq!(targets, vec![S2, S3]);
        // Sequential dissemination: only the first push goes out now.
        let msgs = sends(&mut sink);
        let pushed: Vec<SiteId> = msgs
            .iter()
            .filter_map(|(to, m)| matches!(m, Msg::PushUpdate { .. }).then_some(*to))
            .collect();
        assert_eq!(pushed, vec![S2]);
        assert_eq!(d.stats().pushes_sent, 1);
        assert_eq!(d.version_of(L), Version(1));
        // S2's ack releases the push to S3.
        d.on_msg(
            now(),
            S2,
            Msg::PushAck {
                lock: L,
                version: Version(1),
                site: S2,
                req: RequestId(1),
            },
            &mut sink,
        );
        let msgs = sends(&mut sink);
        let pushed: Vec<SiteId> = msgs
            .iter()
            .filter_map(|(to, m)| matches!(m, Msg::PushUpdate { .. }).then_some(*to))
            .collect();
        assert_eq!(pushed, vec![S3]);
        assert_eq!(d.stats().pushes_sent, 2);
    }

    #[test]
    fn ur_one_disseminates_nothing() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[1])], &mut sink);
        sink.drain();
        assert!(d.disseminate(L, Version(1), 1, &mut sink).is_empty());
        assert!(sends(&mut sink).is_empty());
    }

    #[test]
    fn all_push_acks_signal_completion() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[1])], &mut sink);
        for s in [S2, S3] {
            d.on_msg(
                now(),
                HOME,
                Msg::RegisterReplica {
                    lock: L,
                    replica: replica_id("idx"),
                    site: s,
                    name: "idx".into(),
                },
                &mut sink,
            );
        }
        sink.drain();
        d.disseminate(L, Version(1), 3, &mut sink);
        sink.drain();
        d.on_msg(
            now(),
            S2,
            Msg::PushAck {
                lock: L,
                version: Version(1),
                site: S2,
                req: RequestId(1),
            },
            &mut sink,
        );
        assert!(signals(&mut sink).is_empty(), "one ack outstanding");
        d.on_msg(
            now(),
            S3,
            Msg::PushAck {
                lock: L,
                version: Version(1),
                site: S3,
                req: RequestId(1),
            },
            &mut sink,
        );
        assert_eq!(
            signals(&mut sink),
            vec![Signal::PushesComplete {
                lock: L,
                acked: vec![S2, S3]
            }]
        );
    }

    #[test]
    fn failed_push_picks_replacement_target() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[1])], &mut sink);
        for s in [S2, S3] {
            d.on_msg(
                now(),
                HOME,
                Msg::RegisterReplica {
                    lock: L,
                    replica: replica_id("idx"),
                    site: s,
                    name: "idx".into(),
                },
                &mut sink,
            );
        }
        sink.drain();
        // UR=2: push to S2 only.
        let targets = d.disseminate(L, Version(1), 2, &mut sink);
        assert_eq!(targets, vec![S2]);
        sink.drain();
        // S2 is dead: the push fails.
        d.on_send_failed(
            &SendTag::Push {
                lock: L,
                to: S2,
                req: RequestId(1),
            },
            &mut sink,
        );
        let msgs = sends(&mut sink);
        // Replacement push went to S3.
        assert!(msgs
            .iter()
            .any(|(to, m)| *to == S3 && matches!(m, Msg::PushUpdate { .. })));
        assert_eq!(d.stats().push_replacements, 1);
    }

    #[test]
    fn exhausted_replacements_complete_the_task() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[1])], &mut sink);
        d.on_msg(
            now(),
            HOME,
            Msg::RegisterReplica {
                lock: L,
                replica: replica_id("idx"),
                site: S2,
                name: "idx".into(),
            },
            &mut sink,
        );
        sink.drain();
        d.disseminate(L, Version(1), 2, &mut sink);
        sink.drain();
        // Only candidate fails and nobody is left.
        d.on_send_failed(
            &SendTag::Push {
                lock: L,
                to: S2,
                req: RequestId(1),
            },
            &mut sink,
        );
        assert_eq!(
            signals(&mut sink),
            vec![Signal::PushesComplete {
                lock: L,
                acked: vec![]
            }]
        );
    }

    #[test]
    fn polls_answered_to_home() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.on_msg(
            now(),
            HOME,
            Msg::PollVersion {
                lock: L,
                req: RequestId(4),
            },
            &mut sink,
        );
        let msgs = sends(&mut sink);
        assert!(msgs.iter().any(|(to, m)| *to == HOME
            && matches!(m, Msg::PollResponse { req, .. } if *req == RequestId(4))));
        assert_eq!(d.stats().polls_answered, 1);
    }

    #[test]
    fn transfer_adopts_unregistered_replicas() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        let foreign = replica_id("createdElsewhere");
        d.on_msg(
            now(),
            S2,
            Msg::ReplicaData {
                lock: L,
                version: Version(1),
                updates: vec![ReplicaUpdate {
                    replica: foreign,
                    payload: ReplicaPayload::Utf8("hi".into()),
                }],
                req: RequestId(0),
            },
            &mut sink,
        );
        assert_eq!(d.read(foreign).unwrap(), &ReplicaPayload::Utf8("hi".into()));
    }
}
