//! The per-site daemon thread (paper §3 Figure 6, plus §4 dissemination).
//!
//! Every site runs one daemon. It has direct access to the site's shared
//! replica objects, which lets it:
//!
//! * serve `TRANSFERREPLICA` directives by marshaling the replicas
//!   associated with a lock and sending them straight to the requesting
//!   site (daemon-to-daemon, never through the coordinator);
//! * apply arriving replica data and pushed updates directly;
//! * answer the coordinator's failure-handling polls (`PollVersion`) and
//!   heartbeats;
//! * perform push-based dissemination at release time when `UR > 1`,
//!   choosing replacement targets when a push times out.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

use mocha_net::{ports, MsgClass};
use mocha_sim::{SimTime, Work};
use mocha_store::RecoveredState;
use mocha_wire::codec::CodecKind;
use mocha_wire::delta::PayloadDelta;
use mocha_wire::message::{ReplicaDeltaUpdate, ReplicaUpdate};
use mocha_wire::{LockId, Msg, ReplicaId, ReplicaPayload, RequestId, SiteId, Version};

use crate::cmd::{CmdSink, SendTag, Signal};
use crate::config::{FaultPlan, PushConfig};
use crate::directory::Directory;
use crate::error::MochaError;
use crate::replica::ReplicaSpec;

/// A dissemination task: one release's pushes.
///
/// By default pushes are **sequential and synchronous**: the daemon sends
/// to one target, waits for its `PushAck`, then moves to the next. This
/// matches the simple reliable-send loop of the paper's implementation and
/// is what makes the cost of keeping `UR` copies up to date scale linearly
/// in `UR` ("the overhead for consistency maintenance approximately
/// doubles" when UR goes from 1 to 2 — §5, Figure 12). With
/// [`PushConfig::pipeline`] the same task instead keeps **every** remaining
/// target in flight at once, so release latency is one RTT rather than
/// `UR × RTT`; per-target timeout/replacement semantics are identical in
/// both modes.
#[derive(Debug)]
struct PushTask {
    lock: LockId,
    version: Version,
    /// The values of this release, marshaled once (payloads Arc-shared
    /// with the store): every target receives the same snapshot even if
    /// the store advances mid-window.
    updates: Vec<ReplicaUpdate>,
    /// Targets awaiting acknowledgement (at most one unless pipelining).
    inflight: BTreeSet<SiteId>,
    /// Targets not yet pushed to, in order.
    remaining: VecDeque<SiteId>,
    /// Every site tried so far (successful or not), to avoid retrying the
    /// same dead target.
    tried: BTreeSet<SiteId>,
    /// Targets that acknowledged.
    acked: Vec<SiteId>,
}

/// The most recent edit script a release produced: turns the lock's
/// previous disseminated version into the current one. Push targets and
/// transfer destinations whose last-acked version equals `base` receive
/// this instead of the full payload.
#[derive(Debug)]
struct LockDelta {
    /// Version the scripts apply against.
    base: Version,
    /// Version the scripts produce.
    version: Version,
    /// Per-replica edit scripts.
    scripts: Vec<ReplicaDeltaUpdate>,
    /// Approximate wire size of the scripts.
    cost_bytes: usize,
    /// Wire size of the equivalent full payloads.
    full_bytes: usize,
}

/// Statistics the daemon accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Transfer directives served.
    pub transfers_served: u64,
    /// Replica data messages applied.
    pub updates_applied: u64,
    /// Stale (older-version) data messages discarded.
    pub stale_updates_discarded: u64,
    /// Pushes sent (including replacements and delta pushes).
    pub pushes_sent: u64,
    /// Push targets replaced after timeout.
    pub push_replacements: u64,
    /// Version polls answered.
    pub polls_answered: u64,
    /// Pushes and transfers sent as edit scripts instead of full payloads.
    pub delta_pushes_sent: u64,
    /// Payload bytes avoided by sending edit scripts (full size minus
    /// script size, summed over every delta send).
    pub delta_bytes_saved: u64,
    /// Delta sends refused by the receiver (stale base or failed apply),
    /// each answered with a full-payload resend.
    pub delta_nacks: u64,
    /// Replica payload bytes actually put on the wire by pushes and
    /// transfers (full sends count payload size, delta sends script size).
    pub replica_bytes_sent: u64,
    /// `StaleHome` redirects received: how often this site addressed a
    /// coordinator that had handed the lock off (directory mode only).
    pub home_corrections: u64,
}

/// The daemon thread's state machine.
#[derive(Debug)]
pub struct SiteDaemon {
    me: SiteId,
    home: SiteId,
    codec: CodecKind,
    /// Replica values, directly accessible (the paper registers shared
    /// objects with the local daemon). Payloads are Arc-shared with
    /// in-flight pushes and the delta shadow so dissemination never copies
    /// bytes.
    store: HashMap<ReplicaId, Arc<ReplicaPayload>>,
    names: HashMap<ReplicaId, String>,
    /// Replicas guarded by each lock.
    lock_replicas: HashMap<LockId, BTreeSet<ReplicaId>>,
    /// Known member sites per lock (maintained from coordinator
    /// registration forwards) — the dissemination candidate set.
    lock_members: HashMap<LockId, BTreeSet<SiteId>>,
    /// Newest version held locally per lock.
    lock_version: BTreeMap<LockId, Version>,
    pushes: HashMap<RequestId, PushTask>,
    /// Relay-ablation bookkeeping: transfers expected to pass through this
    /// (home) site on their way to the mapped destination.
    expect_relays: HashMap<RequestId, SiteId>,
    /// Last-writer-wins stamps for *unsynchronized* cached replicas
    /// (Lamport counter, publishing site).
    cache_stamps: HashMap<ReplicaId, (u64, SiteId)>,
    /// Local Lamport clock for cache publications.
    cache_clock: u64,
    next_req: RequestId,
    stats: DaemonStats,
    /// Deliberate faults for oracle testing (inert unless built with the
    /// `fault-injection` feature).
    faults: FaultPlan,
    /// Dissemination tuning (delta transfer, concurrent push window).
    push_cfg: PushConfig,
    /// Shadow copy per lock: the values as of the last disseminated
    /// version, diffed against at the next release (delta mode only;
    /// payloads Arc-shared with the store at snapshot time).
    shadow: HashMap<LockId, (Version, Vec<ReplicaUpdate>)>,
    /// The most recent release's edit script per lock (delta mode only).
    deltas: HashMap<LockId, LockDelta>,
    /// Last version each peer site acknowledged, per lock — the sender's
    /// basis for choosing delta over full transfer.
    acked_versions: HashMap<LockId, BTreeMap<SiteId, Version>>,
    /// Whether this site has a durable store attached. When set, every
    /// applied or released version emits a [`Cmd::Persist`] for the driver
    /// to append to the write-ahead log. Off by default: non-durable sites
    /// emit nothing and behave byte-identically to before.
    ///
    /// [`Cmd::Persist`]: crate::cmd::Cmd::Persist
    durable: bool,
    /// Consistent-hash object directory, when the cluster runs with
    /// [`HomeConfig::hash_directory`](crate::config::HomeConfig): decides
    /// which coordinator this site's lock traffic is addressed to, and
    /// absorbs `HomeUpdate` gossip and `StaleHome` corrections. `None` in
    /// the paper-faithful single-home mode — every routing fall back is
    /// then the fixed `home`.
    directory: Option<Directory>,
}

impl SiteDaemon {
    /// Creates the daemon for site `me`, with the coordinator at `home`.
    pub fn new(me: SiteId, home: SiteId, codec: CodecKind) -> SiteDaemon {
        SiteDaemon {
            me,
            home,
            codec,
            store: HashMap::new(),
            names: HashMap::new(),
            lock_replicas: HashMap::new(),
            lock_members: HashMap::new(),
            lock_version: BTreeMap::new(),
            pushes: HashMap::new(),
            expect_relays: HashMap::new(),
            cache_stamps: HashMap::new(),
            cache_clock: 0,
            next_req: RequestId(1),
            stats: DaemonStats::default(),
            faults: FaultPlan::default(),
            push_cfg: PushConfig::default(),
            shadow: HashMap::new(),
            deltas: HashMap::new(),
            acked_versions: HashMap::new(),
            durable: false,
            directory: None,
        }
    }

    /// Installs the consistent-hash object directory. Lock traffic from
    /// this site then routes per lock instead of to the fixed home.
    pub fn install_directory(&mut self, dir: Directory) {
        self.directory = Some(dir);
    }

    /// The directory, when one is installed.
    pub fn directory(&self) -> Option<&Directory> {
        self.directory.as_ref()
    }

    /// The coordinator responsible for `lock` according to the local
    /// directory, or `None` in single-home mode (callers fall back to the
    /// fixed [`home`](SiteDaemon::home)). A hint, never an authority: a
    /// stale answer is corrected by the coordinator's `StaleHome` NACK.
    pub fn home_for(&self, lock: LockId) -> Option<SiteId> {
        self.directory.as_ref().and_then(|d| d.home_of(lock))
    }

    /// Where this daemon addresses coordinator traffic for `lock`.
    fn sync_home(&self, lock: LockId) -> SiteId {
        self.home_for(lock).unwrap_or(self.home)
    }

    /// Adds a site to the directory ring on membership growth. No-op in
    /// single-home mode.
    ///
    /// The newcomer has no coordinator state, so every lock this daemon
    /// already knows is pinned at its pre-join home with a local override:
    /// traffic keeps flowing to the coordinator that actually holds the
    /// state instead of bouncing off the empty newcomer. The pin sits at
    /// the lock's current epoch, so the coordinators' own `HomeUpdate`
    /// gossip (same or newer epoch) confirms or corrects it.
    pub fn add_ring_site(&mut self, site: SiteId) {
        let Some(dir) = &mut self.directory else {
            return;
        };
        let known: BTreeSet<LockId> = self
            .lock_members
            .keys()
            .copied()
            .chain(self.lock_version.keys().copied())
            .collect();
        let before: Vec<(LockId, SiteId)> = known
            .iter()
            .filter_map(|&lock| dir.home_of(lock).map(|home| (lock, home)))
            .collect();
        dir.add_site(site);
        for (lock, old_home) in before {
            if dir.home_of(lock) != Some(old_home) {
                let epoch = dir.epoch_of(lock);
                dir.record(lock, old_home, epoch);
            }
        }
    }

    /// Drops a departed site from the directory ring, returning the locks
    /// whose migrated home just died (they fall back to ring placement and
    /// need coordinator-side re-homing). No-op in single-home mode.
    ///
    /// For every known lock whose home just moved, this daemon re-announces
    /// its newest version (`SiteRecovered`) to the lock's new ring home —
    /// the raw material the inheriting coordinator's state rebuild polls
    /// and adopts, so a survivor holding a stale replica is never told it
    /// is current.
    pub fn remove_ring_site(&mut self, site: SiteId, sink: &mut CmdSink) -> Vec<LockId> {
        let Some(dir) = &mut self.directory else {
            return Vec::new();
        };
        let known: BTreeSet<LockId> = self
            .lock_members
            .keys()
            .copied()
            .chain(self.lock_version.keys().copied())
            .collect();
        let displaced: Vec<LockId> = known
            .iter()
            .copied()
            .filter(|&lock| dir.home_of(lock) == Some(site))
            .collect();
        let orphaned = dir.remove_site(site);
        let mut by_home: BTreeMap<SiteId, Vec<(LockId, Version)>> = BTreeMap::new();
        for lock in displaced {
            let Some(new_home) = dir.home_of(lock) else {
                continue;
            };
            let version = self
                .lock_version
                .get(&lock)
                .copied()
                .unwrap_or(Version::INITIAL);
            by_home.entry(new_home).or_default().push((lock, version));
        }
        for (home, versions) in by_home {
            sink.send(
                home,
                ports::SYNC,
                Msg::SiteRecovered {
                    site: self.me,
                    versions,
                },
                MsgClass::Control,
            );
        }
        orphaned
    }

    /// Marks this daemon as having a durable store attached, without any
    /// recovered state (a fresh durable site). Applied and released
    /// versions will emit [`Cmd::Persist`](crate::cmd::Cmd::Persist).
    pub fn mark_durable(&mut self) {
        self.durable = true;
    }

    /// Pre-seeds the daemon from state recovered off stable storage
    /// (snapshot + write-ahead log replay) and announces the recovered
    /// versions to the coordinator, so holders can ship
    /// `(recovered → current)` edit scripts instead of full payloads when
    /// this site next needs data. Must run before [`register_local`]
    /// re-registers the site's replicas: registration's `or_insert_with`
    /// keeps recovered values over initial ones.
    ///
    /// Marks the daemon durable as a side effect.
    ///
    /// [`register_local`]: SiteDaemon::register_local
    pub fn restore(&mut self, recovered: &RecoveredState, sink: &mut CmdSink) {
        self.durable = true;
        for (lock, version) in &recovered.lock_versions {
            let mut version = *version;
            // Mutant-harness hook: replaying a stale WAL (one release
            // behind what the site actually held) must trip the oracle's
            // VersionRegression invariant across the incarnation boundary.
            if self.faults.active().stale_recovery && version > Version::INITIAL {
                version = Version(version.0 - 1);
            }
            self.lock_version.insert(*lock, version);
        }
        for (lock, replicas) in &recovered.replicas {
            self.lock_members.entry(*lock).or_default().insert(self.me);
            for (id, payload) in replicas {
                self.store.insert(*id, Arc::new(payload.clone()));
                self.lock_replicas.entry(*lock).or_default().insert(*id);
            }
        }
        // In directory mode different locks live at different coordinators:
        // group the recovered versions per home and announce to each. The
        // single-home path collapses to one message to the fixed home.
        let mut by_home: BTreeMap<SiteId, Vec<(LockId, Version)>> = BTreeMap::new();
        for (lock, version) in &self.lock_version {
            if *version > Version::INITIAL {
                by_home
                    .entry(self.sync_home(*lock))
                    .or_default()
                    .push((*lock, *version));
            }
        }
        for (home, versions) in by_home {
            sink.send(
                home,
                ports::SYNC,
                Msg::SiteRecovered {
                    site: self.me,
                    versions,
                },
                MsgClass::Control,
            );
        }
    }

    /// Emits a [`Cmd::Persist`](crate::cmd::Cmd::Persist) recording the
    /// current `(lock, version, full payloads)` statement, if a durable
    /// store is attached.
    fn persist_state(&self, lock: LockId, sink: &mut CmdSink) {
        if self.durable {
            sink.persist(lock, self.version_of(lock), self.snapshot_for(lock));
        }
    }

    /// Installs the deliberate-fault plan (mutant harness only; the flags
    /// are inert unless built with the `fault-injection` feature).
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// Installs the dissemination tuning (delta transfer, concurrent push
    /// window). Defaults to the paper-faithful sequential/full behaviour.
    pub fn set_push_options(&mut self, push: PushConfig) {
        self.push_cfg = push;
    }

    /// Total push targets currently awaiting acknowledgement across all
    /// in-flight dissemination tasks (the pipeline window occupancy).
    pub fn inflight_pushes(&self) -> usize {
        self.pushes.values().map(|t| t.inflight.len()).sum()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DaemonStats {
        self.stats
    }

    /// This site's id.
    pub fn site(&self) -> SiteId {
        self.me
    }

    /// The coordinator's current location as known locally — application
    /// threads "query the local daemon thread to obtain the location of
    /// the newly created surrogate synchronization thread" (§4).
    pub fn home(&self) -> SiteId {
        self.home
    }

    /// Newest locally held version for `lock`.
    pub fn version_of(&self, lock: LockId) -> Version {
        self.lock_version
            .get(&lock)
            .copied()
            .unwrap_or(Version::INITIAL)
    }

    /// Every (lock, newest local version) pair, sorted by lock id — the
    /// invariant oracle's view of this daemon.
    pub fn versions(&self) -> Vec<(LockId, Version)> {
        self.lock_version.iter().map(|(l, v)| (*l, *v)).collect()
    }

    /// Feeds the daemon's protocol-relevant state into `h`, in a
    /// deterministic order, for explorer state fingerprinting.
    pub fn hash_state(&self, h: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        self.me.hash(h);
        self.home.hash(h);
        // lock_version is a BTreeMap: iteration order is deterministic.
        for (lock, version) in &self.lock_version {
            lock.hash(h);
            version.hash(h);
            // Where this daemon would route the lock, and behind which
            // fence: two states that differ only in directory knowledge
            // behave differently and must fingerprint differently.
            if let Some(dir) = &self.directory {
                dir.home_of(*lock).hash(h);
                dir.epoch_of(*lock).hash(h);
            }
        }
        // Replica contents, via their wire encoding (payloads hold f64s
        // and so cannot derive Hash). Entries are collected and key-sorted
        // because the maps are HashMaps with arbitrary iteration order.
        let mut replicas: Vec<_> = self.store.iter().collect();
        replicas.sort_unstable_by_key(|(id, _)| *id);
        for (id, payload) in replicas {
            id.hash(h);
            let mut w = mocha_wire::io::ByteWriter::new();
            payload.encode(&mut w);
            w.into_bytes().hash(h);
        }
        // In-flight pushes decide which acks advance the dissemination.
        let mut pushes: Vec<_> = self.pushes.iter().collect();
        pushes.sort_unstable_by_key(|(req, _)| *req);
        for (req, task) in pushes {
            req.hash(h);
            task.lock.hash(h);
            task.version.hash(h);
            // BTreeSet: deterministic iteration order.
            for s in &task.inflight {
                s.hash(h);
            }
            task.remaining.hash(h);
            task.acked.hash(h);
        }
        // Delta-sender state decides whether the next release ships a
        // script or a full payload.
        let mut shadows: Vec<_> = self.shadow.iter().collect();
        shadows.sort_unstable_by_key(|(lock, _)| *lock);
        for (lock, (version, _)) in shadows {
            lock.hash(h);
            version.hash(h);
        }
        let mut deltas: Vec<_> = self.deltas.iter().collect();
        deltas.sort_unstable_by_key(|(lock, _)| *lock);
        for (lock, d) in deltas {
            lock.hash(h);
            d.base.hash(h);
            d.version.hash(h);
            d.cost_bytes.hash(h);
        }
        let mut acked: Vec<_> = self.acked_versions.iter().collect();
        acked.sort_unstable_by_key(|(lock, _)| *lock);
        for (lock, table) in acked {
            lock.hash(h);
            for (site, version) in table {
                site.hash(h);
                version.hash(h);
            }
        }
    }

    /// Reads a replica's current local value.
    ///
    /// # Errors
    ///
    /// Returns [`MochaError::UnknownReplica`] if never registered here.
    pub fn read(&self, replica: ReplicaId) -> Result<&ReplicaPayload, MochaError> {
        self.store
            .get(&replica)
            .map(Arc::as_ref)
            .ok_or(MochaError::UnknownReplica { replica })
    }

    /// Overwrites a replica's local value (caller must hold the guarding
    /// lock; the application layer enforces that).
    ///
    /// # Errors
    ///
    /// Returns [`MochaError::UnknownReplica`] if never registered here.
    pub fn write(&mut self, replica: ReplicaId, payload: ReplicaPayload) -> Result<(), MochaError> {
        match self.store.get_mut(&replica) {
            Some(slot) => {
                *slot = Arc::new(payload);
                Ok(())
            }
            None => Err(MochaError::UnknownReplica { replica }),
        }
    }

    /// Registers replicas guarded by `lock` at this site, with initial
    /// values, and announces the registration to the coordinator.
    pub fn register_local(&mut self, lock: LockId, specs: &[ReplicaSpec], sink: &mut CmdSink) {
        self.lock_members.entry(lock).or_default().insert(self.me);
        let home = self.sync_home(lock);
        for spec in specs {
            let id = spec.id();
            self.store
                .entry(id)
                .or_insert_with(|| Arc::new(spec.initial.clone()));
            self.names.insert(id, spec.name.clone());
            self.lock_replicas.entry(lock).or_default().insert(id);
            sink.send(
                home,
                ports::SYNC,
                Msg::RegisterReplica {
                    lock,
                    replica: id,
                    site: self.me,
                    name: spec.name.clone(),
                },
                MsgClass::Control,
            );
        }
    }

    /// The lock guarding `replica`, if any is known locally.
    pub fn lock_of(&self, replica: ReplicaId) -> Option<LockId> {
        self.lock_replicas
            .iter()
            .find(|(_, ids)| ids.contains(&replica))
            .map(|(lock, _)| *lock)
    }

    /// Registered member sites of `lock` as known locally.
    pub fn members_of(&self, lock: LockId) -> Vec<SiteId> {
        self.lock_members
            .get(&lock)
            .map(|m| m.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Snapshots the current values of `lock`'s replicas. Payloads are
    /// Arc-shared with the store: no bytes are copied.
    fn snapshot_for(&self, lock: LockId) -> Vec<ReplicaUpdate> {
        self.lock_replicas
            .get(&lock)
            .map(|ids| {
                ids.iter()
                    .filter_map(|id| {
                        self.store
                            .get(id)
                            .map(|p| ReplicaUpdate::shared(*id, p.clone()))
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Marshals the current values of `lock`'s replicas, charging the
    /// configured codec's cost.
    fn marshal_for(&self, lock: LockId, sink: &mut CmdSink) -> Vec<ReplicaUpdate> {
        let updates = self.snapshot_for(lock);
        let cost = self.codec.marshaller().marshal_cost(&updates);
        sink.charge(Work::marshal_ops(cost.ops));
        updates
    }

    /// Total payload data bytes across `updates`.
    fn payload_bytes(updates: &[ReplicaUpdate]) -> u64 {
        updates.iter().map(|u| u.payload.data_bytes() as u64).sum()
    }

    /// Charges the unmarshal cost for received updates.
    fn charge_unmarshal(&self, updates: &[ReplicaUpdate], sink: &mut CmdSink) {
        let bytes: usize = updates.iter().map(|u| u.payload.data_bytes()).sum();
        let cost = self.codec.marshaller().unmarshal_cost(bytes, updates.len());
        sink.charge(Work::marshal_ops(cost.ops));
    }

    /// Applies replica data if it is at least as new as what we hold.
    /// Returns whether it was applied.
    fn apply(&mut self, lock: LockId, version: Version, updates: Vec<ReplicaUpdate>) -> bool {
        let local = self.version_of(lock);
        // Mutant-harness hook: dropping the staleness guard lets reordered
        // deliveries regress the local version (the bug the oracle's
        // VersionRegression invariant exists to catch).
        if version < local && !self.faults.active().accept_any_version {
            self.stats.stale_updates_discarded += 1;
            return false;
        }
        debug_assert!(
            version >= local || self.faults.active().accept_any_version,
            "daemon {me} applying {version:?} over newer local {local:?} for {lock}",
            me = self.me
        );
        for u in updates {
            // Transfers can carry replicas not yet registered locally
            // (another site created them); adopt them.
            self.store.insert(u.replica, u.payload);
            self.lock_replicas
                .entry(lock)
                .or_default()
                .insert(u.replica);
        }
        self.lock_version.insert(lock, version);
        self.stats.updates_applied += 1;
        true
    }

    /// Publishes the current local value of an *unsynchronized* cached
    /// replica to every registered member — the paper's §7 future work
    /// (non-synchronization-based consistency, Bayou/Rover-style). Updates
    /// are ordered by (Lamport counter, site): concurrent publications
    /// converge to the same last-writer-wins value everywhere.
    ///
    /// # Errors
    ///
    /// Returns [`MochaError::UnknownReplica`] if the replica is not
    /// registered here.
    pub fn publish(&mut self, replica: ReplicaId, sink: &mut CmdSink) -> Result<(), MochaError> {
        let payload = self.read(replica)?.clone();
        self.cache_clock += 1;
        let stamp = (self.cache_clock, self.me);
        self.cache_stamps.insert(replica, stamp);
        let lock = self.lock_of(replica).unwrap_or(crate::app::UNGUARDED);
        let members: Vec<SiteId> = self
            .lock_members
            .get(&lock)
            .map(|m| m.iter().copied().filter(|s| *s != self.me).collect())
            .unwrap_or_default();
        for member in members {
            sink.send(
                member,
                ports::DAEMON,
                Msg::CacheUpdate {
                    replica,
                    counter: stamp.0,
                    origin: self.me,
                    payload: payload.clone(),
                },
                MsgClass::Bulk,
            );
        }
        Ok(())
    }

    /// The LWW stamp of a cached replica, if it was ever published.
    pub fn cache_stamp(&self, replica: ReplicaId) -> Option<(u64, SiteId)> {
        self.cache_stamps.get(&replica).copied()
    }

    /// Performs push-based dissemination at release time (§4): sends the
    /// new value to `ur - 1` other member sites. Returns the target list
    /// (reported to the coordinator in the release message).
    pub fn disseminate(
        &mut self,
        lock: LockId,
        new_version: Version,
        ur: usize,
        sink: &mut CmdSink,
    ) -> Vec<SiteId> {
        self.lock_version.insert(lock, new_version);
        self.persist_state(lock, sink);
        if ur <= 1 {
            return Vec::new();
        }
        let candidates: Vec<SiteId> = self
            .lock_members
            .get(&lock)
            .map(|m| m.iter().copied().filter(|s| *s != self.me).collect())
            .unwrap_or_default();
        let targets: Vec<SiteId> = candidates.iter().copied().take(ur - 1).collect();
        if targets.is_empty() {
            return Vec::new();
        }
        // Snapshot the release's values once; every target receives this
        // snapshot even if the store advances mid-window.
        let updates = self.snapshot_for(lock);
        if self.push_cfg.pipeline {
            // Pipelined dissemination marshals the window once. (The
            // sequential default instead charges per destination inside
            // `send_push`, matching the paper's per-send pack loop.)
            let cost = self.codec.marshaller().marshal_cost(&updates);
            sink.charge(Work::marshal_ops(cost.ops));
        }
        if self.push_cfg.delta {
            self.refresh_delta(lock, new_version, &updates);
        }
        let req = self.next_req;
        self.next_req = self.next_req.next();
        let mut task = PushTask {
            lock,
            version: new_version,
            updates,
            inflight: BTreeSet::new(),
            remaining: targets.iter().copied().collect(),
            tried: BTreeSet::new(),
            acked: Vec::new(),
        };
        task.tried.insert(self.me);
        self.pushes.insert(req, task);
        self.fill_window(req, sink);
        targets
    }

    /// Diffs the release's values against the lock's shadow copy, records
    /// the edit script for delta-eligible sends, and advances the shadow
    /// (delta mode only).
    fn refresh_delta(&mut self, lock: LockId, version: Version, updates: &[ReplicaUpdate]) {
        if let Some((base, prev)) = self.shadow.get(&lock) {
            let scripts = Self::diff_updates(prev, updates);
            match scripts {
                Some(scripts) => {
                    let cost_bytes: usize = scripts.iter().map(|s| s.delta.cost_bytes()).sum();
                    let full_bytes = Self::payload_bytes(updates) as usize;
                    if cost_bytes < full_bytes {
                        self.deltas.insert(
                            lock,
                            LockDelta {
                                base: *base,
                                version,
                                scripts,
                                cost_bytes,
                                full_bytes,
                            },
                        );
                    } else {
                        self.deltas.remove(&lock);
                    }
                }
                None => {
                    self.deltas.remove(&lock);
                }
            }
        }
        self.shadow.insert(lock, (version, updates.to_vec()));
    }

    /// Per-replica edit scripts turning `prev` into `next`, or `None` when
    /// the replica sets differ or any payload pair cannot be diffed.
    fn diff_updates(
        prev: &[ReplicaUpdate],
        next: &[ReplicaUpdate],
    ) -> Option<Vec<ReplicaDeltaUpdate>> {
        if prev.len() != next.len() {
            return None;
        }
        prev.iter()
            .zip(next)
            .map(|(a, b)| {
                if a.replica != b.replica {
                    return None;
                }
                PayloadDelta::diff(&a.payload, &b.payload).map(|delta| ReplicaDeltaUpdate {
                    replica: b.replica,
                    delta,
                })
            })
            .collect()
    }

    /// Whether a send to `target` about `lock` at `version` can go as the
    /// recorded edit script instead of the full payload.
    fn delta_eligible(&self, lock: LockId, version: Version, target: SiteId) -> bool {
        self.push_cfg.delta
            && self.deltas.get(&lock).is_some_and(|d| {
                d.version == version
                    && self.acked_versions.get(&lock).and_then(|m| m.get(&target)) == Some(&d.base)
            })
    }

    /// Starts pushes of task `req` until the window is full (one target in
    /// sequential mode, every remaining target when pipelining), or signals
    /// completion when no targets are left anywhere.
    fn fill_window(&mut self, req: RequestId, sink: &mut CmdSink) {
        let window = if self.push_cfg.pipeline {
            usize::MAX
        } else {
            1
        };
        loop {
            let Some(task) = self.pushes.get_mut(&req) else {
                return;
            };
            if task.inflight.is_empty() && task.remaining.is_empty() {
                if let Some(task) = self.pushes.remove(&req) {
                    sink.signal(Signal::PushesComplete {
                        lock: task.lock,
                        acked: task.acked,
                    });
                }
                return;
            }
            if task.inflight.len() >= window {
                return;
            }
            let Some(target) = task.remaining.pop_front() else {
                return;
            };
            task.tried.insert(target);
            task.inflight.insert(target);
            self.send_push(req, target, sink);
        }
    }

    /// Sends one push of task `req` to `target`, as an edit script when the
    /// target's last-acked version matches the recorded delta base, as the
    /// full payload otherwise.
    fn send_push(&mut self, req: RequestId, target: SiteId, sink: &mut CmdSink) {
        let Some(task) = self.pushes.get(&req) else {
            return;
        };
        let (lock, version, updates) = (task.lock, task.version, task.updates.clone());
        self.stats.pushes_sent += 1;
        if self.delta_eligible(lock, version, target) {
            // delta_eligible guarantees the entry; fall through to the
            // full-payload push if it is somehow gone.
            if let Some(d) = self.deltas.get(&lock) {
                let cost = self
                    .codec
                    .marshaller()
                    .unmarshal_cost(d.cost_bytes, d.scripts.len());
                sink.charge(Work::marshal_ops(cost.ops));
                self.stats.delta_pushes_sent += 1;
                self.stats.delta_bytes_saved += (d.full_bytes - d.cost_bytes) as u64;
                self.stats.replica_bytes_sent += d.cost_bytes as u64;
                sink.send_tagged(
                    target,
                    ports::DAEMON,
                    Msg::PushDelta {
                        lock,
                        base_version: d.base,
                        version,
                        deltas: d.scripts.clone(),
                        req,
                    },
                    MsgClass::Bulk,
                    SendTag::Push {
                        lock,
                        to: target,
                        req,
                    },
                );
                return;
            }
        }
        if !self.push_cfg.pipeline {
            // Re-marshaled per destination, as a per-send pack loop would.
            let cost = self.codec.marshaller().marshal_cost(&updates);
            sink.charge(Work::marshal_ops(cost.ops));
        }
        self.stats.replica_bytes_sent += Self::payload_bytes(&updates);
        sink.send_tagged(
            target,
            ports::DAEMON,
            Msg::PushUpdate {
                lock,
                version,
                updates,
                req,
            },
            MsgClass::Bulk,
            SendTag::Push {
                lock,
                to: target,
                req,
            },
        );
    }

    /// Applies per-replica edit scripts atomically: either every script
    /// matches a locally held base of the right shape and the whole set
    /// commits, or nothing changes. Returns whether it committed.
    fn try_apply_delta(
        &mut self,
        lock: LockId,
        version: Version,
        deltas: &[ReplicaDeltaUpdate],
    ) -> bool {
        let mut next = Vec::with_capacity(deltas.len());
        for d in deltas {
            let Some(base) = self.store.get(&d.replica) else {
                return false;
            };
            match d.delta.apply(base) {
                Ok(p) => next.push((d.replica, p)),
                Err(_) => return false,
            }
        }
        for (id, p) in next {
            self.store.insert(id, Arc::new(p));
            self.lock_replicas.entry(lock).or_default().insert(id);
        }
        self.lock_version.insert(lock, version);
        self.stats.updates_applied += 1;
        true
    }

    /// Charges the unmarshal cost of a received edit-script set.
    fn charge_delta_unmarshal(&self, deltas: &[ReplicaDeltaUpdate], sink: &mut CmdSink) {
        let bytes: usize = deltas.iter().map(|d| d.delta.cost_bytes()).sum();
        let cost = self.codec.marshaller().unmarshal_cost(bytes, deltas.len());
        sink.charge(Work::marshal_ops(cost.ops));
    }

    /// Handles a protocol message addressed to the DAEMON port.
    pub fn on_msg(&mut self, _now: SimTime, from: SiteId, msg: Msg, sink: &mut CmdSink) {
        sink.charge(Work::events(1));
        match msg {
            Msg::TransferReplica {
                lock,
                dest,
                version: _,
                req,
            } => {
                self.stats.transfers_served += 1;
                let version = self.version_of(lock);
                // delta_eligible guarantees the entry; fall through to the
                // full transfer if it is somehow gone.
                if self.delta_eligible(lock, version, dest) {
                    if let Some(d) = self.deltas.get(&lock) {
                        self.stats.delta_pushes_sent += 1;
                        self.stats.delta_bytes_saved += (d.full_bytes - d.cost_bytes) as u64;
                        self.stats.replica_bytes_sent += d.cost_bytes as u64;
                        let cost = self
                            .codec
                            .marshaller()
                            .unmarshal_cost(d.cost_bytes, d.scripts.len());
                        sink.charge(Work::marshal_ops(cost.ops));
                        sink.send(
                            dest,
                            ports::DAEMON,
                            Msg::ReplicaDelta {
                                lock,
                                base_version: d.base,
                                version,
                                deltas: d.scripts.clone(),
                                req,
                            },
                            MsgClass::Bulk,
                        );
                        return;
                    }
                }
                let updates = self.marshal_for(lock, sink);
                self.stats.replica_bytes_sent += Self::payload_bytes(&updates);
                sink.send(
                    dest,
                    ports::DAEMON,
                    Msg::ReplicaData {
                        lock,
                        version,
                        updates,
                        req,
                    },
                    MsgClass::Bulk,
                );
            }
            Msg::ReplicaData {
                lock,
                version,
                updates,
                req,
            } => {
                if let Some(dest) = self.expect_relays.remove(&req) {
                    if dest != self.me {
                        // Relay ablation: store-and-forward through this
                        // site. Pays a full unmarshal + remarshal.
                        self.charge_unmarshal(&updates, sink);
                        let cost = self.codec.marshaller().marshal_cost(&updates);
                        sink.charge(Work::marshal_ops(cost.ops));
                        sink.send(
                            dest,
                            ports::DAEMON,
                            Msg::ReplicaData {
                                lock,
                                version,
                                updates,
                                req,
                            },
                            MsgClass::Bulk,
                        );
                        return;
                    }
                }
                self.charge_unmarshal(&updates, sink);
                if self.apply(lock, version, updates) {
                    self.persist_state(lock, sink);
                }
                // Even stale data unblocks a waiter: it is the freshest
                // available (weakened consistency path).
                let local = self.version_of(lock);
                sink.signal(Signal::DataArrived {
                    lock,
                    version: local,
                });
            }
            Msg::PushUpdate {
                lock,
                version,
                updates,
                req,
            } => {
                self.charge_unmarshal(&updates, sink);
                let applied = self.apply(lock, version, updates);
                if applied {
                    self.persist_state(lock, sink);
                }
                sink.send(
                    from,
                    ports::DAEMON,
                    Msg::PushAck {
                        lock,
                        version,
                        site: self.me,
                        req,
                    },
                    MsgClass::Control,
                );
                if applied {
                    sink.signal(Signal::DataArrived { lock, version });
                }
            }
            Msg::PushDelta {
                lock,
                base_version,
                version,
                deltas,
                req,
            } => {
                let local = self.version_of(lock);
                if local == base_version && self.try_apply_delta(lock, version, &deltas) {
                    self.charge_delta_unmarshal(&deltas, sink);
                    self.persist_state(lock, sink);
                    sink.send(
                        from,
                        ports::DAEMON,
                        Msg::PushAck {
                            lock,
                            version,
                            site: self.me,
                            req,
                        },
                        MsgClass::Control,
                    );
                    sink.signal(Signal::DataArrived { lock, version });
                } else {
                    // Wrong base (or unappliable script): ask the sender
                    // for the full payload. No ack yet — the sender keeps
                    // this target in flight and resends.
                    sink.send(
                        from,
                        ports::DAEMON,
                        Msg::DeltaNack {
                            lock,
                            site: self.me,
                            have: local,
                            req,
                        },
                        MsgClass::Control,
                    );
                }
            }
            Msg::ReplicaDelta {
                lock,
                base_version,
                version,
                deltas,
                req,
            } => {
                if let Some(dest) = self.expect_relays.get(&req).copied() {
                    if dest != self.me {
                        // Relays cannot forward edit scripts they have no
                        // base for: NACK back to a full transfer. The relay
                        // mapping stays for the resent ReplicaData.
                        sink.send(
                            from,
                            ports::DAEMON,
                            Msg::DeltaNack {
                                lock,
                                site: self.me,
                                have: self.version_of(lock),
                                req,
                            },
                            MsgClass::Control,
                        );
                        return;
                    }
                    self.expect_relays.remove(&req);
                }
                let local = self.version_of(lock);
                if local == base_version && self.try_apply_delta(lock, version, &deltas) {
                    self.charge_delta_unmarshal(&deltas, sink);
                    self.persist_state(lock, sink);
                    sink.signal(Signal::DataArrived { lock, version });
                } else {
                    // No DataArrived: the full data is on its way back.
                    sink.send(
                        from,
                        ports::DAEMON,
                        Msg::DeltaNack {
                            lock,
                            site: self.me,
                            have: local,
                            req,
                        },
                        MsgClass::Control,
                    );
                }
            }
            Msg::DeltaNack {
                lock,
                site,
                have,
                req,
            } => {
                self.stats.delta_nacks += 1;
                // The refuser's actual version informs future delta choices.
                self.acked_versions
                    .entry(lock)
                    .or_default()
                    .insert(site, have);
                let live = self
                    .pushes
                    .get(&req)
                    .filter(|t| t.lock == lock && t.inflight.contains(&site))
                    .map(|t| (t.version, t.updates.clone()));
                if let Some((version, updates)) = live {
                    // Push path: resend this release's snapshot as a full
                    // payload; the target stays in flight until it acks.
                    if !self.push_cfg.pipeline {
                        let cost = self.codec.marshaller().marshal_cost(&updates);
                        sink.charge(Work::marshal_ops(cost.ops));
                    }
                    self.stats.pushes_sent += 1;
                    self.stats.replica_bytes_sent += Self::payload_bytes(&updates);
                    sink.send_tagged(
                        site,
                        ports::DAEMON,
                        Msg::PushUpdate {
                            lock,
                            version,
                            updates,
                            req,
                        },
                        MsgClass::Bulk,
                        SendTag::Push {
                            lock,
                            to: site,
                            req,
                        },
                    );
                } else {
                    // Transfer path: fresh full ReplicaData under the same
                    // request id (so a pending relay mapping still matches).
                    let updates = self.marshal_for(lock, sink);
                    let version = self.version_of(lock);
                    self.stats.replica_bytes_sent += Self::payload_bytes(&updates);
                    sink.send(
                        from,
                        ports::DAEMON,
                        Msg::ReplicaData {
                            lock,
                            version,
                            updates,
                            req,
                        },
                        MsgClass::Bulk,
                    );
                }
            }
            Msg::PushAck {
                lock,
                version,
                req,
                site,
            } => {
                // Even a stale ack proves the peer holds `version`.
                let slot = self
                    .acked_versions
                    .entry(lock)
                    .or_default()
                    .entry(site)
                    .or_insert(version);
                if version > *slot {
                    *slot = version;
                }
                let advance = self.pushes.get_mut(&req).is_some_and(|task| {
                    if task.inflight.remove(&site) {
                        task.acked.push(site);
                        true
                    } else {
                        false
                    }
                });
                if advance {
                    self.fill_window(req, sink);
                }
            }
            Msg::PollVersion { lock, req } => {
                self.stats.polls_answered += 1;
                // Answer the coordinator that asked: in directory mode the
                // poll can come from any site's coordinator, not the fixed
                // home (legacy: `from` and `home` coincide).
                sink.send(
                    from,
                    ports::SYNC,
                    Msg::PollResponse {
                        lock,
                        version: self.version_of(lock),
                        site: self.me,
                        req,
                    },
                    MsgClass::Control,
                );
            }
            Msg::CacheUpdate {
                replica,
                counter,
                origin,
                payload,
            } => {
                // Lamport clock advance + last-writer-wins merge.
                self.cache_clock = self.cache_clock.max(counter);
                let incoming = (counter, origin);
                let apply = self
                    .cache_stamps
                    .get(&replica)
                    .is_none_or(|local| incoming > *local);
                if apply {
                    self.cache_stamps.insert(replica, incoming);
                    self.store.insert(replica, Arc::new(payload));
                    self.stats.updates_applied += 1;
                } else {
                    self.stats.stale_updates_discarded += 1;
                }
            }
            Msg::SiteRecovered { site, versions } => {
                // Coordinator forward: a rebooted durable peer holds
                // exactly these versions now — whatever it acked in its
                // previous incarnation is moot. Recording them lets the
                // next transfer or push to it go as an edit script off the
                // recovered base; a mismatch just NACKs back to a full
                // transfer.
                for (lock, version) in versions {
                    self.acked_versions
                        .entry(lock)
                        .or_default()
                        .insert(site, version);
                }
            }
            Msg::ExpectRelay { dest, req, .. } => {
                self.expect_relays.insert(req, dest);
            }
            Msg::SyncMoved { new_home } => {
                // Surrogate takeover: redirect all future coordinator
                // traffic and tell local application threads.
                self.home = new_home;
                sink.signal(Signal::HomeChanged { new_home });
            }
            Msg::RegisterReplica {
                lock,
                replica,
                site,
                name,
            } => {
                // Membership forward from the coordinator.
                self.lock_members.entry(lock).or_default().insert(site);
                self.lock_replicas.entry(lock).or_default().insert(replica);
                self.names.entry(replica).or_insert(name);
                self.store
                    .entry(replica)
                    .or_insert_with(|| Arc::new(ReplicaPayload::empty()));
            }
            Msg::StaleHome { lock, home, epoch } => {
                // NACK from a coordinator we addressed after its lock moved
                // away: self-correct the local directory. The original
                // request was forwarded to the true home by the redirecting
                // site, so nothing needs resending here.
                self.stats.home_corrections += 1;
                if let Some(dir) = &mut self.directory {
                    dir.record(lock, home, epoch);
                }
            }
            Msg::HomeUpdate { lock, home, epoch } => {
                // Post-migration gossip from the new home. Epoch fencing in
                // `record` discards reordered announcements from an older
                // migration.
                if let Some(dir) = &mut self.directory {
                    dir.record(lock, home, epoch);
                }
            }
            other => {
                sink.note(format!("daemon {me} ignoring {other:?}", me = self.me));
            }
        }
    }

    /// Handles a push-send failure: pick an untried member as replacement
    /// (§4: "the failure ... can be handled by choosing another daemon
    /// thread at another site to receive a copy"), or move on to the next
    /// target when nobody is left.
    pub fn on_send_failed(&mut self, tag: &SendTag, sink: &mut CmdSink) {
        let SendTag::Push { lock, to, req } = tag else {
            return;
        };
        let replacement = {
            let Some(task) = self.pushes.get_mut(req) else {
                return;
            };
            if !task.inflight.remove(to) {
                return; // stale failure for an already-advanced push
            }
            let replacement = self
                .lock_members
                .get(lock)
                .and_then(|m| m.iter().copied().find(|s| !task.tried.contains(s)));
            if let Some(r) = replacement {
                // Put the replacement at the head of the queue; fill_window
                // will pick it up.
                task.remaining.push_front(r);
            }
            replacement
        };
        if replacement.is_some() {
            self.stats.push_replacements += 1;
        }
        self.fill_window(*req, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd::Cmd;
    use crate::replica::replica_id;

    const ME: SiteId = SiteId(1);
    const HOME: SiteId = SiteId(0);
    const S2: SiteId = SiteId(2);
    const S3: SiteId = SiteId(3);
    const S4: SiteId = SiteId(4);
    const L: LockId = LockId(1);

    fn daemon() -> SiteDaemon {
        SiteDaemon::new(ME, HOME, CodecKind::ByteAtATime)
    }

    fn now() -> SimTime {
        SimTime::ZERO
    }

    fn spec(name: &str, data: &[i32]) -> ReplicaSpec {
        ReplicaSpec::new(name, ReplicaPayload::I32s(data.to_vec()))
    }

    fn sends(sink: &mut CmdSink) -> Vec<(SiteId, Msg)> {
        sink.drain()
            .into_iter()
            .filter_map(|c| match c {
                Cmd::Send { to, msg, .. } => Some((to, msg)),
                _ => None,
            })
            .collect()
    }

    fn signals(sink: &mut CmdSink) -> Vec<Signal> {
        sink.drain()
            .into_iter()
            .filter_map(|c| match c {
                Cmd::Signal(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn register_stores_initial_and_notifies_home() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[1, 2])], &mut sink);
        let msgs = sends(&mut sink);
        assert!(msgs
            .iter()
            .any(|(to, m)| *to == HOME
                && matches!(m, Msg::RegisterReplica { site, .. } if *site == ME)));
        assert_eq!(
            d.read(replica_id("idx")).unwrap(),
            &ReplicaPayload::I32s(vec![1, 2])
        );
    }

    #[test]
    fn write_and_read_roundtrip() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[0])], &mut sink);
        let id = replica_id("idx");
        d.write(id, ReplicaPayload::I32s(vec![9])).unwrap();
        assert_eq!(d.read(id).unwrap(), &ReplicaPayload::I32s(vec![9]));
    }

    #[test]
    fn unknown_replica_errors() {
        let mut d = daemon();
        let id = replica_id("nope");
        assert!(matches!(d.read(id), Err(MochaError::UnknownReplica { .. })));
        assert!(matches!(
            d.write(id, ReplicaPayload::empty()),
            Err(MochaError::UnknownReplica { .. })
        ));
    }

    #[test]
    fn transfer_directive_sends_data_to_dest() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[7])], &mut sink);
        sink.drain();
        d.on_msg(
            now(),
            HOME,
            Msg::TransferReplica {
                lock: L,
                dest: S2,
                version: Version(0),
                req: RequestId(5),
            },
            &mut sink,
        );
        let msgs = sends(&mut sink);
        let (to, data) = &msgs[0];
        assert_eq!(*to, S2);
        match data {
            Msg::ReplicaData {
                lock, updates, req, ..
            } => {
                assert_eq!(*lock, L);
                assert_eq!(updates.len(), 1);
                assert_eq!(*req, RequestId(5));
            }
            other => panic!("expected ReplicaData, got {other:?}"),
        }
        assert_eq!(d.stats().transfers_served, 1);
    }

    #[test]
    fn replica_data_applies_and_signals() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[0])], &mut sink);
        sink.drain();
        let id = replica_id("idx");
        d.on_msg(
            now(),
            S2,
            Msg::ReplicaData {
                lock: L,
                version: Version(3),
                updates: vec![ReplicaUpdate::new(id, ReplicaPayload::I32s(vec![42]))],
                req: RequestId(0),
            },
            &mut sink,
        );
        assert_eq!(d.read(id).unwrap(), &ReplicaPayload::I32s(vec![42]));
        assert_eq!(d.version_of(L), Version(3));
        assert_eq!(
            signals(&mut sink),
            vec![Signal::DataArrived {
                lock: L,
                version: Version(3)
            }]
        );
    }

    #[test]
    fn stale_data_discarded_but_still_signals() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[0])], &mut sink);
        sink.drain();
        let id = replica_id("idx");
        d.on_msg(
            now(),
            S2,
            Msg::ReplicaData {
                lock: L,
                version: Version(5),
                updates: vec![ReplicaUpdate::new(id, ReplicaPayload::I32s(vec![5]))],
                req: RequestId(0),
            },
            &mut sink,
        );
        sink.drain();
        d.on_msg(
            now(),
            S3,
            Msg::ReplicaData {
                lock: L,
                version: Version(2),
                updates: vec![ReplicaUpdate::new(id, ReplicaPayload::I32s(vec![2]))],
                req: RequestId(0),
            },
            &mut sink,
        );
        // v2 < v5: value kept at 5, but the waiter still unblocks with the
        // freshest local version.
        assert_eq!(d.read(id).unwrap(), &ReplicaPayload::I32s(vec![5]));
        assert_eq!(d.stats().stale_updates_discarded, 1);
        assert_eq!(
            signals(&mut sink),
            vec![Signal::DataArrived {
                lock: L,
                version: Version(5)
            }]
        );
    }

    #[test]
    fn push_applies_acks_and_signals() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[0])], &mut sink);
        sink.drain();
        d.on_msg(
            now(),
            S2,
            Msg::PushUpdate {
                lock: L,
                version: Version(1),
                updates: vec![ReplicaUpdate::new(
                    replica_id("idx"),
                    ReplicaPayload::I32s(vec![1]),
                )],
                req: RequestId(9),
            },
            &mut sink,
        );
        let cmds = sink.drain();
        let acked = cmds.iter().any(|c| matches!(c,
            Cmd::Send { to, msg: Msg::PushAck { req, .. }, .. } if *to == S2 && *req == RequestId(9)));
        assert!(acked);
        assert!(cmds
            .iter()
            .any(|c| matches!(c, Cmd::Signal(Signal::DataArrived { .. }))));
    }

    #[test]
    fn disseminate_pushes_to_ur_minus_one_members() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[1])], &mut sink);
        // Learn about members S2, S3 via coordinator forwards.
        for s in [S2, S3] {
            d.on_msg(
                now(),
                HOME,
                Msg::RegisterReplica {
                    lock: L,
                    replica: replica_id("idx"),
                    site: s,
                    name: "idx".into(),
                },
                &mut sink,
            );
        }
        sink.drain();
        let targets = d.disseminate(L, Version(1), 3, &mut sink);
        assert_eq!(targets, vec![S2, S3]);
        // Sequential dissemination: only the first push goes out now.
        let msgs = sends(&mut sink);
        let pushed: Vec<SiteId> = msgs
            .iter()
            .filter_map(|(to, m)| matches!(m, Msg::PushUpdate { .. }).then_some(*to))
            .collect();
        assert_eq!(pushed, vec![S2]);
        assert_eq!(d.stats().pushes_sent, 1);
        assert_eq!(d.version_of(L), Version(1));
        // S2's ack releases the push to S3.
        d.on_msg(
            now(),
            S2,
            Msg::PushAck {
                lock: L,
                version: Version(1),
                site: S2,
                req: RequestId(1),
            },
            &mut sink,
        );
        let msgs = sends(&mut sink);
        let pushed: Vec<SiteId> = msgs
            .iter()
            .filter_map(|(to, m)| matches!(m, Msg::PushUpdate { .. }).then_some(*to))
            .collect();
        assert_eq!(pushed, vec![S3]);
        assert_eq!(d.stats().pushes_sent, 2);
    }

    #[test]
    fn ur_one_disseminates_nothing() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[1])], &mut sink);
        sink.drain();
        assert!(d.disseminate(L, Version(1), 1, &mut sink).is_empty());
        assert!(sends(&mut sink).is_empty());
    }

    #[test]
    fn all_push_acks_signal_completion() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[1])], &mut sink);
        for s in [S2, S3] {
            d.on_msg(
                now(),
                HOME,
                Msg::RegisterReplica {
                    lock: L,
                    replica: replica_id("idx"),
                    site: s,
                    name: "idx".into(),
                },
                &mut sink,
            );
        }
        sink.drain();
        d.disseminate(L, Version(1), 3, &mut sink);
        sink.drain();
        d.on_msg(
            now(),
            S2,
            Msg::PushAck {
                lock: L,
                version: Version(1),
                site: S2,
                req: RequestId(1),
            },
            &mut sink,
        );
        assert!(signals(&mut sink).is_empty(), "one ack outstanding");
        d.on_msg(
            now(),
            S3,
            Msg::PushAck {
                lock: L,
                version: Version(1),
                site: S3,
                req: RequestId(1),
            },
            &mut sink,
        );
        assert_eq!(
            signals(&mut sink),
            vec![Signal::PushesComplete {
                lock: L,
                acked: vec![S2, S3]
            }]
        );
    }

    #[test]
    fn failed_push_picks_replacement_target() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[1])], &mut sink);
        for s in [S2, S3] {
            d.on_msg(
                now(),
                HOME,
                Msg::RegisterReplica {
                    lock: L,
                    replica: replica_id("idx"),
                    site: s,
                    name: "idx".into(),
                },
                &mut sink,
            );
        }
        sink.drain();
        // UR=2: push to S2 only.
        let targets = d.disseminate(L, Version(1), 2, &mut sink);
        assert_eq!(targets, vec![S2]);
        sink.drain();
        // S2 is dead: the push fails.
        d.on_send_failed(
            &SendTag::Push {
                lock: L,
                to: S2,
                req: RequestId(1),
            },
            &mut sink,
        );
        let msgs = sends(&mut sink);
        // Replacement push went to S3.
        assert!(msgs
            .iter()
            .any(|(to, m)| *to == S3 && matches!(m, Msg::PushUpdate { .. })));
        assert_eq!(d.stats().push_replacements, 1);
    }

    #[test]
    fn exhausted_replacements_complete_the_task() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[1])], &mut sink);
        d.on_msg(
            now(),
            HOME,
            Msg::RegisterReplica {
                lock: L,
                replica: replica_id("idx"),
                site: S2,
                name: "idx".into(),
            },
            &mut sink,
        );
        sink.drain();
        d.disseminate(L, Version(1), 2, &mut sink);
        sink.drain();
        // Only candidate fails and nobody is left.
        d.on_send_failed(
            &SendTag::Push {
                lock: L,
                to: S2,
                req: RequestId(1),
            },
            &mut sink,
        );
        assert_eq!(
            signals(&mut sink),
            vec![Signal::PushesComplete {
                lock: L,
                acked: vec![]
            }]
        );
    }

    #[test]
    fn polls_answered_to_home() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.on_msg(
            now(),
            HOME,
            Msg::PollVersion {
                lock: L,
                req: RequestId(4),
            },
            &mut sink,
        );
        let msgs = sends(&mut sink);
        assert!(msgs.iter().any(|(to, m)| *to == HOME
            && matches!(m, Msg::PollResponse { req, .. } if *req == RequestId(4))));
        assert_eq!(d.stats().polls_answered, 1);
    }

    #[test]
    fn transfer_adopts_unregistered_replicas() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        let foreign = replica_id("createdElsewhere");
        d.on_msg(
            now(),
            S2,
            Msg::ReplicaData {
                lock: L,
                version: Version(1),
                updates: vec![ReplicaUpdate::new(
                    foreign,
                    ReplicaPayload::Utf8("hi".into()),
                )],
                req: RequestId(0),
            },
            &mut sink,
        );
        assert_eq!(d.read(foreign).unwrap(), &ReplicaPayload::Utf8("hi".into()));
    }

    fn member(d: &mut SiteDaemon, s: SiteId, sink: &mut CmdSink) {
        d.on_msg(
            now(),
            HOME,
            Msg::RegisterReplica {
                lock: L,
                replica: replica_id("idx"),
                site: s,
                name: "idx".into(),
            },
            sink,
        );
    }

    fn ack(d: &mut SiteDaemon, s: SiteId, version: Version, req: RequestId, sink: &mut CmdSink) {
        d.on_msg(
            now(),
            s,
            Msg::PushAck {
                lock: L,
                version,
                site: s,
                req,
            },
            sink,
        );
    }

    #[test]
    fn pipeline_mode_fans_out_all_targets_at_once() {
        let mut d = daemon();
        d.set_push_options(PushConfig {
            delta: false,
            pipeline: true,
        });
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[1])], &mut sink);
        for s in [S2, S3, S4] {
            member(&mut d, s, &mut sink);
        }
        sink.drain();
        let targets = d.disseminate(L, Version(1), 4, &mut sink);
        assert_eq!(targets, vec![S2, S3, S4]);
        let msgs = sends(&mut sink);
        let pushed: Vec<SiteId> = msgs
            .iter()
            .filter_map(|(to, m)| matches!(m, Msg::PushUpdate { .. }).then_some(*to))
            .collect();
        assert_eq!(pushed, vec![S2, S3, S4], "whole window in flight at once");
        assert_eq!(d.inflight_pushes(), 3);
        // Acks in any order; completion only after the last.
        ack(&mut d, S3, Version(1), RequestId(1), &mut sink);
        ack(&mut d, S2, Version(1), RequestId(1), &mut sink);
        assert!(signals(&mut sink).is_empty());
        ack(&mut d, S4, Version(1), RequestId(1), &mut sink);
        assert_eq!(
            signals(&mut sink),
            vec![Signal::PushesComplete {
                lock: L,
                acked: vec![S3, S2, S4]
            }]
        );
        assert_eq!(d.inflight_pushes(), 0);
    }

    #[test]
    fn pipeline_mid_window_failure_picks_replacement() {
        let mut d = daemon();
        d.set_push_options(PushConfig {
            delta: false,
            pipeline: true,
        });
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[1])], &mut sink);
        for s in [S2, S3, S4] {
            member(&mut d, s, &mut sink);
        }
        sink.drain();
        // UR=3: window is {S2, S3}; S4 is the spare.
        let targets = d.disseminate(L, Version(1), 3, &mut sink);
        assert_eq!(targets, vec![S2, S3]);
        sink.drain();
        d.on_send_failed(
            &SendTag::Push {
                lock: L,
                to: S2,
                req: RequestId(1),
            },
            &mut sink,
        );
        let msgs = sends(&mut sink);
        assert!(
            msgs.iter()
                .any(|(to, m)| *to == S4 && matches!(m, Msg::PushUpdate { .. })),
            "replacement filled the freed window slot"
        );
        assert_eq!(d.stats().push_replacements, 1);
        ack(&mut d, S3, Version(1), RequestId(1), &mut sink);
        ack(&mut d, S4, Version(1), RequestId(1), &mut sink);
        assert_eq!(
            signals(&mut sink),
            vec![Signal::PushesComplete {
                lock: L,
                acked: vec![S3, S4]
            }]
        );
    }

    fn big() -> Vec<i32> {
        (0..256).collect()
    }

    /// Drives a delta-mode daemon through a full v1 push + ack so the next
    /// release is delta-eligible for S2; returns the daemon.
    fn delta_primed() -> (SiteDaemon, CmdSink) {
        let mut d = daemon();
        d.set_push_options(PushConfig {
            delta: true,
            pipeline: false,
        });
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &big())], &mut sink);
        member(&mut d, S2, &mut sink);
        sink.drain();
        d.disseminate(L, Version(1), 2, &mut sink);
        let msgs = sends(&mut sink);
        assert!(
            msgs.iter()
                .any(|(_, m)| matches!(m, Msg::PushUpdate { .. })),
            "first release has no shadow: full push"
        );
        ack(&mut d, S2, Version(1), RequestId(1), &mut sink);
        sink.drain();
        // Small write inside the big object.
        let mut v = big();
        v[7] = -7;
        d.write(replica_id("idx"), ReplicaPayload::I32s(v)).unwrap();
        (d, sink)
    }

    #[test]
    fn second_release_pushes_delta_to_acked_target() {
        let (mut d, mut sink) = delta_primed();
        d.disseminate(L, Version(2), 2, &mut sink);
        let msgs = sends(&mut sink);
        match &msgs[0] {
            (
                to,
                Msg::PushDelta {
                    lock,
                    base_version,
                    version,
                    deltas,
                    ..
                },
            ) => {
                assert_eq!(*to, S2);
                assert_eq!(*lock, L);
                assert_eq!(*base_version, Version(1));
                assert_eq!(*version, Version(2));
                assert_eq!(deltas.len(), 1);
            }
            other => panic!("expected PushDelta, got {other:?}"),
        }
        let s = d.stats();
        assert_eq!(s.delta_pushes_sent, 1);
        assert!(s.delta_bytes_saved > 0);
        // The delta send put far fewer payload bytes on the wire than the
        // full v1 push did.
        assert!(s.replica_bytes_sent < 1024 + 64, "{}", s.replica_bytes_sent);
    }

    #[test]
    fn delta_nack_falls_back_to_full_push() {
        let (mut d, mut sink) = delta_primed();
        d.disseminate(L, Version(2), 2, &mut sink);
        sink.drain();
        // S2 lost its copy meanwhile and refuses the script.
        d.on_msg(
            now(),
            S2,
            Msg::DeltaNack {
                lock: L,
                site: S2,
                have: Version::INITIAL,
                req: RequestId(2),
            },
            &mut sink,
        );
        let msgs = sends(&mut sink);
        assert!(
            msgs.iter().any(|(to, m)| *to == S2
                && matches!(m, Msg::PushUpdate { version, .. } if *version == Version(2))),
            "full resend after NACK"
        );
        assert_eq!(d.stats().delta_nacks, 1);
        // The target stayed in flight; its ack still completes the task.
        ack(&mut d, S2, Version(2), RequestId(2), &mut sink);
        assert_eq!(
            signals(&mut sink),
            vec![Signal::PushesComplete {
                lock: L,
                acked: vec![S2]
            }]
        );
    }

    #[test]
    fn transfer_uses_delta_for_acked_dest() {
        let (mut d, mut sink) = delta_primed();
        d.disseminate(L, Version(2), 2, &mut sink);
        sink.drain();
        // S2 has not acked v2 yet; its last-acked version is the delta
        // base v1, so a coordinator-directed transfer goes as a script.
        d.on_msg(
            now(),
            HOME,
            Msg::TransferReplica {
                lock: L,
                dest: S2,
                version: Version(2),
                req: RequestId(77),
            },
            &mut sink,
        );
        let msgs = sends(&mut sink);
        assert!(
            msgs.iter().any(|(to, m)| *to == S2
                && matches!(m, Msg::ReplicaDelta { base_version, req, .. }
                    if *base_version == Version(1) && *req == RequestId(77))),
            "transfer to an acked dest ships the script"
        );
    }

    #[test]
    fn receiver_applies_push_delta_and_acks() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[1, 2, 3])], &mut sink);
        sink.drain();
        let id = replica_id("idx");
        // Bring the receiver to v1 via a full push.
        d.on_msg(
            now(),
            S2,
            Msg::PushUpdate {
                lock: L,
                version: Version(1),
                updates: vec![ReplicaUpdate::new(id, ReplicaPayload::I32s(vec![1, 2, 3]))],
                req: RequestId(8),
            },
            &mut sink,
        );
        sink.drain();
        let delta = PayloadDelta::diff(
            &ReplicaPayload::I32s(vec![1, 2, 3]),
            &ReplicaPayload::I32s(vec![1, 9, 3]),
        )
        .unwrap();
        d.on_msg(
            now(),
            S2,
            Msg::PushDelta {
                lock: L,
                base_version: Version(1),
                version: Version(2),
                deltas: vec![ReplicaDeltaUpdate { replica: id, delta }],
                req: RequestId(9),
            },
            &mut sink,
        );
        assert_eq!(d.read(id).unwrap(), &ReplicaPayload::I32s(vec![1, 9, 3]));
        assert_eq!(d.version_of(L), Version(2));
        let cmds = sink.drain();
        assert!(cmds.iter().any(|c| matches!(c,
            Cmd::Send { to, msg: Msg::PushAck { req, .. }, .. } if *to == S2 && *req == RequestId(9))));
        assert!(cmds.iter().any(|c| matches!(
            c,
            Cmd::Signal(Signal::DataArrived {
                version: Version(2),
                ..
            })
        )));
    }

    #[test]
    fn stale_base_receiver_nacks_push_delta() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.register_local(L, &[spec("idx", &[1, 2, 3])], &mut sink);
        sink.drain();
        let id = replica_id("idx");
        // Receiver is still at v0; the script needs base v1.
        let delta = PayloadDelta::diff(
            &ReplicaPayload::I32s(vec![1, 2, 3]),
            &ReplicaPayload::I32s(vec![1, 9, 3]),
        )
        .unwrap();
        d.on_msg(
            now(),
            S2,
            Msg::PushDelta {
                lock: L,
                base_version: Version(1),
                version: Version(2),
                deltas: vec![ReplicaDeltaUpdate { replica: id, delta }],
                req: RequestId(9),
            },
            &mut sink,
        );
        // Value untouched, no ack, no wakeup — just the NACK.
        assert_eq!(d.read(id).unwrap(), &ReplicaPayload::I32s(vec![1, 2, 3]));
        assert_eq!(d.version_of(L), Version::INITIAL);
        let cmds = sink.drain();
        assert!(cmds.iter().any(|c| matches!(c,
            Cmd::Send { to, msg: Msg::DeltaNack { have, .. }, .. }
                if *to == S2 && *have == Version::INITIAL)));
        assert!(!cmds
            .iter()
            .any(|c| matches!(c, Cmd::Signal(Signal::DataArrived { .. }))));
        assert!(!cmds.iter().any(|c| matches!(
            c,
            Cmd::Send {
                msg: Msg::PushAck { .. },
                ..
            }
        )));
    }

    #[test]
    fn ring_growth_pins_known_locks_at_their_old_home() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        d.install_directory(Directory::new(&[ME, HOME], 64));
        d.register_local(L, &[spec("idx", &[1])], &mut sink);
        sink.drain();
        let old_home = d.home_for(L).expect("directory installed");
        // Pick a joiner the bare ring would hand L to: without the pin the
        // daemon would start addressing lock traffic to a coordinator that
        // has no state for it.
        let joiner = (3..=64)
            .map(SiteId)
            .find(|&s| Directory::new(&[ME, HOME, s], 64).home_of(L) == Some(s))
            .expect("some joiner claims L on the bare ring");
        d.add_ring_site(joiner);
        assert_eq!(d.home_for(L), Some(old_home));
    }

    #[test]
    fn departure_reannounces_versions_to_the_new_home() {
        let mut d = daemon();
        let mut sink = CmdSink::new();
        // A two-site ring where the OTHER site homes L, so its departure
        // displaces the lock onto this daemon's own site.
        let dying = (2..=64)
            .map(SiteId)
            .find(|&s| Directory::new(&[ME, s], 64).home_of(L) == Some(s))
            .expect("some site homes L");
        d.install_directory(Directory::new(&[ME, dying], 64));
        d.register_local(L, &[spec("idx", &[1])], &mut sink);
        d.disseminate(L, Version(3), 1, &mut sink);
        sink.drain();
        d.remove_ring_site(dying, &mut sink);
        // The survivor inherits the ring home, and the daemon re-announces
        // its newest durable version to the inheriting coordinator — the
        // raw material of the rebuild poll.
        assert_eq!(d.home_for(L), Some(ME));
        let msgs = sends(&mut sink);
        assert!(msgs.iter().any(|(to, m)| *to == ME
            && matches!(
                m,
                Msg::SiteRecovered { site, versions }
                    if *site == ME && versions.contains(&(L, Version(3)))
            )));
    }
}
