//! Commands emitted by protocol components and local cross-component
//! signals.
//!
//! Every protocol actor (coordinator, daemon, application runner, site
//! manager) is a state machine: events in, [`Cmd`]s out. A *driver* (the
//! simulator host in [`crate::runtime::sim`], the site event loop in
//! [`crate::runtime::thread`]) executes the commands — sending messages
//! through a transport, charging CPU, arming timers, and routing
//! [`Signal`]s between components on the same site.

use std::time::Duration;

use mocha_net::{MsgClass, Port};
use mocha_sim::Work;
use mocha_wire::message::ReplicaUpdate;
use mocha_wire::{LockId, Msg, RequestId, SiteId, Version};

use crate::travelbag::TravelBag;

/// Correlates a transport-level send with the protocol intention behind
/// it, so [`TransportEvent::SendFailed`](mocha_net::TransportEvent)
/// notifications can be routed back to the right state machine — the
/// mechanism behind all of §4's "the message times out" failure
/// detections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendTag {
    /// No follow-up needed.
    None,
    /// Coordinator → daemon transfer directive; failure means the daemon
    /// (and so its site) is dead and recovery polling must start.
    TransferDirective {
        /// Lock whose replicas were to be transferred.
        lock: LockId,
        /// The daemon that was asked (the suspect).
        from: SiteId,
        /// Intended recipient of the replica data.
        dest: SiteId,
        /// Directive correlation id.
        req: RequestId,
    },
    /// Daemon → daemon dissemination push; failure means choosing another
    /// target.
    Push {
        /// Lock whose value was pushed.
        lock: LockId,
        /// The dead target.
        to: SiteId,
        /// Push task id.
        req: RequestId,
    },
    /// Coordinator → daemon heartbeat; failure confirms owner death.
    Heartbeat {
        /// Lock whose owner is suspected.
        lock: LockId,
        /// The suspected site.
        site: SiteId,
        /// Heartbeat correlation id.
        req: RequestId,
    },
    /// Application → coordinator lock request; failure means the home site
    /// is unreachable.
    Acquire {
        /// The requested lock.
        lock: LockId,
    },
    /// Coordinator → coordinator home-migration handshake message (offer
    /// or fenced commit); failure aborts the migration — or, for a commit,
    /// reinstates the retired lock at the old home.
    Migrate {
        /// The lock being re-homed.
        lock: LockId,
        /// The unreachable counterpart coordinator.
        site: SiteId,
        /// The migration's fence epoch.
        epoch: u64,
    },
    /// Site manager → remote site spawn request; failure means the
    /// destination is dead and the spawn must report an error.
    Spawn {
        /// The spawn's correlation id.
        req: RequestId,
    },
}

/// A local, same-site notification between components.
#[derive(Debug, Clone, PartialEq)]
pub enum Signal {
    /// The daemon applied replica data for `lock` at `version`; threads
    /// waiting for that data may proceed.
    DataArrived {
        /// The lock whose replica set was updated.
        lock: LockId,
        /// Version now held locally.
        version: Version,
    },
    /// All dissemination pushes for `lock` have been acknowledged (or
    /// abandoned). `acked` lists the sites that confirmed applying the
    /// new value — the accurate dissemination set the release message
    /// reports to the coordinator.
    PushesComplete {
        /// The lock whose pushes finished.
        lock: LockId,
        /// Sites that acknowledged the push.
        acked: Vec<SiteId>,
    },
    /// The synchronization thread moved to a new site (surrogate
    /// recovery); pending coordinator traffic should be redirected.
    HomeChanged {
        /// The surrogate's site.
        new_home: SiteId,
    },
    /// A spawn initiated from this site completed.
    SpawnDone {
        /// The originating request.
        req: RequestId,
        /// The task's result bag (empty on failure).
        result: TravelBag,
        /// Whether the task succeeded.
        ok: bool,
    },
}

/// An instruction from a protocol component to its driver.
#[derive(Debug)]
pub enum Cmd {
    /// Send a protocol message.
    Send {
        /// Destination site.
        to: SiteId,
        /// Destination port.
        port: Port,
        /// The message.
        msg: Msg,
        /// Control or bulk (protocol selection in hybrid mode).
        class: MsgClass,
        /// Correlation tag for failure notifications.
        tag: SendTag,
    },
    /// Charge abstract protocol work to the local CPU.
    Charge(Work),
    /// Charge raw computation time (application work).
    ChargeTime(Duration),
    /// Arm (or re-arm) a component timer.
    SetTimer {
        /// Namespaced token.
        token: u64,
        /// Delay from now.
        after: Duration,
    },
    /// Cancel a component timer.
    CancelTimer {
        /// Namespaced token.
        token: u64,
    },
    /// Append an applied `(lock, version, full payloads)` statement to the
    /// site's durable store, if one is attached. Drivers without a store
    /// (the default) drop this command — durability is strictly opt-in.
    Persist {
        /// The lock whose replica set reached `version` locally.
        lock: LockId,
        /// The version now held.
        version: Version,
        /// Full payloads of every replica guarded by the lock.
        updates: Vec<ReplicaUpdate>,
    },
    /// Notify another component on the same site.
    Signal(Signal),
    /// Record a diagnostic annotation (goes to the sim trace / log).
    Note(String),
    /// Output from `mochaPrintln` — surfaced to the harness/console.
    Print(String),
}

/// Accumulates commands inside a component.
#[derive(Debug, Default)]
pub struct CmdSink {
    cmds: Vec<Cmd>,
}

impl CmdSink {
    /// Creates an empty sink.
    pub fn new() -> CmdSink {
        CmdSink::default()
    }

    /// Queues a message send.
    pub fn send(&mut self, to: SiteId, port: Port, msg: Msg, class: MsgClass) {
        self.cmds.push(Cmd::Send {
            to,
            port,
            msg,
            class,
            tag: SendTag::None,
        });
    }

    /// Queues a message send with a failure-correlation tag.
    pub fn send_tagged(&mut self, to: SiteId, port: Port, msg: Msg, class: MsgClass, tag: SendTag) {
        self.cmds.push(Cmd::Send {
            to,
            port,
            msg,
            class,
            tag,
        });
    }

    /// Queues a CPU work charge (elided when zero).
    pub fn charge(&mut self, work: Work) {
        if !work.is_none() {
            self.cmds.push(Cmd::Charge(work));
        }
    }

    /// Queues a raw time charge (elided when zero).
    pub fn charge_time(&mut self, d: Duration) {
        if !d.is_zero() {
            self.cmds.push(Cmd::ChargeTime(d));
        }
    }

    /// Queues a timer arm.
    pub fn set_timer(&mut self, token: u64, after: Duration) {
        self.cmds.push(Cmd::SetTimer { token, after });
    }

    /// Queues a timer cancel.
    pub fn cancel_timer(&mut self, token: u64) {
        self.cmds.push(Cmd::CancelTimer { token });
    }

    /// Queues a durable-store append.
    pub fn persist(&mut self, lock: LockId, version: Version, updates: Vec<ReplicaUpdate>) {
        self.cmds.push(Cmd::Persist {
            lock,
            version,
            updates,
        });
    }

    /// Queues a local signal.
    pub fn signal(&mut self, s: Signal) {
        self.cmds.push(Cmd::Signal(s));
    }

    /// Queues a diagnostic note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.cmds.push(Cmd::Note(text.into()));
    }

    /// Queues console output.
    pub fn print(&mut self, text: impl Into<String>) {
        self.cmds.push(Cmd::Print(text.into()));
    }

    /// Drains queued commands in order.
    pub fn drain(&mut self) -> Vec<Cmd> {
        std::mem::take(&mut self.cmds)
    }

    /// Whether any commands are queued.
    pub fn is_empty(&self) -> bool {
        self.cmds.is_empty()
    }
}

/// Timer-token namespaces for the protocol components (transports use
/// `0x01`/`0x02`).
pub mod timer_ns {
    /// The synchronization coordinator.
    pub const COORD: u64 = 0x03 << 56;
    /// Site daemons.
    pub const DAEMON: u64 = 0x04 << 56;
    /// Application runners (sleep timers).
    pub const APP: u64 = 0x05 << 56;
    /// Site managers.
    pub const MANAGER: u64 = 0x06 << 56;

    /// Extracts the namespace bits of a token.
    pub fn of(token: u64) -> u64 {
        token & (0xff << 56)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocha_net::ports;

    #[test]
    fn sink_preserves_order() {
        let mut sink = CmdSink::new();
        sink.charge(Work::events(1));
        sink.send(
            SiteId(1),
            ports::SYNC,
            Msg::Heartbeat {
                lock: LockId(1),
                req: RequestId(1),
            },
            MsgClass::Control,
        );
        sink.signal(Signal::PushesComplete {
            lock: LockId(1),
            acked: vec![],
        });
        let cmds = sink.drain();
        assert!(matches!(cmds[0], Cmd::Charge(_)));
        assert!(matches!(cmds[1], Cmd::Send { .. }));
        assert!(matches!(cmds[2], Cmd::Signal(_)));
        assert!(sink.is_empty());
    }

    #[test]
    fn zero_charges_elided() {
        let mut sink = CmdSink::new();
        sink.charge(Work::NONE);
        sink.charge_time(Duration::ZERO);
        assert!(sink.is_empty());
    }

    #[test]
    fn namespaces_are_distinct() {
        let all = [
            timer_ns::COORD,
            timer_ns::DAEMON,
            timer_ns::APP,
            timer_ns::MANAGER,
        ];
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                if i != j {
                    assert_ne!(timer_ns::of(*a), timer_ns::of(*b));
                }
            }
        }
    }
}
