//! Consistent-hash object directory: which site is a lock's home.
//!
//! The paper fixes every object's home at the creating site forever, so a
//! skewed workload funnels all coordination traffic through one site. This
//! module replaces that placement with a virtual-shard consistent-hash ring
//! (object → home), plus an **override table** recording homes moved by
//! dynamic migration. Every site computes the same ring from the same
//! membership, so no directory lookups cross the network; overrides are
//! gossiped with `HomeUpdate` and fenced by a per-lock epoch.
//!
//! The directory is a *hint*, never an authority: a site that sends SYNC
//! traffic to a stale home is redirected by a `StaleHome` NACK and records
//! the correction here. Correctness therefore never depends on directory
//! freshness — only the redirect round-trip count does.

use std::collections::BTreeMap;

use mocha_wire::{LockId, SiteId};

/// FNV-1a, the same hash family the codec fingerprints use: deterministic
/// across sites and runs, which the ring requires (two sites disagreeing on
/// `home_of` would both answer `StaleHome` to each other forever).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    // FNV alone clusters small little-endian integer keys (nearby ids map
    // to nearby ring points, starving some sites entirely); a
    // splitmix64-style finalizer scatters them across the full 64-bit ring.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

fn shard_point(site: SiteId, shard: u32) -> u64 {
    let key = (u64::from(site.0) << 32) | u64::from(shard);
    fnv1a(&key.to_le_bytes())
}

fn lock_point(lock: LockId) -> u64 {
    fnv1a(&lock.0.to_le_bytes())
}

/// The object directory one site maintains: a consistent-hash ring over the
/// current membership plus epoch-fenced per-lock overrides from migration.
#[derive(Debug, Clone)]
pub struct Directory {
    /// Ring points: hash point → site owning the virtual shard there.
    ring: BTreeMap<u64, SiteId>,
    /// Virtual shards per site.
    shards: u32,
    /// Sites currently on the ring (kept for rebuild / membership queries).
    sites: Vec<SiteId>,
    /// Migrated homes: lock → (home, fence epoch). Newer epochs win;
    /// entries for locks still at their ring home are absent.
    overrides: BTreeMap<LockId, (SiteId, u64)>,
}

impl Directory {
    /// Builds a directory over `sites` with `shards` virtual shards each
    /// (zero is clamped to one so `home_of` stays total).
    #[must_use]
    pub fn new(sites: &[SiteId], shards: u32) -> Directory {
        let mut dir = Directory {
            ring: BTreeMap::new(),
            shards: shards.max(1),
            sites: Vec::new(),
            overrides: BTreeMap::new(),
        };
        for &site in sites {
            dir.add_site(site);
        }
        dir
    }

    /// Adds a site's virtual shards to the ring. Idempotent.
    pub fn add_site(&mut self, site: SiteId) {
        if self.sites.contains(&site) {
            return;
        }
        self.sites.push(site);
        for shard in 0..self.shards {
            // On a point collision the numerically larger site wins on both
            // sites deterministically; with 64-bit points this is theoretical.
            let point = shard_point(site, shard);
            let entry = self.ring.entry(point).or_insert(site);
            if site.0 > entry.0 {
                *entry = site;
            }
        }
    }

    /// Removes a site from the ring and drops any overrides pointing at it
    /// (their locks fall back to ring placement on surviving sites).
    /// Returns the locks whose override was dropped — each needs a forced
    /// re-home by the caller.
    pub fn remove_site(&mut self, site: SiteId) -> Vec<LockId> {
        self.sites.retain(|&s| s != site);
        self.ring.retain(|_, &mut s| s != site);
        let orphaned: Vec<LockId> = self
            .overrides
            .iter()
            .filter(|(_, &(home, _))| home == site)
            .map(|(&lock, _)| lock)
            .collect();
        for lock in &orphaned {
            self.overrides.remove(lock);
        }
        orphaned
    }

    /// The current home for `lock`: the override if one exists, else the
    /// first ring shard clockwise from the lock's hash point. `None` only
    /// when the ring is empty.
    #[must_use]
    pub fn home_of(&self, lock: LockId) -> Option<SiteId> {
        if let Some(&(home, _)) = self.overrides.get(&lock) {
            return Some(home);
        }
        let point = lock_point(lock);
        self.ring
            .range(point..)
            .next()
            .or_else(|| self.ring.iter().next())
            .map(|(_, &site)| site)
    }

    /// The fence epoch recorded for `lock` (0 when it has never migrated).
    #[must_use]
    pub fn epoch_of(&self, lock: LockId) -> u64 {
        self.overrides.get(&lock).map_or(0, |&(_, epoch)| epoch)
    }

    /// Records a migrated home learned from `MigrateCommit`, `HomeUpdate`
    /// gossip, or a `StaleHome` redirect. Older epochs lose — gossip can
    /// arrive out of order after a lock migrates twice. Returns whether the
    /// entry was applied.
    pub fn record(&mut self, lock: LockId, home: SiteId, epoch: u64) -> bool {
        if epoch < self.epoch_of(lock) {
            return false;
        }
        self.overrides.insert(lock, (home, epoch));
        true
    }

    /// Sites currently on the ring.
    #[must_use]
    pub fn sites(&self) -> &[SiteId] {
        &self.sites
    }

    /// Number of locks with a migrated (non-ring) home.
    #[must_use]
    pub fn override_count(&self) -> usize {
        self.overrides.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites(n: u32) -> Vec<SiteId> {
        (0..n).map(SiteId).collect()
    }

    #[test]
    fn placement_is_deterministic_and_total() {
        let a = Directory::new(&sites(4), 16);
        let b = Directory::new(&sites(4), 16);
        for i in 0..200 {
            let lock = LockId(i);
            let home = a.home_of(lock).unwrap();
            assert_eq!(Some(home), b.home_of(lock));
            assert!(home.0 < 4);
        }
    }

    #[test]
    fn placement_spreads_across_sites() {
        let dir = Directory::new(&sites(4), 16);
        let mut counts = [0usize; 4];
        for i in 0..400 {
            counts[dir.home_of(LockId(i)).unwrap().0 as usize] += 1;
        }
        for (site, &n) in counts.iter().enumerate() {
            assert!(n > 0, "site {site} got no locks: {counts:?}");
        }
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let fwd = Directory::new(&[SiteId(0), SiteId(1), SiteId(2)], 8);
        let rev = Directory::new(&[SiteId(2), SiteId(1), SiteId(0)], 8);
        for i in 0..100 {
            assert_eq!(fwd.home_of(LockId(i)), rev.home_of(LockId(i)));
        }
    }

    #[test]
    fn remove_site_only_moves_its_locks() {
        let mut dir = Directory::new(&sites(4), 16);
        let before: Vec<_> = (0..200).map(|i| dir.home_of(LockId(i)).unwrap()).collect();
        dir.remove_site(SiteId(2));
        for (i, &old) in before.iter().enumerate() {
            let new = dir.home_of(LockId(i as u32)).unwrap();
            assert_ne!(new, SiteId(2));
            if old != SiteId(2) {
                assert_eq!(new, old, "lock {i} moved though its home survived");
            }
        }
    }

    #[test]
    fn overrides_win_and_fence_by_epoch() {
        let mut dir = Directory::new(&sites(3), 8);
        let lock = LockId(7);
        let ring_home = dir.home_of(lock).unwrap();
        assert_eq!(dir.epoch_of(lock), 0);

        assert!(dir.record(lock, SiteId(1), 2));
        assert_eq!(dir.home_of(lock), Some(SiteId(1)));
        assert_eq!(dir.epoch_of(lock), 2);
        // Stale gossip from the first migration loses.
        assert!(!dir.record(lock, ring_home, 1));
        assert_eq!(dir.home_of(lock), Some(SiteId(1)));
        // A newer migration wins.
        assert!(dir.record(lock, SiteId(2), 3));
        assert_eq!(dir.home_of(lock), Some(SiteId(2)));
        assert_eq!(dir.override_count(), 1);
    }

    #[test]
    fn remove_site_reports_orphaned_overrides() {
        let mut dir = Directory::new(&sites(3), 8);
        dir.record(LockId(1), SiteId(2), 1);
        dir.record(LockId(2), SiteId(1), 1);
        let orphaned = dir.remove_site(SiteId(2));
        assert_eq!(orphaned, vec![LockId(1)]);
        // The orphaned lock falls back to ring placement on a survivor.
        let fallback = dir.home_of(LockId(1)).unwrap();
        assert_ne!(fallback, SiteId(2));
        // The untouched override survives.
        assert_eq!(dir.home_of(LockId(2)), Some(SiteId(1)));
    }

    #[test]
    fn empty_ring_has_no_home() {
        let mut dir = Directory::new(&sites(1), 4);
        assert_eq!(dir.home_of(LockId(1)), Some(SiteId(0)));
        dir.remove_site(SiteId(0));
        assert_eq!(dir.home_of(LockId(1)), None);
    }
}
