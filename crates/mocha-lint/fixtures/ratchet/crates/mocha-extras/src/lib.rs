//! Ratchet fixture, non-protocol crate: one panic site, baseline of
//! five — reported as a ratchet-down note, never a failure.

pub fn lookup(v: &[u8]) -> u8 {
    *v.first().unwrap()
}
