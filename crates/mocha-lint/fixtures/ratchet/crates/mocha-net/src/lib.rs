//! Ratchet fixture, protocol crate: four panic sites against a baseline
//! of two — the ratchet must fail. Never compiled.

pub fn risky(v: &[u8]) -> u8 {
    let first = v.first().unwrap();
    let second = v.get(1).expect("needs two bytes");
    let third = v[2];
    if *first == 0 {
        panic!("zero lead byte");
    }
    *second + third
}
