//! Blocking-lint fixture: a reactor shard loop that commits every sin the
//! analysis knows about, plus one sanctioned (allowed) pause. The file is
//! never compiled — it exists so `tests/fixtures.rs` can prove the
//! analysis fires on each shape.

use std::sync::Mutex;
use std::time::Duration;

pub struct Shard {
    pub book: Mutex<u32>,
}

impl Shard {
    pub fn run_shard(&mut self) {
        self.poll_once();
        std::thread::sleep(Duration::from_millis(1));
        self.backoff_pause();
        helper_wait(self);
    }

    fn poll_once(&mut self) {
        let g = self.book.lock();
        let _ = g;
    }

    fn backoff_pause(&self) {
        // Bounded, designed pause: suppressed by the escape hatch.
        // lint: allow(blocking)
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn helper_wait(_shard: &Shard) {
    let (tx, rx) = std::sync::mpsc::channel::<u32>();
    let _ = tx;
    let _ = rx.recv_timeout(Duration::from_millis(5));
}
