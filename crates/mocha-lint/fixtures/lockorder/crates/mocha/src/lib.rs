//! Lock-order fixture: an ABBA pair, a re-acquisition, a send under a
//! held guard, and an allowed send. Never compiled; scanned by
//! `tests/fixtures.rs`.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub struct Pair {
    pub alpha: Mutex<u32>,
    pub beta: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }

    pub fn backward(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        drop(a);
        drop(b);
    }

    pub fn reacquire(&self) {
        let g = self.alpha.lock();
        let h = self.alpha.lock();
        drop(h);
        drop(g);
    }

    pub fn ship(&self, tx: &Sender<u32>) {
        let g = self.alpha.lock();
        let _ = tx.send(1);
        drop(g);
    }

    pub fn ship_allowed(&self, tx: &Sender<u32>) {
        let g = self.alpha.lock();
        // Replying under the guard is safe here: bounded channel owned by us.
        // lint: allow(send-under-lock)
        let _ = tx.send(2);
        drop(g);
    }
}
