//! Wire-tag fixture: a tag table with a duplicate value, a tag without an
//! encode arm, a tag without a decode arm, and a decodable variant no
//! dispatcher handles. Never compiled; scanned by `tests/fixtures.rs`.

pub const T_ACQUIRE: u8 = 1;
pub const T_RELEASE: u8 = 2;
pub const T_ORPHAN: u8 = 3;
pub const T_DUP: u8 = 3;
pub const T_NO_ENCODE: u8 = 5;
pub const T_NO_DECODE: u8 = 6;

pub enum Msg {
    Acquire,
    Release,
    Orphan,
}

pub fn encode(msg: &Msg, w: &mut Writer) {
    match msg {
        Msg::Acquire => w.put_u8(T_ACQUIRE),
        Msg::Release => w.put_u8(T_RELEASE),
        Msg::Orphan => w.put_u8(T_ORPHAN),
    }
    w.put_u8(T_DUP);
    w.put_u8(T_NO_DECODE);
}

pub fn decode(r: &mut Reader) -> Result<Msg, WireError> {
    match r.get_u8()? {
        T_ACQUIRE => Ok(Msg::Acquire),
        T_RELEASE => Ok(Msg::Release),
        T_ORPHAN => Ok(Msg::Orphan),
        T_DUP => Ok(Msg::Acquire),
        T_NO_ENCODE => Ok(Msg::Release),
        other => Err(WireError::BadTag(other)),
    }
}
