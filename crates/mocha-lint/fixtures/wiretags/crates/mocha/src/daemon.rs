//! Wire-tag fixture dispatcher: handles `Acquire` and `Release` but not
//! `Orphan`, so the exhaustiveness check has something to report.

pub fn handle(msg: Msg) {
    match msg {
        Msg::Acquire => on_acquire(),
        Msg::Release => on_release(),
        _ => {}
    }
}

fn on_acquire() {}

fn on_release() {}
