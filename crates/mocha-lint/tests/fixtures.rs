//! Runs each analysis over its fixture tree under `fixtures/` and pins
//! the exact diagnostics it must produce. The fixtures are never
//! compiled — they are token-scanned, like the real workspace — so each
//! one can concentrate every shape its analysis knows about, including
//! the `// lint: allow(...)` escape hatch.

use std::path::PathBuf;

/// The mocha-lint crate directory, under cargo or a bare test runner.
fn lint_crate_dir() -> PathBuf {
    option_env!("CARGO_MANIFEST_DIR").map_or_else(
        || {
            let cwd = std::env::current_dir().expect("cwd");
            mocha_lint::find_root(&cwd)
                .expect("workspace root above cwd")
                .join("crates")
                .join("mocha-lint")
        },
        PathBuf::from,
    )
}

fn lint_fixture(name: &str, analysis: &str) -> mocha_lint::Report {
    let root = lint_crate_dir().join("fixtures").join(name);
    assert!(root.is_dir(), "missing fixture tree {}", root.display());
    mocha_lint::run(&root, Some(analysis)).expect("lint run")
}

fn rendered(report: &mocha_lint::Report) -> Vec<String> {
    report.diags.iter().map(ToString::to_string).collect()
}

#[test]
fn blocking_flags_sleep_wait_and_lock_on_reactor_path() {
    let report = lint_fixture("blocking", "blocking");
    let msgs = rendered(&report);
    assert!(
        msgs.iter().any(|m| m.contains("thread::sleep")),
        "sleep not flagged: {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("channel recv_timeout")),
        "recv_timeout not flagged: {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("Mutex::lock on `book`")),
        "lock not flagged: {msgs:?}"
    );
    // The allowed backoff sleep is suppressed, everything else is not:
    // exactly the three sites above.
    assert_eq!(report.diags.len(), 3, "{msgs:?}");
    // Path reporting names the root.
    assert!(
        msgs.iter().all(|m| m.contains("run_shard")),
        "missing reactor path: {msgs:?}"
    );
}

#[test]
fn lockorder_finds_cycle_reacquire_and_send_under_lock() {
    let report = lint_fixture("lockorder", "lock-order");
    let msgs = rendered(&report);
    assert!(
        msgs.iter()
            .any(|m| m.contains("lock-order cycle") && m.contains("alpha") && m.contains("beta")),
        "ABBA cycle not found: {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("`alpha` re-acquired")),
        "re-acquisition not found: {msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("send-under-lock") && m.contains("Pair::ship")),
        "send under lock not found: {msgs:?}"
    );
    // `ship_allowed` is suppressed by its escape hatch.
    assert!(
        !msgs.iter().any(|m| m.contains("ship_allowed")),
        "allow(send-under-lock) ignored: {msgs:?}"
    );
    assert_eq!(report.diags.len(), 3, "{msgs:?}");
}

#[test]
fn wiretags_flags_dup_missing_arms_and_unhandled_variant() {
    let report = lint_fixture("wiretags", "wire-tags");
    let msgs = rendered(&report);
    assert!(
        msgs.iter()
            .any(|m| m.contains("tag value 3") && m.contains("T_ORPHAN") && m.contains("T_DUP")),
        "duplicate tag not found: {msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("T_NO_ENCODE has no encode arm")),
        "missing encode arm not found: {msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("T_NO_DECODE has no decode arm")),
        "missing decode arm not found: {msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("Msg::Orphan") && m.contains("no handler match arm")),
        "unhandled variant not found: {msgs:?}"
    );
    assert_eq!(report.diags.len(), 4, "{msgs:?}");
}

#[test]
fn ratchet_fails_protocol_rise_and_notes_ratchet_down() {
    let report = lint_fixture("ratchet", "panic-ratchet");
    let msgs = rendered(&report);
    // mocha-net (protocol): 4 sites vs baseline 2 → hard failure.
    assert_eq!(report.diags.len(), 1, "{msgs:?}");
    assert!(
        msgs[0].contains("mocha-net") && msgs[0].contains('4') && msgs[0].contains('2'),
        "rise not reported: {msgs:?}"
    );
    // mocha-extras (non-protocol): 1 vs baseline 5 → ratchet-down note.
    assert!(
        report
            .notes
            .iter()
            .any(|n| n.contains("mocha-extras") && n.contains("ratchet the baseline down")),
        "ratchet-down note missing: {:?}",
        report.notes
    );
}

#[test]
fn unknown_analysis_name_is_rejected() {
    let err = mocha_lint::run(
        &lint_crate_dir().join("fixtures").join("blocking"),
        Some("nope"),
    )
    .expect_err("unknown analysis must error");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
}
