//! The wall, pointed at this very workspace: every analysis must come
//! back clean, and the checked-in panic baseline must match the tree
//! exactly (a burn-down that forgets to ratchet `lint-baseline.toml`
//! down fails here).

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    let start = option_env!("CARGO_MANIFEST_DIR")
        .map_or_else(|| std::env::current_dir().expect("cwd"), PathBuf::from);
    mocha_lint::find_root(&start).expect("workspace root")
}

#[test]
fn workspace_passes_the_wall() {
    let report = mocha_lint::run(&workspace_root(), None).expect("lint run");
    assert!(
        report.clean(),
        "the workspace must lint clean:\n{}",
        report
            .diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn baseline_matches_tree_exactly() {
    let root = workspace_root();
    assert!(
        mocha_lint::ratchet::baseline_in_sync(&root).expect("scan"),
        "lint-baseline.toml is stale; regenerate with \
         `cargo run -p mocha-lint -- --write-baseline`"
    );
}
