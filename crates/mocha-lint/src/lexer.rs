//! A minimal Rust lexer: just enough token structure for the four
//! analyses, with exact line numbers and `// lint: allow(...)` capture.
//!
//! This is deliberately *not* a full parser. Every analysis in this crate
//! works on shapes that survive tokenization — function boundaries via
//! brace matching, call sites via `ident (`, lock acquisitions via
//! `. lock ( )` — so a hand-rolled lexer keeps the lint wall free of any
//! external dependency. The lexer must, however, be exactly right about
//! what is *not* code: comments, string/char literals (including raw and
//! byte strings), and lifetimes, since a `"panic!"` inside a string must
//! never count as a panic site.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token kind plus payload.
    pub kind: TokKind,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// The token kinds the analyses distinguish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword; the text is preserved.
    Ident(String),
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// String/char/byte-string literal. Contents are dropped.
    Str,
    /// Numeric literal; the raw text is preserved (the wire-tag analysis
    /// reads `const T_* : u8 = <number>`).
    Num(String),
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }
}

/// A `// lint: allow(rule, ...)` escape comment.
///
/// An allow on line *N* suppresses matching diagnostics reported on line
/// *N* or *N + 1*, so it can sit at the end of the offending line or on
/// its own line directly above.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule names listed inside `allow(...)`.
    pub rules: Vec<String>,
    /// 1-based line of the comment.
    pub line: u32,
}

/// Lexer output: the token stream plus all escape comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// Escape comments in source order.
    pub allows: Vec<Allow>,
}

/// Tokenizes `src`. Unterminated literals/comments end the scan early
/// rather than panicking: a file the lexer cannot finish still yields the
/// tokens seen so far (rustc will reject it anyway).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                'r' | 'b' if self.raw_or_byte_prefix() => self.raw_or_byte(),
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c == '_' || c.is_alphanumeric() => self.ident(),
                c => {
                    self.push(TokKind::Punct(c));
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind) {
        self.out.toks.push(Tok {
            kind,
            line: self.line,
        });
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while self.peek(0).is_some_and(|c| c != '\n') {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if let Some(allow) = parse_allow(&text, self.line) {
            self.out.allows.push(allow);
        }
    }

    fn block_comment(&mut self) {
        // Rust block comments nest.
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.pos += 2;
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    return;
                }
            } else {
                if c == '\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
        }
    }

    fn string(&mut self) {
        let line = self.line;
        self.pos += 1; // opening quote
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => self.pos += 2,
                '"' => {
                    self.pos += 1;
                    break;
                }
                _ => {
                    if c == '\n' {
                        self.line += 1;
                    }
                    self.pos += 1;
                }
            }
        }
        self.out.toks.push(Tok {
            kind: TokKind::Str,
            line,
        });
    }

    /// True when the `r`/`b` at the cursor starts a raw/byte literal
    /// rather than an identifier (`r"`, `r#"`, `b"`, `b'`, `br"`, ...).
    fn raw_or_byte_prefix(&self) -> bool {
        let mut i = if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            2
        } else {
            1
        };
        loop {
            match self.peek(i) {
                Some('#') => i += 1,
                Some('"') => return true,
                Some('\'') => return i == 1 && self.peek(0) == Some('b'),
                _ => return false,
            }
        }
    }

    fn raw_or_byte(&mut self) {
        let line = self.line;
        if self.peek(0) == Some('b') && self.peek(1) == Some('\'') {
            // Byte char literal b'x' / b'\n'.
            self.pos += 2;
            if self.peek(0) == Some('\\') {
                self.pos += 1;
            }
            while self.peek(0).is_some_and(|c| c != '\'') {
                self.pos += 1;
            }
            self.pos += 1;
            self.out.toks.push(Tok {
                kind: TokKind::Str,
                line,
            });
            return;
        }
        // r/br with zero or more #s, then a quote.
        self.pos += 1; // r or b
        if self.peek(0) == Some('r') {
            self.pos += 1;
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        'scan: while let Some(c) = self.peek(0) {
            if c == '\n' {
                self.line += 1;
            }
            if c == '"' {
                for h in 0..hashes {
                    if self.peek(1 + h) != Some('#') {
                        self.pos += 1;
                        continue 'scan;
                    }
                }
                self.pos += 1 + hashes;
                break;
            }
            self.pos += 1;
        }
        self.out.toks.push(Tok {
            kind: TokKind::Str,
            line,
        });
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // `'a` / `'static` (not followed by a closing quote) is a
        // lifetime; everything else is a char literal.
        let is_lifetime = self.peek(1).is_some_and(|c| c == '_' || c.is_alphabetic())
            && self.peek(2) != Some('\'');
        if is_lifetime {
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|c| c == '_' || c.is_alphanumeric())
            {
                self.pos += 1;
            }
            self.out.toks.push(Tok {
                kind: TokKind::Lifetime,
                line,
            });
            return;
        }
        self.pos += 1; // opening quote
        if self.peek(0) == Some('\\') {
            self.pos += 2;
            // \u{...}
            if self.peek(0) == Some('{') {
                while self.peek(0).is_some_and(|c| c != '}') {
                    self.pos += 1;
                }
                self.pos += 1;
            }
        } else {
            self.pos += 1;
        }
        while self.peek(0).is_some_and(|c| c != '\'') {
            self.pos += 1;
        }
        self.pos += 1; // closing quote
        self.out.toks.push(Tok {
            kind: TokKind::Str,
            line,
        });
    }

    fn number(&mut self) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                self.pos += 1;
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the number; `1..26` does not.
                self.pos += 1;
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokKind::Num(text));
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|c| c == '_' || c.is_alphanumeric())
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(TokKind::Ident(text));
    }
}

/// Parses `// lint: allow(a, b)` out of a line comment.
fn parse_allow(comment: &str, line: u32) -> Option<Allow> {
    let rest = comment.trim_start_matches('/').trim_start();
    let rest = rest.strip_prefix("lint:")?.trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let inner = rest.split(')').next()?;
    let rules: Vec<String> = inner
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return None;
    }
    Some(Allow { rules, line })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let src = r##"
            // unwrap() in a comment
            /* panic!() in /* a nested */ block */
            let s = "unwrap()";
            let r = r#"expect("x")"#;
            let c = '\'';
            real.unwrap();
        "##;
        let ids = idents(src);
        assert_eq!(
            ids.iter().filter(|i| i.as_str() == "unwrap").count(),
            1,
            "only the real unwrap survives: {ids:?}"
        );
        assert!(!ids.iter().any(|i| i == "panic" || i == "expect"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let lexed = lex(src);
        assert_eq!(
            lexed
                .toks
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            3
        );
        assert!(lexed.toks.iter().all(|t| t.kind != TokKind::Str));
    }

    #[test]
    fn allow_comments_are_captured() {
        let src = "x();\ny(); // lint: allow(blocking, lock-order)\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].line, 2);
        assert_eq!(lexed.allows[0].rules, vec!["blocking", "lock-order"]);
    }

    #[test]
    fn numbers_keep_text_and_ranges_split() {
        let lexed = lex("const T: u8 = 26; for i in 1..26 {}");
        let nums: Vec<&str> = lexed
            .toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Num(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["26", "1", "26"]);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nlines\"\nb";
        let lexed = lex(src);
        let b = lexed.toks.iter().find(|t| t.is_ident("b")).expect("b");
        assert_eq!(b.line, 4);
    }
}
