//! Panic ratchet.
//!
//! Counts potential panic sites per crate — `unwrap()`, `expect(...)`,
//! `panic!`/`todo!`/`unimplemented!`/`unreachable!`, and indexing
//! (`expr[...]`) — in non-test code, and compares against the checked-in
//! `lint-baseline.toml`. For the protocol-path crates (`mocha`,
//! `mocha-net`, `mocha-wire`) a count above baseline fails the lint; for
//! other crates it is reported as a note. Counts below baseline are
//! reported as ratchet-down suggestions: lower the number in the
//! baseline, never raise one. Regenerate with
//! `cargo run -p mocha-lint -- --write-baseline`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::lexer::TokKind;
use crate::model::Workspace;
use crate::Diag;

/// Baseline file name, at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.toml";
/// Crates where a rising count fails CI.
const PROTOCOL_CRATES: [&str; 3] = ["mocha", "mocha-net", "mocha-wire"];

/// Counts panic sites per crate.
pub fn count(ws: &Workspace) -> BTreeMap<String, usize> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for file in &ws.files {
        let entry = counts.entry(file.crate_name.clone()).or_insert(0);
        let toks = &file.toks;
        for i in 0..toks.len() {
            let site = match &toks[i].kind {
                TokKind::Ident(s) if s == "unwrap" || s == "expect" => {
                    toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                        && i > 0
                        && toks[i - 1].is_punct('.')
                }
                TokKind::Ident(s)
                    if s == "panic"
                        || s == "todo"
                        || s == "unimplemented"
                        || s == "unreachable" =>
                {
                    toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
                }
                // Postfix indexing: `[` directly after an expression.
                TokKind::Punct('[') => {
                    i > 0
                        && match &toks[i - 1].kind {
                            TokKind::Ident(s) => !is_keyword(s),
                            TokKind::Punct(')' | ']') => true,
                            _ => false,
                        }
                }
                _ => false,
            };
            if site {
                *entry += 1;
            }
        }
    }
    counts
}

/// Runs the ratchet against the baseline. `notes` receives non-fatal
/// observations (ratchet-down opportunities, non-protocol regressions).
pub fn run(ws: &Workspace, notes: &mut Vec<String>) -> Vec<Diag> {
    let mut diags = Vec::new();
    let counts = count(ws);
    let path = ws.root.join(BASELINE_FILE);
    let Ok(raw) = fs::read_to_string(&path) else {
        diags.push(Diag {
            rule: "panic-ratchet",
            file: BASELINE_FILE.to_string(),
            line: 1,
            msg: format!(
                "missing {BASELINE_FILE}; generate it with `cargo run -p mocha-lint -- \
                 --write-baseline`"
            ),
        });
        return diags;
    };
    let baseline = parse_baseline(&raw);
    for (krate, &now) in &counts {
        let protocol = PROTOCOL_CRATES.contains(&krate.as_str());
        match baseline.get(krate) {
            Some(&base) if now > base => {
                let msg = format!(
                    "{krate}: {now} panic sites, baseline {base} — new unwrap/expect/\
                     indexing/panic! on a protocol path must be burned down, not added"
                );
                if protocol {
                    diags.push(Diag {
                        rule: "panic-ratchet",
                        file: BASELINE_FILE.to_string(),
                        line: 1,
                        msg,
                    });
                } else {
                    notes.push(format!("panic-ratchet (non-fatal): {msg}"));
                }
            }
            Some(&base) if now < base => {
                notes.push(format!(
                    "panic-ratchet: {krate} is at {now}, baseline {base} — ratchet the \
                     baseline down"
                ));
            }
            Some(_) => {}
            None => {
                let msg = format!("{krate}: {now} panic sites but no entry in {BASELINE_FILE}");
                if protocol {
                    diags.push(Diag {
                        rule: "panic-ratchet",
                        file: BASELINE_FILE.to_string(),
                        line: 1,
                        msg,
                    });
                } else {
                    notes.push(format!("panic-ratchet (non-fatal): {msg}"));
                }
            }
        }
    }
    diags
}

/// Renders a fresh baseline for the current tree.
pub fn render_baseline(ws: &Workspace) -> String {
    let mut out = String::from(
        "# Panic-site ratchet baseline for mocha-lint.\n\
         #\n\
         # Each entry is the number of potential panic sites (unwrap/expect,\n\
         # panic!-family macros, indexing) in that crate's non-test code. CI\n\
         # fails when a protocol-path crate (mocha, mocha-net, mocha-wire)\n\
         # rises above its entry. Numbers only ratchet DOWN: lower one after\n\
         # a burn-down, never raise one. Regenerate with\n\
         #     cargo run -p mocha-lint -- --write-baseline\n\
         \n[panic-sites]\n",
    );
    for (krate, n) in count(ws) {
        let _ = writeln!(out, "{krate} = {n}");
    }
    out
}

/// Writes the baseline file. Returns its rendered contents.
///
/// # Errors
///
/// Propagates the write error.
pub fn write_baseline(ws: &Workspace) -> std::io::Result<String> {
    let rendered = render_baseline(ws);
    fs::write(ws.root.join(BASELINE_FILE), &rendered)?;
    Ok(rendered)
}

/// Parses the `[panic-sites]` table of the baseline file. Deliberately a
/// tiny hand-rolled reader (full TOML is not needed for `key = int`).
fn parse_baseline(raw: &str) -> BTreeMap<String, usize> {
    let mut map = BTreeMap::new();
    let mut in_section = false;
    for line in raw.lines() {
        let line = line.trim();
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            in_section = line == "[panic-sites]";
            continue;
        }
        if !in_section {
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            if let Ok(n) = value.trim().parse::<usize>() {
                map.insert(key.trim().to_string(), n);
            }
        }
    }
    map
}

/// Keywords that can directly precede `[` without forming an index
/// expression (`return [..]`, `break [..]`, `in [..]`, ...).
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "return"
            | "break"
            | "continue"
            | "in"
            | "if"
            | "else"
            | "match"
            | "mut"
            | "ref"
            | "move"
            | "as"
            | "dyn"
            | "impl"
            | "where"
            | "let"
            | "const"
            | "static"
            | "type"
            | "fn"
            | "use"
            | "pub"
    )
}

/// Lints the baseline file itself against a freshly counted tree rooted
/// at `root` (used by `--write-baseline` to confirm the write landed).
///
/// # Errors
///
/// Propagates scan errors.
pub fn baseline_in_sync(root: &Path) -> std::io::Result<bool> {
    let ws = Workspace::scan(root)?;
    let raw = fs::read_to_string(ws.root.join(BASELINE_FILE)).unwrap_or_default();
    let baseline = parse_baseline(&raw);
    Ok(count(&ws).iter().all(|(k, &n)| baseline.get(k) == Some(&n)))
}
