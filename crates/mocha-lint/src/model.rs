//! Workspace model: scans the source tree, strips `#[cfg(test)]` code,
//! extracts function definitions with their body token ranges, and
//! harvests which field/binding names are Mutex/RwLock-typed.
//!
//! Scope of a scan: `src/` of every crate under `crates/`, plus the root
//! umbrella crate's `src/`. Test modules, integration tests, benches and
//! examples are deliberately out of scope — the wall guards the protocol
//! paths that run in production, and counting test-harness `unwrap()`s
//! would make the panic ratchet fight test-writing.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Allow, Tok, TokKind};

/// One scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Owning crate (`mocha`, `mocha-net`, ... or `mocha-repro` for the
    /// root umbrella crate).
    pub crate_name: String,
    /// Token stream with `#[cfg(test)]` items removed.
    pub toks: Vec<Tok>,
    /// `// lint: allow(...)` escapes found anywhere in the file.
    pub allows: Vec<Allow>,
    /// Functions defined in this file, in source order.
    pub fns: Vec<FnDef>,
}

/// A function definition and its body token range.
#[derive(Debug)]
pub struct FnDef {
    /// Bare name (`run_shard`).
    pub name: String,
    /// Qualified display name (`Shard::run_shard` inside an impl block).
    pub qual: String,
    /// Token index of the body's opening `{` in [`SourceFile::toks`].
    pub body_open: usize,
    /// Token index of the body's closing `}`.
    pub body_close: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// The scanned workspace.
#[derive(Debug)]
pub struct Workspace {
    /// Workspace root directory.
    pub root: PathBuf,
    /// All scanned files.
    pub files: Vec<SourceFile>,
    /// Names of struct fields / let bindings whose type is (or aliases)
    /// `Mutex` or `RwLock`. Lock identity for the lock-order graph.
    pub lock_names: BTreeSet<String>,
}

impl Workspace {
    /// Scans the workspace rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory walks and file reads.
    pub fn scan(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)?
                .filter_map(Result::ok)
                .map(|e| e.path())
                .collect();
            entries.sort();
            for krate in entries {
                let src = krate.join("src");
                if !src.is_dir() {
                    continue;
                }
                let name = krate
                    .file_name()
                    .map_or_else(String::new, |n| n.to_string_lossy().into_owned());
                collect_rs(&src, root, &name, &mut files)?;
            }
        }
        let root_src = root.join("src");
        if root_src.is_dir() {
            collect_rs(&root_src, root, "mocha-repro", &mut files)?;
        }
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        let lock_names = harvest_lock_names(&files);
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            lock_names,
        })
    }

    /// Looks up the scanned file with the given `/`-separated relative
    /// path suffix (e.g. `runtime/socket.rs`).
    pub fn file_by_suffix(&self, suffix: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel.ends_with(suffix))
    }

    /// True when a diagnostic at `line` of `file` is suppressed by a
    /// `// lint: allow(rule)` on the same line or the line above.
    pub fn is_allowed(file: &SourceFile, rule: &str, line: u32) -> bool {
        file.allows
            .iter()
            .any(|a| (a.line == line || a.line + 1 == line) && a.rules.iter().any(|r| r == rule))
    }
}

fn collect_rs(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, crate_name, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let src = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(load_file(&src, rel, crate_name.to_string()));
        }
    }
    Ok(())
}

/// Loads a single in-memory source for unit tests in sibling modules.
#[cfg(test)]
pub(crate) fn load_file_for_tests(src: &str) -> SourceFile {
    load_file(src, "test.rs".into(), "test-crate".into())
}

fn load_file(src: &str, rel: String, crate_name: String) -> SourceFile {
    let lexed = lex(src);
    let toks = strip_test_items(lexed.toks);
    let fns = extract_fns(&toks);
    SourceFile {
        rel,
        crate_name,
        toks,
        allows: lexed.allows,
        fns,
    }
}

/// Removes `#[cfg(test)]`- and `#[test]`-attributed items from the token
/// stream so no analysis ever sees test code.
fn strip_test_items(toks: Vec<Tok>) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0;
    while i < toks.len() {
        if let Some(after_attr) = match_test_attr(&toks, i) {
            i = skip_item(&toks, after_attr);
        } else {
            out.push(toks[i].clone());
            i += 1;
        }
    }
    out
}

/// If a `#[cfg(test)]` or `#[test]` attribute starts at `i`, returns the
/// index just past the closing `]`.
fn match_test_attr(toks: &[Tok], i: usize) -> Option<usize> {
    if !toks.get(i)?.is_punct('#') || !toks.get(i + 1)?.is_punct('[') {
        return None;
    }
    if toks.get(i + 2)?.is_ident("test") && toks.get(i + 3)?.is_punct(']') {
        return Some(i + 4);
    }
    if toks.get(i + 2)?.is_ident("cfg")
        && toks.get(i + 3)?.is_punct('(')
        && toks.get(i + 4)?.is_ident("test")
        && toks.get(i + 5)?.is_punct(')')
        && toks.get(i + 6)?.is_punct(']')
    {
        return Some(i + 7);
    }
    None
}

/// Skips one item starting at `i` (further attributes included): consumes
/// up to and including either a `;` at depth 0 or a balanced `{ ... }`
/// block. Returns the index just past the item.
fn skip_item(toks: &[Tok], mut i: usize) -> usize {
    // Further attributes on the same item.
    while i + 1 < toks.len() && toks[i].is_punct('#') && toks[i + 1].is_punct('[') {
        let mut depth = 0usize;
        i += 1;
        while i < toks.len() {
            if toks[i].is_punct('[') {
                depth += 1;
            } else if toks[i].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    let mut paren = 0i32;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('(' | '[') => paren += 1,
            TokKind::Punct(')' | ']') => paren -= 1,
            TokKind::Punct(';') if paren == 0 => return i + 1,
            TokKind::Punct('{') if paren == 0 => return skip_balanced_braces(toks, i),
            _ => {}
        }
        i += 1;
    }
    i
}

/// With `toks[i]` an opening `{`, returns the index just past the
/// matching `}`.
fn skip_balanced_braces(toks: &[Tok], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        if toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Extracts every `fn` definition with a body, tracking the enclosing
/// `impl`/`trait` type for qualified display names.
fn extract_fns(toks: &[Tok]) -> Vec<FnDef> {
    let mut fns = Vec::new();
    // Stack of (brace_depth_when_entered, context name) for impl/trait
    // blocks; used only for display names.
    let mut ctx: Vec<(i32, String)> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                while ctx.last().is_some_and(|(d, _)| *d > depth) {
                    ctx.pop();
                }
            }
            TokKind::Ident(kw) if kw == "impl" || kw == "trait" => {
                if let Some(name) = impl_context_name(toks, i) {
                    ctx.push((depth + 1, name));
                }
            }
            TokKind::Ident(kw) if kw == "fn" => {
                if let Some(def) = fn_def_at(toks, i, ctx.last().map(|(_, n)| n.as_str())) {
                    // Jump to just before the body's `{` so the next
                    // iteration processes it for depth tracking; the body
                    // is rescanned so nested `fn` defs are found too.
                    i = def.body_open - 1;
                    fns.push(def);
                }
            }
            _ => {}
        }
        i += 1;
    }
    fns
}

/// For an `impl`/`trait` keyword at `i`, finds the type name the block is
/// about (`impl Foo`, `impl Trait for Foo`, `trait Bar`).
fn impl_context_name(toks: &[Tok], i: usize) -> Option<String> {
    let mut names = Vec::new();
    let mut j = i + 1;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('{') => break,
            TokKind::Punct(';') => return None, // `trait X;` has no body
            TokKind::Ident(s) if s == "for" => names.clear(),
            TokKind::Ident(s) if s == "where" => break,
            TokKind::Ident(s)
                if s.chars().next().is_some_and(char::is_uppercase) && names.is_empty() =>
            {
                names.push(s.clone());
            }
            _ => {}
        }
        j += 1;
    }
    names.pop()
}

/// Parses a `fn` definition starting at keyword index `i`. Returns `None`
/// for body-less declarations (trait methods, `fn` pointer types).
fn fn_def_at(toks: &[Tok], i: usize, ctx: Option<&str>) -> Option<FnDef> {
    let name_tok = toks.get(i + 1)?;
    let name = name_tok.ident()?.to_string();
    // Find the parameter list's opening paren (skipping generics).
    let mut j = i + 2;
    let mut angle = 0i32;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') if !toks[j - 1].is_punct('-') => angle -= 1,
            TokKind::Punct('(') if angle <= 0 => break,
            TokKind::Punct('{' | ';') => return None,
            _ => {}
        }
        j += 1;
    }
    // Skip the balanced parameter list.
    let mut paren = 0i32;
    while j < toks.len() {
        if toks[j].is_punct('(') {
            paren += 1;
        } else if toks[j].is_punct(')') {
            paren -= 1;
            if paren == 0 {
                j += 1;
                break;
            }
        }
        j += 1;
    }
    // Scan the return type / where clause for the body `{` or a `;`.
    let mut depth = 0i32;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('(' | '[') => depth += 1,
            TokKind::Punct(')' | ']') => depth -= 1,
            TokKind::Punct(';') if depth == 0 => return None,
            TokKind::Punct('{') if depth == 0 => {
                let close = skip_balanced_braces(toks, j) - 1;
                let qual = ctx.map_or_else(|| name.clone(), |c| format!("{c}::{name}"));
                return Some(FnDef {
                    name,
                    qual,
                    body_open: j,
                    body_close: close,
                    line: toks[i].line,
                });
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Harvests the set of field/binding names whose declared type is (or
/// aliases) `Mutex`/`RwLock`.
fn harvest_lock_names(files: &[SourceFile]) -> BTreeSet<String> {
    // Pass 1 (to fixpoint): type aliases that mention a lockish type.
    let mut lockish: BTreeSet<String> = ["Mutex", "RwLock"]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    loop {
        let before = lockish.len();
        for f in files {
            let toks = &f.toks;
            let mut i = 0;
            while i + 3 < toks.len() {
                if toks[i].is_ident("type") {
                    if let Some(alias) = toks[i + 1].ident() {
                        if toks[i + 2].is_punct('=') || toks[i + 2].is_punct('<') {
                            let mut j = i + 2;
                            let mut hit = false;
                            while j < toks.len() && !toks[j].is_punct(';') {
                                if toks[j].ident().is_some_and(|s| lockish.contains(s)) {
                                    hit = true;
                                }
                                j += 1;
                            }
                            if hit {
                                lockish.insert(alias.to_string());
                            }
                            i = j;
                        }
                    }
                }
                i += 1;
            }
        }
        if lockish.len() == before {
            break;
        }
    }
    // Pass 2: struct fields + let bindings of a lockish type.
    let mut names = BTreeSet::new();
    for f in files {
        let toks = &f.toks;
        let mut i = 0;
        while i < toks.len() {
            if toks[i].is_ident("struct") && i + 2 < toks.len() {
                // Find the body `{` (skip `struct X;` and tuple structs).
                let mut j = i + 1;
                while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                    if toks[j].is_punct('(') {
                        break;
                    }
                    j += 1;
                }
                if j < toks.len() && toks[j].is_punct('{') {
                    harvest_struct_fields(toks, j, &lockish, &mut names);
                    i = skip_balanced_braces(toks, j);
                    continue;
                }
            } else if toks[i].is_ident("let") {
                harvest_let_binding(toks, i, &lockish, &mut names);
            }
            i += 1;
        }
    }
    names
}

/// With `toks[open]` the `{` of a struct body, records lockish fields.
fn harvest_struct_fields(
    toks: &[Tok],
    open: usize,
    lockish: &BTreeSet<String>,
    names: &mut BTreeSet<String>,
) {
    let close = skip_balanced_braces(toks, open) - 1;
    let mut i = open + 1;
    while i < close {
        // Field pattern at depth 1: `name :` ... type ... (`,` | `}`).
        if toks[i].ident().is_some()
            && i + 1 < close
            && toks[i + 1].is_punct(':')
            && !toks[i + 2].is_punct(':')
        {
            let field = toks[i].ident().unwrap_or_default().to_string();
            let mut j = i + 2;
            let mut depth = 0i32;
            let mut hit = false;
            while j < close {
                match &toks[j].kind {
                    TokKind::Punct('<' | '(') => depth += 1,
                    TokKind::Punct('>' | ')') => depth -= 1,
                    TokKind::Punct(',') if depth <= 0 => break,
                    TokKind::Ident(s) if lockish.contains(s) => hit = true,
                    _ => {}
                }
                j += 1;
            }
            if hit {
                names.insert(field);
            }
            i = j;
        }
        i += 1;
    }
}

/// For a `let` at `i`, records the binding if the initializer calls
/// `Mutex::new` / `RwLock::new` (possibly wrapped in `Arc::new`).
fn harvest_let_binding(
    toks: &[Tok],
    i: usize,
    lockish: &BTreeSet<String>,
    names: &mut BTreeSet<String>,
) {
    let Some(name) = toks.get(i + 1).and_then(Tok::ident) else {
        return;
    };
    if name == "mut" {
        // `let mut name = ...`
        if let Some(n2) = toks.get(i + 2).and_then(Tok::ident) {
            return harvest_let_named(toks, i, n2, lockish, names);
        }
        return;
    }
    harvest_let_named(toks, i, name, lockish, names);
}

fn harvest_let_named(
    toks: &[Tok],
    i: usize,
    name: &str,
    lockish: &BTreeSet<String>,
    names: &mut BTreeSet<String>,
) {
    let mut j = i + 2;
    while j + 2 < toks.len() && !toks[j].is_punct(';') {
        if toks[j].ident().is_some_and(|s| lockish.contains(s))
            && toks[j + 1].is_punct(':')
            && toks[j + 2].is_punct(':')
        {
            names.insert(name.to_string());
            return;
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        load_file(src, "x.rs".into(), "test-crate".into())
    }

    #[test]
    fn extracts_fns_with_impl_context() {
        let f = file(
            "impl Shard { fn run(&mut self) -> Result<(), E> { inner(); } }\n\
             fn inner() {}\n\
             trait T { fn decl(&self); fn with_default(&self) { } }",
        );
        let names: Vec<&str> = f.fns.iter().map(|d| d.qual.as_str()).collect();
        assert_eq!(names, vec!["Shard::run", "inner", "T::with_default"]);
    }

    #[test]
    fn strips_cfg_test_modules_and_test_fns() {
        let f = file(
            "fn live() {}\n\
             #[cfg(test)]\nmod tests { fn helper() { x.unwrap(); } }\n\
             #[test]\nfn a_test() { y.unwrap(); }\n\
             fn also_live() {}",
        );
        let names: Vec<&str> = f.fns.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["live", "also_live"]);
        assert!(!f.toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn harvests_lock_fields_through_aliases() {
        let files = vec![file(
            "type SharedBook = Arc<RwLock<AddressBook>>;\n\
             struct S { book: SharedBook, log: Arc<Mutex<Vec<u8>>>, plain: u32 }\n\
             fn f() { let extra = Arc::new(Mutex::new(0)); }",
        )];
        let names = harvest_lock_names(&files);
        assert!(names.contains("book"));
        assert!(names.contains("log"));
        assert!(names.contains("extra"));
        assert!(!names.contains("plain"));
    }

    #[test]
    fn generic_fns_and_where_clauses_parse() {
        let f = file(
            "fn call<T: Into<Vec<u8>>>(x: T) -> Option<T> where T: Clone { Some(x) }\n\
             fn arrow() -> impl Fn() -> u32 { || 1 }",
        );
        let names: Vec<&str> = f.fns.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["call", "arrow"]);
    }
}
