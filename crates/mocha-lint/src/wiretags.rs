//! Wire-tag exhaustiveness.
//!
//! Parses the `const T_* : u8 = n;` tag table in
//! `crates/mocha-wire/src/message.rs` and verifies, for every tag:
//!
//! * the tag value is unique,
//! * an encode arm exists (`w.put_u8(T_*)`),
//! * a decode arm exists (`T_* => ...`), naming a `Msg::Variant`,
//! * the decoded variant has a *handler* match arm in one of the
//!   protocol's dispatch files (`daemon.rs`, `sync.rs`, `spawn.rs`,
//!   `runtime/core.rs`) — so a PR-4-style message addition cannot ship
//!   encode/decode without anyone consuming the message,
//! * the decoder keeps its `BadTag` fallback for unknown tags.
//!
//! `Ping`/`Pong` are exempt from the handler check: they are the
//! small-message benchmark's synthetic traffic and are consumed by the
//! bench harness, not the protocol dispatchers.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Tok, TokKind};
use crate::model::{SourceFile, Workspace};
use crate::Diag;

/// The file defining the tag table and codec.
const MESSAGE_FILE: &str = "mocha-wire/src/message.rs";
/// Files whose match arms count as protocol handlers. `app.rs` is the
/// application runner, which answers heartbeat probes itself.
const HANDLER_FILES: [&str; 5] = [
    "mocha/src/daemon.rs",
    "mocha/src/sync.rs",
    "mocha/src/spawn.rs",
    "mocha/src/runtime/core.rs",
    "mocha/src/app.rs",
];
/// Variants without a protocol handler by design (bench-only traffic).
const HANDLER_EXEMPT: [&str; 2] = ["Ping", "Pong"];

/// Runs the analysis.
pub fn run(ws: &Workspace) -> Vec<Diag> {
    let Some(msg) = ws.file_by_suffix(MESSAGE_FILE) else {
        return Vec::new();
    };
    let mut diags = Vec::new();
    let toks = &msg.toks;

    // 1. The tag table.
    let mut tags: Vec<(String, u64, u32)> = Vec::new();
    let mut i = 0;
    while i + 5 < toks.len() {
        if toks[i].is_ident("const")
            && toks[i + 1].ident().is_some_and(|n| n.starts_with("T_"))
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("u8")
            && toks[i + 4].is_punct('=')
        {
            if let TokKind::Num(n) = &toks[i + 5].kind {
                let name = toks[i + 1].ident().unwrap_or_default().to_string();
                let value = n.replace('_', "").parse::<u64>().unwrap_or(u64::MAX);
                tags.push((name, value, toks[i + 1].line));
                i += 5;
            }
        }
        i += 1;
    }
    if tags.is_empty() {
        diags.push(Diag {
            rule: "wire-tags",
            file: msg.rel.clone(),
            line: 1,
            msg: "no `const T_*: u8` tag table found".to_string(),
        });
        return diags;
    }
    let mut by_value: BTreeMap<u64, &str> = BTreeMap::new();
    for (name, value, line) in &tags {
        if let Some(first) = by_value.insert(*value, name) {
            diags.push(Diag {
                rule: "wire-tags",
                file: msg.rel.clone(),
                line: *line,
                msg: format!("tag value {value} assigned to both {first} and {name}"),
            });
        }
    }

    // 2. Encode arms: `put_u8(T_*)`.
    let mut encoded: BTreeSet<&str> = BTreeSet::new();
    for (j, t) in toks.iter().enumerate() {
        if t.is_ident("put_u8")
            && toks.get(j + 1).is_some_and(|t| t.is_punct('('))
            && toks
                .get(j + 2)
                .and_then(Tok::ident)
                .is_some_and(|n| n.starts_with("T_"))
        {
            if let Some(name) = toks[j + 2].ident() {
                encoded.insert(name);
            }
        }
    }

    // 3. Decode arms: `T_* =>`, and the Msg variant each constructs.
    let mut decoded: BTreeMap<&str, Option<String>> = BTreeMap::new();
    for (j, t) in toks.iter().enumerate() {
        let Some(name) = t.ident().filter(|n| n.starts_with("T_")) else {
            continue;
        };
        if !(toks.get(j + 1).is_some_and(|t| t.is_punct('='))
            && toks.get(j + 2).is_some_and(|t| t.is_punct('>')))
        {
            continue;
        }
        // The first `Msg::Variant` after the arrow is the constructed
        // variant (arms are short; 300 tokens covers the largest).
        let mut variant = None;
        for k in j + 3..(j + 300).min(toks.len().saturating_sub(2)) {
            if toks[k].is_ident("Msg") && toks[k + 1].is_punct(':') && toks[k + 2].is_punct(':') {
                variant = toks.get(k + 3).and_then(Tok::ident).map(str::to_string);
                break;
            }
        }
        decoded.insert(name, variant);
    }

    for (name, _, line) in &tags {
        if !encoded.contains(name.as_str()) {
            diags.push(Diag {
                rule: "wire-tags",
                file: msg.rel.clone(),
                line: *line,
                msg: format!("{name} has no encode arm (`put_u8({name})` not found)"),
            });
        }
        if !decoded.contains_key(name.as_str()) {
            diags.push(Diag {
                rule: "wire-tags",
                file: msg.rel.clone(),
                line: *line,
                msg: format!("{name} has no decode arm (`{name} => ...` not found)"),
            });
        }
    }

    // 4. Every decodable variant is handled by a protocol dispatcher.
    let handler_files: Vec<&SourceFile> = HANDLER_FILES
        .iter()
        .filter_map(|s| ws.file_by_suffix(s))
        .collect();
    if !handler_files.is_empty() {
        let mut handled: BTreeSet<String> = BTreeSet::new();
        for f in &handler_files {
            collect_match_arms(&f.toks, &mut handled);
        }
        for (name, _, line) in &tags {
            let Some(Some(variant)) = decoded.get(name.as_str()) else {
                continue;
            };
            if HANDLER_EXEMPT.contains(&variant.as_str()) || handled.contains(variant) {
                continue;
            }
            diags.push(Diag {
                rule: "wire-tags",
                file: msg.rel.clone(),
                line: *line,
                msg: format!(
                    "{name} decodes to Msg::{variant} but no handler match arm exists in {}",
                    HANDLER_FILES.join(", ")
                ),
            });
        }
    }

    // 5. The unknown-tag fallback must survive.
    if !toks.iter().any(|t| t.is_ident("BadTag")) {
        diags.push(Diag {
            rule: "wire-tags",
            file: msg.rel.clone(),
            line: 1,
            msg: "decoder has no BadTag fallback for unknown tags".to_string(),
        });
    }
    diags
}

/// Collects variant names that appear as `Msg::Variant` in match-arm
/// position: the pattern may be followed by a braced/parenthesised
/// binding list, then `=>`, `|`, or `if`.
fn collect_match_arms(toks: &[Tok], out: &mut BTreeSet<String>) {
    for j in 0..toks.len().saturating_sub(3) {
        if !(toks[j].is_ident("Msg") && toks[j + 1].is_punct(':') && toks[j + 2].is_punct(':')) {
            continue;
        }
        let Some(variant) = toks[j + 3].ident() else {
            continue;
        };
        let mut k = j + 4;
        // Skip one balanced `{...}` or `(...)` binding list.
        if k < toks.len() && (toks[k].is_punct('{') || toks[k].is_punct('(')) {
            let (open, close) = if toks[k].is_punct('{') {
                ('{', '}')
            } else {
                ('(', ')')
            };
            let mut depth = 0i32;
            while k < toks.len() {
                if toks[k].is_punct(open) {
                    depth += 1;
                } else if toks[k].is_punct(close) {
                    depth -= 1;
                    if depth == 0 {
                        k += 1;
                        break;
                    }
                }
                k += 1;
            }
        }
        let arm = match toks.get(k).map(|t| &t.kind) {
            Some(TokKind::Punct('|')) => true,
            Some(TokKind::Punct('=')) => toks.get(k + 1).is_some_and(|t| t.is_punct('>')),
            Some(TokKind::Ident(s)) => s == "if",
            _ => false,
        };
        if arm {
            out.insert(variant.to_string());
        }
    }
}
