//! CLI for the static analysis wall.
//!
//! ```text
//! cargo run -p mocha-lint                         # all four analyses
//! cargo run -p mocha-lint -- --analysis blocking  # one analysis
//! cargo run -p mocha-lint -- --root <dir>         # explicit workspace
//! cargo run -p mocha-lint -- --write-baseline     # regenerate ratchet
//! ```
//!
//! Exit codes: 0 clean, 1 diagnostics found, 2 usage/I-O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut analysis: Option<String> = None;
    let mut write_baseline = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" if i + 1 < args.len() => {
                root = Some(PathBuf::from(&args[i + 1]));
                i += 1;
            }
            "--analysis" if i + 1 < args.len() => {
                analysis = Some(args[i + 1].clone());
                i += 1;
            }
            "--write-baseline" => write_baseline = true,
            other => {
                eprintln!("mocha-lint: unknown argument `{other}`");
                eprintln!(
                    "usage: mocha-lint [--root <dir>] [--analysis \
                     blocking|lock-order|wire-tags|panic-ratchet] [--write-baseline]"
                );
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let root = root
        .or_else(|| {
            // When run via cargo, the manifest dir is crates/mocha-lint.
            std::env::var_os("CARGO_MANIFEST_DIR")
                .map(PathBuf::from)
                .and_then(|p| mocha_lint::find_root(&p))
        })
        .or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|p| mocha_lint::find_root(&p))
        });
    let Some(root) = root else {
        eprintln!("mocha-lint: cannot locate the workspace root (try --root)");
        return ExitCode::from(2);
    };

    if write_baseline {
        return match mocha_lint::model::Workspace::scan(&root)
            .and_then(|ws| mocha_lint::ratchet::write_baseline(&ws))
        {
            Ok(rendered) => {
                print!("{rendered}");
                println!(
                    "wrote {}",
                    root.join(mocha_lint::ratchet::BASELINE_FILE).display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("mocha-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    match mocha_lint::run(&root, analysis.as_deref()) {
        Ok(report) => {
            for note in &report.notes {
                println!("note: {note}");
            }
            if report.clean() {
                println!(
                    "mocha-lint: clean ({} over {})",
                    analysis.as_deref().unwrap_or("all analyses"),
                    root.display()
                );
                ExitCode::SUCCESS
            } else {
                for d in &report.diags {
                    println!("{d}");
                }
                println!("mocha-lint: {} diagnostic(s)", report.diags.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("mocha-lint: {e}");
            ExitCode::from(2)
        }
    }
}
