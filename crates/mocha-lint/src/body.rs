//! Function-body walker: turns a body token range into an ordered event
//! stream of calls, lock acquisitions and guard drops. Shared by the
//! reactor-blocking and lock-order analyses.

use std::collections::BTreeSet;

use crate::lexer::{Tok, TokKind};
use crate::model::{FnDef, SourceFile};

/// How a lock was acquired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcqKind {
    /// `Mutex::lock` — exclusive.
    Lock,
    /// `RwLock::read` — shared.
    Read,
    /// `RwLock::write` — exclusive.
    Write,
}

impl AcqKind {
    /// True for acquisitions that exclude all other holders.
    pub fn exclusive(self) -> bool {
        matches!(self, AcqKind::Lock | AcqKind::Write)
    }
}

/// One event inside a function body, in source order.
#[derive(Debug)]
pub enum Event {
    /// A call site: `name(...)`, `recv.name(...)` or `Path::name(...)`.
    Call {
        /// Called function/method name.
        name: String,
        /// The path segment or receiver identifier immediately before the
        /// name (`thread` in `thread::sleep`, `stream` in
        /// `stream.write_all`), if any.
        qualifier: Option<String>,
        /// Token index of the name.
        at: usize,
        /// 1-based source line.
        line: u32,
        /// Number of argument tokens is zero (`f()`).
        empty_args: bool,
        /// True for `recv.name(...)` method calls. Name-based call-graph
        /// resolution is unreliable for methods (`Vec::push` vs a
        /// workspace `push`), so some analyses only follow free calls.
        method: bool,
    },
    /// A lock acquisition on a known lock name.
    Acquire {
        /// The lock's field/binding name (its identity in the graph).
        lock: String,
        /// Shared or exclusive.
        kind: AcqKind,
        /// Token index of the acquisition.
        at: usize,
        /// Token index past which the guard is no longer held.
        released: usize,
        /// Guard binding (`let g = x.lock();`), when block-scoped.
        binding: Option<String>,
        /// 1-based source line.
        line: u32,
    },
    /// An explicit `drop(binding)` of a named guard.
    Drop {
        /// The dropped binding.
        binding: String,
        /// Token index of the drop.
        at: usize,
    },
}

/// Walks `def`'s body in `file`, producing events in source order.
///
/// Calls that appear inside the argument list of a `spawn(...)` call are
/// skipped: a closure handed to `thread::spawn` (or `Builder::spawn`)
/// runs on its own thread, so its blocking behaviour and lock usage do
/// not belong to the enclosing function.
pub fn walk(file: &SourceFile, def: &FnDef, lock_names: &BTreeSet<String>) -> Vec<Event> {
    let toks = &file.toks;
    let mut events = Vec::new();
    let mut i = def.body_open + 1;
    let mut stmt_start = i;
    while i < def.body_close {
        match &toks[i].kind {
            TokKind::Punct(';' | '{' | '}') => stmt_start = i + 1,
            TokKind::Ident(name) if i + 1 < def.body_close && toks[i + 1].is_punct('(') => {
                if name == "spawn" {
                    // Skip the whole argument list: code in there runs on
                    // another thread.
                    i = skip_parens(toks, i + 1, def.body_close);
                    continue;
                }
                if let Some(ev) = acquisition(toks, i, def, lock_names, stmt_start) {
                    events.push(ev);
                } else if name == "drop"
                    && toks[i + 2].ident().is_some()
                    && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
                {
                    events.push(Event::Drop {
                        binding: toks[i + 2].ident().unwrap_or_default().to_string(),
                        at: i,
                    });
                } else {
                    events.push(Event::Call {
                        name: name.clone(),
                        qualifier: qualifier_before(toks, i),
                        at: i,
                        line: toks[i].line,
                        empty_args: toks[i + 2].is_punct(')'),
                        method: i > 0 && toks[i - 1].is_punct('.'),
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
    events
}

/// The identifier immediately before `name` through `.` or `::`.
fn qualifier_before(toks: &[Tok], i: usize) -> Option<String> {
    if i < 1 {
        return None;
    }
    if toks[i - 1].is_punct('.') && i >= 2 {
        return toks[i - 2].ident().map(str::to_string);
    }
    if toks[i - 1].is_punct(':') && i >= 3 && toks[i - 2].is_punct(':') {
        return toks[i - 3].ident().map(str::to_string);
    }
    None
}

/// Detects `known_lock . lock/read/write ( )` at name index `i` and
/// computes the guard's scope.
fn acquisition(
    toks: &[Tok],
    i: usize,
    def: &FnDef,
    lock_names: &BTreeSet<String>,
    stmt_start: usize,
) -> Option<Event> {
    let kind = match toks[i].ident()? {
        "lock" => AcqKind::Lock,
        "read" => AcqKind::Read,
        "write" => AcqKind::Write,
        _ => return None,
    };
    // Zero-argument method call on a known lock name.
    if !toks.get(i + 2)?.is_punct(')') {
        return None;
    }
    let recv = qualifier_before(toks, i)?;
    if !toks[i - 1].is_punct('.') || !lock_names.contains(&recv) {
        return None;
    }
    // `let g = x.lock();` binds the guard for the rest of the enclosing
    // block; any other shape is a temporary dropped at the end of its
    // statement.
    let after_call = i + 3;
    let is_let = toks[stmt_start].is_ident("let");
    let direct_bind = is_let && toks.get(after_call).is_some_and(|t| t.is_punct(';'));
    let (released, binding) = if direct_bind {
        let mut b = toks[stmt_start + 1].ident();
        if b == Some("mut") {
            b = toks[stmt_start + 2].ident();
        }
        (
            enclosing_block_end(toks, i, def.body_close),
            b.map(str::to_string),
        )
    } else {
        (statement_end(toks, after_call, def.body_close), None)
    };
    Some(Event::Acquire {
        lock: recv,
        kind,
        at: i,
        released,
        binding,
        line: toks[i].line,
    })
}

/// With `toks[open]` a `(`, returns the index just past the matching `)`.
fn skip_parens(toks: &[Tok], open: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < limit {
        if toks[i].is_punct('(') {
            depth += 1;
        } else if toks[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    limit
}

/// First `;` at brace depth 0 after `i` (end of the current statement).
fn statement_end(toks: &[Tok], mut i: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    while i < limit {
        match &toks[i].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            TokKind::Punct(';') if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    limit
}

/// The `}` closing the block that encloses token `i`.
fn enclosing_block_end(toks: &[Tok], mut i: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    while i < limit {
        match &toks[i].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            _ => {}
        }
        i += 1;
    }
    limit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Workspace;

    fn events(src: &str, locks: &[&str]) -> Vec<String> {
        let ws = Workspace {
            root: std::path::PathBuf::new(),
            files: vec![crate::model::load_file_for_tests(src)],
            lock_names: locks.iter().map(|s| (*s).to_string()).collect(),
        };
        let f = &ws.files[0];
        let def = &f.fns[0];
        walk(f, def, &ws.lock_names)
            .iter()
            .map(|e| match e {
                Event::Call { name, .. } => format!("call:{name}"),
                Event::Acquire {
                    lock,
                    kind,
                    binding,
                    ..
                } => format!(
                    "acq:{lock}:{kind:?}:{}",
                    binding.as_deref().unwrap_or("tmp")
                ),
                Event::Drop { binding, .. } => format!("drop:{binding}"),
            })
            .collect()
    }

    #[test]
    fn temporary_vs_bound_guards() {
        let evs = events(
            "fn f(&self) { self.log.lock().push(1); let g = self.book.read(); use_it(); }",
            &["log", "book"],
        );
        assert_eq!(
            evs,
            vec![
                "acq:log:Lock:tmp",
                "call:push",
                "acq:book:Read:g",
                "call:use_it"
            ]
        );
    }

    #[test]
    fn spawn_args_are_invisible() {
        let evs = events(
            "fn f() { before(); thread::spawn(move || { inner_blocking(); }); after(); }",
            &[],
        );
        assert_eq!(evs, vec!["call:before", "call:after"]);
    }

    #[test]
    fn drop_releases_named_guard() {
        let evs = events(
            "fn f(&self) { let g = self.log.lock(); work(); drop(g); more(); }",
            &["log"],
        );
        assert_eq!(
            evs,
            vec!["acq:log:Lock:g", "call:work", "drop:g", "call:more"]
        );
    }
}
