//! Lock-order graph.
//!
//! Extracts Mutex/RwLock acquisition sequences per function (lock
//! identity = the field/binding name, harvested in [`crate::model`]),
//! propagates them through the call graph, and fails on:
//!
//! * a cycle in the may-be-held-while-acquiring graph (the classic ABBA
//!   deadlock shape),
//! * re-acquiring a lock that is already held,
//! * a channel/socket send while a guard is held (`send`, `send_as`,
//!   `send_to`, `try_send` — directly or via a callee).
//!
//! Escape hatches: `// lint: allow(lock-order)` and
//! `// lint: allow(send-under-lock)`.

use std::collections::{BTreeMap, BTreeSet};

use crate::body::{walk, Event};
use crate::model::Workspace;
use crate::Diag;

/// Call names that ship a message somewhere else.
const SEND_NAMES: [&str; 4] = ["send", "send_as", "send_to", "try_send"];

/// One directed edge: `from` was held while `to` was acquired.
#[derive(Debug)]
struct EdgeSite {
    file: String,
    line: u32,
    via: String,
}

/// Runs the analysis.
pub fn run(ws: &Workspace) -> Vec<Diag> {
    let mut diags = Vec::new();

    // Function table.
    let mut ids: Vec<(usize, usize)> = Vec::new();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        for (di, def) in file.fns.iter().enumerate() {
            by_name
                .entry(def.name.as_str())
                .or_default()
                .push(ids.len());
            ids.push((fi, di));
        }
    }
    let events: Vec<Vec<Event>> = ids
        .iter()
        .map(|&(fi, di)| walk(&ws.files[fi], &ws.files[fi].fns[di], &ws.lock_names))
        .collect();

    // Fixpoint: locks a call to each function may acquire, and whether it
    // may (transitively) perform a send.
    let mut acq_star: Vec<BTreeSet<String>> = vec![BTreeSet::new(); ids.len()];
    let mut send_star: Vec<bool> = vec![false; ids.len()];
    for (id, evs) in events.iter().enumerate() {
        for ev in evs {
            match ev {
                Event::Acquire { lock, .. } => {
                    acq_star[id].insert(lock.clone());
                }
                Event::Call { name, .. } if SEND_NAMES.contains(&name.as_str()) => {
                    send_star[id] = true;
                }
                Event::Call { .. } | Event::Drop { .. } => {}
            }
        }
    }
    loop {
        let mut changed = false;
        for (id, evs) in events.iter().enumerate() {
            for ev in evs {
                // Method calls are excluded from interprocedural
                // propagation: resolving `x.push(...)` to any workspace
                // fn named `push` conflates std methods with unrelated
                // protocol helpers and fabricates edges.
                let Event::Call {
                    name,
                    method: false,
                    ..
                } = ev
                else {
                    continue;
                };
                for &callee in by_name.get(name.as_str()).map_or(&[][..], Vec::as_slice) {
                    if callee == id {
                        continue;
                    }
                    if send_star[callee] && !send_star[id] {
                        send_star[id] = true;
                        changed = true;
                    }
                    if !acq_star[callee].is_subset(&acq_star[id]) {
                        let extra: Vec<String> = acq_star[callee]
                            .difference(&acq_star[id])
                            .cloned()
                            .collect();
                        acq_star[id].extend(extra);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Per-function simulation of the held-guards set.
    let mut edges: BTreeMap<(String, String), EdgeSite> = BTreeMap::new();
    for (id, evs) in events.iter().enumerate() {
        let (fi, di) = ids[id];
        let file = &ws.files[fi];
        let qual = &file.fns[di].qual;
        // (lock name, exclusive, released-at index, binding)
        let mut held: Vec<(String, bool, usize, Option<String>)> = Vec::new();
        for ev in evs {
            let at = match ev {
                Event::Call { at, .. } | Event::Acquire { at, .. } | Event::Drop { at, .. } => *at,
            };
            held.retain(|(_, _, released, _)| *released > at);
            match ev {
                Event::Drop { binding, .. } => {
                    held.retain(|(_, _, _, b)| b.as_deref() != Some(binding));
                }
                Event::Acquire {
                    lock,
                    kind,
                    released,
                    binding,
                    line,
                    ..
                } => {
                    for (h, _, _, _) in &held {
                        if h == lock {
                            if !Workspace::is_allowed(file, "lock-order", *line) {
                                diags.push(Diag {
                                    rule: "lock-order",
                                    file: file.rel.clone(),
                                    line: *line,
                                    msg: format!(
                                        "`{lock}` re-acquired while already held in {qual}"
                                    ),
                                });
                            }
                        } else {
                            edges
                                .entry((h.clone(), lock.clone()))
                                .or_insert_with(|| EdgeSite {
                                    file: file.rel.clone(),
                                    line: *line,
                                    via: qual.clone(),
                                });
                        }
                    }
                    held.push((lock.clone(), kind.exclusive(), *released, binding.clone()));
                }
                Event::Call {
                    name, line, method, ..
                } => {
                    if held.is_empty() {
                        continue;
                    }
                    let callees = if *method {
                        &[][..]
                    } else {
                        by_name.get(name.as_str()).map_or(&[][..], Vec::as_slice)
                    };
                    let direct_send = SEND_NAMES.contains(&name.as_str());
                    let transitive_send = callees.iter().any(|&c| send_star[c]);
                    if (direct_send || transitive_send)
                        && !Workspace::is_allowed(file, "send-under-lock", *line)
                    {
                        let locks: Vec<&str> = held.iter().map(|(l, _, _, _)| l.as_str()).collect();
                        let how = if direct_send { "sends" } else { "may send" };
                        diags.push(Diag {
                            rule: "send-under-lock",
                            file: file.rel.clone(),
                            line: *line,
                            msg: format!(
                                "`{name}` {how} while holding [{}] in {qual}",
                                locks.join(", ")
                            ),
                        });
                    }
                    for &callee in callees {
                        for l in &acq_star[callee] {
                            for (h, _, _, _) in &held {
                                if h != l {
                                    edges.entry((h.clone(), l.clone())).or_insert_with(|| {
                                        EdgeSite {
                                            file: file.rel.clone(),
                                            line: *line,
                                            via: format!("{qual} -> {name}"),
                                        }
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Cycle detection over the lock graph.
    if let Some(cycle) = find_cycle(&edges) {
        let site = &edges[&(cycle[0].clone(), cycle[1].clone())];
        if !ws
            .files
            .iter()
            .find(|f| f.rel == site.file)
            .is_some_and(|f| Workspace::is_allowed(f, "lock-order", site.line))
        {
            diags.push(Diag {
                rule: "lock-order",
                file: site.file.clone(),
                line: site.line,
                msg: format!(
                    "lock-order cycle {} (first edge via {})",
                    cycle.join(" -> "),
                    site.via
                ),
            });
        }
    }
    diags
}

/// Finds one cycle in the edge set, returned as `[a, b, ..., a]`.
fn find_cycle(edges: &BTreeMap<(String, String), EdgeSite>) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from.as_str()).or_default().push(to.as_str());
    }
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for start in adj.keys().copied() {
        if done.contains(start) {
            continue;
        }
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        let mut on_path = BTreeSet::from([start]);
        while let Some((node, next)) = stack.last().copied() {
            let succs = adj.get(node).map_or(&[][..], Vec::as_slice);
            if next < succs.len() {
                if let Some(s) = stack.last_mut() {
                    s.1 += 1;
                }
                let succ = succs[next];
                if on_path.contains(succ) {
                    let from = path.iter().position(|n| *n == succ).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        path[from..].iter().map(|s| (*s).to_string()).collect();
                    cycle.push(succ.to_string());
                    return Some(cycle);
                }
                if !done.contains(succ) {
                    stack.push((succ, 0));
                    path.push(succ);
                    on_path.insert(succ);
                }
            } else {
                stack.pop();
                path.pop();
                on_path.remove(node);
                done.insert(node);
            }
        }
    }
    None
}
