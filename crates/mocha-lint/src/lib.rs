//! # mocha-lint — workspace-aware static analysis wall
//!
//! Four analyses clippy cannot express, run over the whole workspace
//! (`cargo run -p mocha-lint`, or `repro -- lint`):
//!
//! * [`blocking`] — nothing reachable from the reactor shard loop may
//!   block the shard thread.
//! * [`lockorder`] — the interprocedural lock graph must stay acyclic,
//!   and nothing may send while holding a guard.
//! * [`wiretags`] — every `T_*` wire tag is unique, encodable, decodable
//!   and handled.
//! * [`ratchet`] — the per-crate panic-site count only goes down
//!   (`lint-baseline.toml`).
//!
//! All analyses work on a hand-rolled token scan ([`lexer`], [`model`]):
//! no syntax-tree dependency, nothing outside std, so the wall adds zero
//! supply-chain surface. Escape hatch: `// lint: allow(<rule>)` on the
//! offending line or the line directly above, always with a justification
//! comment. Fixtures under `fixtures/` prove each analysis fires; the
//! crate's tests run them and also run the full wall over this very
//! workspace.

#![forbid(unsafe_code)]

pub mod blocking;
pub mod body;
pub mod lexer;
pub mod lockorder;
pub mod model;
pub mod ratchet;
pub mod wiretags;

use std::io;
use std::path::Path;

use model::Workspace;

/// One diagnostic. Any diagnostic fails the lint run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Rule family: `blocking`, `lock-order`, `send-under-lock`,
    /// `wire-tags`, `panic-ratchet`.
    pub rule: &'static str,
    /// Workspace-relative file the diagnostic anchors to.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for Diag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Result of a full lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Failing diagnostics, sorted by file/line.
    pub diags: Vec<Diag>,
    /// Non-fatal observations (ratchet-down opportunities etc.).
    pub notes: Vec<String>,
}

impl Report {
    /// True when the run found nothing.
    pub fn clean(&self) -> bool {
        self.diags.is_empty()
    }
}

/// Runs one named analysis (`blocking`, `lock-order`, `wire-tags`,
/// `panic-ratchet`) or all of them (`None`) over the workspace at `root`.
///
/// # Errors
///
/// Propagates I/O errors from the workspace scan; an unknown analysis
/// name is an [`io::ErrorKind::InvalidInput`] error.
pub fn run(root: &Path, analysis: Option<&str>) -> io::Result<Report> {
    let ws = Workspace::scan(root)?;
    let mut report = Report::default();
    let all = analysis.is_none();
    match analysis {
        None | Some("blocking" | "lock-order" | "wire-tags" | "panic-ratchet") => {}
        Some(other) => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unknown analysis `{other}`"),
            ))
        }
    }
    if all || analysis == Some("blocking") {
        report.diags.extend(blocking::run(&ws));
    }
    if all || analysis == Some("lock-order") {
        report.diags.extend(lockorder::run(&ws));
    }
    if all || analysis == Some("wire-tags") {
        report.diags.extend(wiretags::run(&ws));
    }
    if all || analysis == Some("panic-ratchet") {
        report.diags.extend(ratchet::run(&ws, &mut report.notes));
    }
    report
        .diags
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Locates the workspace root from a starting directory by walking up to
/// the first directory containing both `Cargo.toml` and `crates/`.
pub fn find_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}
