//! Reactor-blocking lint.
//!
//! A reactor shard (`run_shard` in `crates/mocha/src/runtime/socket.rs`)
//! multiplexes every site assigned to it; anything that blocks the shard
//! thread stalls *all* of them. This analysis walks the call graph rooted
//! at the shard loop and flags operations that can block indefinitely (or
//! for a fixed wall-clock time) on that path:
//!
//! * `thread::sleep`
//! * channel `recv_timeout` waits
//! * blocking `TcpStream` I/O (`connect*`, `read_exact`, `write_all`,
//!   `read_to_end`)
//! * `JoinHandle::join`
//! * exclusive `Mutex::lock` on a known lock field
//!
//! Calls inside `spawn(...)` arguments run on their own thread and are
//! not charged to the caller. Additionally, every `recv_timeout` in
//! `crates/mocha/src/runtime/` is flagged regardless of reachability —
//! the app-side blocking reply waits must be funnelled through the single
//! sanctioned helper. Escape hatch: `// lint: allow(blocking)` on the
//! offending line or the line above, with a justification comment.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::body::{walk, AcqKind, Event};
use crate::model::Workspace;
use crate::Diag;

/// The function the reactor call graph is rooted at.
const ROOT_FN: &str = "run_shard";
/// File (suffix) that must define the root for the analysis to arm.
const ROOT_FILE: &str = "runtime/socket.rs";
/// Directory (infix) where stray `recv_timeout` is flagged even off the
/// reactor path.
const RUNTIME_DIR: &str = "/src/runtime/";

/// Runs the analysis.
pub fn run(ws: &Workspace) -> Vec<Diag> {
    let mut diags = Vec::new();
    let mut seen = BTreeSet::new();

    // Function table: global id -> (file index, fn index), name -> ids.
    let mut ids: Vec<(usize, usize)> = Vec::new();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        for (di, def) in file.fns.iter().enumerate() {
            by_name
                .entry(def.name.as_str())
                .or_default()
                .push(ids.len());
            ids.push((fi, di));
        }
    }
    let events: Vec<Vec<Event>> = ids
        .iter()
        .map(|&(fi, di)| walk(&ws.files[fi], &ws.files[fi].fns[di], &ws.lock_names))
        .collect();

    // BFS from the shard loop, remembering parents for path reporting.
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut reached: BTreeSet<usize> = BTreeSet::new();
    for (id, &(fi, di)) in ids.iter().enumerate() {
        if ws.files[fi].fns[di].name == ROOT_FN && ws.files[fi].rel.ends_with(ROOT_FILE) {
            reached.insert(id);
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        for ev in &events[id] {
            if let Event::Call { name, .. } = ev {
                for &callee in by_name.get(name.as_str()).map_or(&[][..], Vec::as_slice) {
                    if reached.insert(callee) {
                        parent.insert(callee, id);
                        queue.push_back(callee);
                    }
                }
            }
        }
    }

    let chain = |mut id: usize| -> String {
        let mut names = vec![ws.files[ids[id].0].fns[ids[id].1].qual.clone()];
        while let Some(&p) = parent.get(&id) {
            names.push(ws.files[ids[p].0].fns[ids[p].1].qual.clone());
            id = p;
        }
        names.reverse();
        names.join(" -> ")
    };

    for &id in &reached {
        let (fi, _) = ids[id];
        let file = &ws.files[fi];
        for ev in &events[id] {
            let (line, what) = match ev {
                Event::Call {
                    name,
                    qualifier,
                    line,
                    empty_args,
                    ..
                } => match name.as_str() {
                    "sleep" if qualifier.as_deref() == Some("thread") => {
                        (*line, "thread::sleep".to_string())
                    }
                    "recv_timeout" => (*line, "channel recv_timeout".to_string()),
                    "connect" | "connect_timeout" if qualifier.as_deref() == Some("TcpStream") => {
                        (*line, format!("TcpStream::{name}"))
                    }
                    "read_exact" | "write_all" | "read_to_end" => {
                        (*line, format!("blocking stream I/O `{name}`"))
                    }
                    "join" if *empty_args => (*line, "JoinHandle::join".to_string()),
                    _ => continue,
                },
                Event::Acquire {
                    lock, kind, line, ..
                } if *kind == AcqKind::Lock => {
                    (*line, format!("unbounded Mutex::lock on `{lock}`"))
                }
                _ => continue,
            };
            if Workspace::is_allowed(file, "blocking", line) {
                continue;
            }
            if seen.insert((fi, line, what.clone())) {
                diags.push(Diag {
                    rule: "blocking",
                    file: file.rel.clone(),
                    line,
                    msg: format!("{what} on reactor path {}", chain(id)),
                });
            }
        }
    }

    // Stray blocking reply waits anywhere in the runtime layer.
    for (fi, file) in ws.files.iter().enumerate() {
        if !file.rel.contains(RUNTIME_DIR) {
            continue;
        }
        for def in &file.fns {
            for ev in walk(file, def, &ws.lock_names) {
                if let Event::Call { name, line, .. } = ev {
                    if name == "recv_timeout"
                        && !Workspace::is_allowed(file, "blocking", line)
                        && seen.insert((fi, line, "channel recv_timeout".to_string()))
                    {
                        diags.push(Diag {
                            rule: "blocking",
                            file: file.rel.clone(),
                            line,
                            msg: format!(
                                "channel recv_timeout in runtime layer ({}): blocking reply \
                                 waits must go through the sanctioned helper",
                                def.qual
                            ),
                        });
                    }
                }
            }
        }
    }
    diags
}
