//! Property tests for the WAL codec and the corruption-tolerant
//! scanner (satellite: deterministic seeded torn-write/bit-flip/short-read
//! fault injection; the decoder never panics and any corrupted prefix
//! recovers to a consistent truncation).
//!
//! Kept in a separate file so reduced-environment builds can compile the
//! crate without the `proptest` dev-dependency.

use super::*;
use proptest::prelude::*;

fn payload_strategy() -> impl Strategy<Value = ReplicaPayload> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..64).prop_map(ReplicaPayload::Bytes),
        prop::collection::vec(any::<i32>(), 0..32).prop_map(ReplicaPayload::I32s),
        prop::collection::vec(any::<i64>(), 0..32).prop_map(ReplicaPayload::I64s),
        prop::collection::vec(any::<f64>(), 0..32).prop_map(ReplicaPayload::F64s),
        ".{0,32}".prop_map(ReplicaPayload::Utf8),
        (".{0,12}", prop::collection::vec(any::<u8>(), 0..32))
            .prop_map(|(type_name, bytes)| ReplicaPayload::Object { type_name, bytes }),
    ]
}

fn entry_strategy() -> impl Strategy<Value = WalEntry> {
    (
        0u32..8,
        0u64..1000,
        prop::collection::vec((0u32..8, payload_strategy()), 0..4),
    )
        .prop_map(|(lock, version, updates)| WalEntry {
            lock: LockId(lock),
            version: Version(version),
            updates: updates
                .into_iter()
                .map(|(r, p)| ReplicaUpdate::new(ReplicaId(r), p))
                .collect(),
        })
}

fn log_of(entries: &[WalEntry]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for e in entries {
        bytes.extend_from_slice(&wal::frame(&e.encode()));
    }
    bytes
}

fn config() -> ProptestConfig {
    ProptestConfig {
        cases: if cfg!(miri) { 4 } else { 128 },
        ..ProptestConfig::default()
    }
}

// NaN payloads break bitwise equality through the f64 roundtrip; the
// comparison below goes through the encoded bytes instead, which is
// the identity that actually matters for storage.
proptest! {
    #![proptest_config(config())]

    #[test]
    fn encode_decode_roundtrips(entry in entry_strategy()) {
        let decoded = WalEntry::decode(&entry.encode()).expect("clean entry decodes");
        prop_assert_eq!(decoded.encode(), entry.encode());
        prop_assert_eq!(decoded.lock, entry.lock);
        prop_assert_eq!(decoded.version, entry.version);
        prop_assert_eq!(decoded.updates.len(), entry.updates.len());
    }

    /// Any corrupted prefix of a log recovers to a consistent
    /// truncation: the scanner never panics, the valid prefix
    /// rescans clean, and every recovered entry re-encodes to the
    /// bytes at its offset in the original log.
    #[test]
    fn corruption_recovers_to_consistent_truncation(
        entries in prop::collection::vec(entry_strategy(), 0..5),
        cut_ppm in 0u32..1_000_000,
        flips in prop::collection::vec((0usize..4096, 0u32..8), 0..4),
    ) {
        let clean = log_of(&entries);
        // Deterministic seeded damage: truncate at a fraction of the
        // log, then flip a handful of bits.
        let cut = (clean.len() as u64 * u64::from(cut_ppm) / 1_000_000) as usize;
        let mut bytes = clean[..cut.min(clean.len())].to_vec();
        for (byte, bit) in flips {
            if let Some(b) = bytes.get_mut(byte) {
                *b ^= 1 << bit;
            }
        }

        let s = scan(&bytes);
        prop_assert!(s.valid_len <= bytes.len());
        // The valid prefix is self-consistent: rescanning it is clean
        // and yields the same entries.
        let again = scan(&bytes[..s.valid_len]);
        prop_assert!(again.corruption.is_none());
        prop_assert_eq!(again.entries.len(), s.entries.len());
        // Entries that survive undamaged bytes match the originals.
        if bytes[..s.valid_len] == clean[..s.valid_len.min(clean.len())] {
            for (got, want) in s.entries.iter().zip(entries.iter()) {
                prop_assert_eq!(got.encode(), want.encode());
            }
        }
    }

    /// Opening a store over arbitrarily damaged device contents never
    /// panics and never errors; it degrades.
    #[test]
    fn open_never_panics_on_garbage(
        wal_bytes in prop::collection::vec(any::<u8>(), 0..256),
        snap_bytes in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let handle = StoreHandle::mem(StoreConfig::default());
        handle.device().append_wal(&wal_bytes, false).unwrap();
        if !snap_bytes.is_empty() {
            // Plant garbage as the snapshot without clearing the WAL.
            let mut image = snap_bytes.clone();
            handle.device().install_snapshot(&image, false).unwrap();
            image.clear();
            handle.device().append_wal(&wal_bytes, false).unwrap();
        }
        let s = handle.open().expect("open degrades, never errors");
        // And the store stays usable after damage.
        let mut s = s;
        s.append(
            LockId(1),
            Version(1),
            &[ReplicaUpdate::new(ReplicaId(1), ReplicaPayload::empty())],
        )
        .unwrap();
        prop_assert!(s.recovered().lock_versions.contains_key(&LockId(1)));
    }
}
