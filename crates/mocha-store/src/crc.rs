//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), computed
//! bitwise.
//!
//! Hand-rolled so the store has no dependency beyond `mocha-wire`. The
//! framing only needs error *detection* against torn writes and media bit
//! rot on a local device, where the classic reflected CRC-32 is the
//! standard choice; throughput is irrelevant next to the fsync.

/// Computes the CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            // Branch-free reflected update: `mask` is all-ones when the
            // low bit is set, all-zeros otherwise.
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_vector() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let base = crc32(b"mocha");
        let mut flipped = *b"mocha";
        flipped[2] ^= 0x10;
        assert_ne!(base, crc32(&flipped));
    }
}
