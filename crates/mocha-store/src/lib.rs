//! # mocha-store — opt-in per-site durability for the Mocha reproduction
//!
//! The paper's failure handling assumes a crashed site's state survives
//! only in the surviving replicas, so a rebooted site comes back empty and
//! refetches every object cold. This crate gives a site a local durable
//! record of the replica versions it applied, in the spirit of
//! multicomputer object stores: an append-only write-ahead log of
//! checksummed records plus periodic compacting snapshots.
//!
//! * [`wal`] — the record format (`[len][crc32][payload]`) and the
//!   corruption-tolerant scanner.
//! * [`device`] — the storage backing: shared in-memory files for the
//!   simulator and thread runtime, real files for `mochad` processes.
//! * [`SiteStore`] — the per-site store: open (recover), append, compact.
//!
//! Recovery is *degrading, never failing*: a torn or bit-flipped WAL tail
//! is detected by checksum and truncated away; a corrupt snapshot is
//! discarded while the WAL still replays (every record is an absolute
//! statement of state the site held, so any valid prefix over any
//! snapshot — including none — reconstructs a state the site really had,
//! merely an older one). Announcing an older version is always safe: the
//! site catches up over the normal transfer path, by delta when a holder
//! still knows its base version and by full payload otherwise. The one
//! thing recovery must never do is claim a version *newer* than what it
//! can serve — the `version_regression` invariant in `mocha` is the
//! oracle for that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod device;
pub mod wal;

use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;

use mocha_wire::io::{ByteReader, ByteWriter};
use mocha_wire::message::ReplicaUpdate;
use mocha_wire::{LockId, ReplicaId, ReplicaPayload, Version};

pub use device::Device;
pub use wal::{scan, WalEntry, WalScan};

use crate::crc::crc32;

/// When WAL appends are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` after every record: a crash loses nothing that was
    /// acknowledged (the default).
    #[default]
    Always,
    /// Let the OS write back lazily: a crash may lose the newest records,
    /// which recovery treats exactly like a torn tail.
    Never,
}

/// Tuning for one site's store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Fsync policy for WAL appends and snapshot installs.
    pub fsync: FsyncPolicy,
    /// Compact (snapshot + truncate WAL) after this many appended records;
    /// `0` disables automatic compaction.
    pub snapshot_every: usize,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            fsync: FsyncPolicy::Always,
            snapshot_every: 64,
        }
    }
}

/// Cheap-to-clone descriptor of one site's durable storage. The handle
/// survives a simulated site's crash (the runtime keeps it across
/// incarnations) and is how tests reach the corruption hooks.
#[derive(Debug, Clone)]
pub struct StoreHandle {
    device: Device,
    config: StoreConfig,
}

impl StoreHandle {
    /// A fresh in-memory store (simulator and thread runtime).
    pub fn mem(config: StoreConfig) -> StoreHandle {
        StoreHandle {
            device: Device::mem(),
            config,
        }
    }

    /// A store over a directory of real files (`mochad`).
    pub fn disk(dir: PathBuf, config: StoreConfig) -> StoreHandle {
        StoreHandle {
            device: Device::disk(dir),
            config,
        }
    }

    /// The underlying device (shared with all clones of this handle).
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The store configuration.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Opens the store, recovering whatever the device holds.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the backing device. Corruption is *not*
    /// an error: it degrades to a truncated WAL and is reported in the
    /// returned store's [`RecoveryReport`].
    pub fn open(&self) -> io::Result<SiteStore> {
        SiteStore::open(self)
    }
}

/// State reconstructed from snapshot + WAL at open.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveredState {
    /// Newest durably recorded version per lock.
    pub lock_versions: BTreeMap<LockId, Version>,
    /// Full replica payloads per lock at that version.
    pub replicas: BTreeMap<LockId, BTreeMap<ReplicaId, ReplicaPayload>>,
}

impl RecoveredState {
    /// Whether nothing was recovered.
    pub fn is_empty(&self) -> bool {
        self.lock_versions.is_empty()
    }

    /// The `(lock, version)` pairs worth announcing to the coordinator on
    /// rejoin: every lock with a post-initial recorded version.
    pub fn announcement(&self) -> Vec<(LockId, Version)> {
        self.lock_versions
            .iter()
            .filter(|(_, v)| **v > Version::INITIAL)
            .map(|(l, v)| (*l, *v))
            .collect()
    }

    /// Folds one WAL entry into the state. Entries older than what is
    /// already held are skipped (replay is idempotent and monotone).
    fn apply(&mut self, entry: &WalEntry) {
        if self
            .lock_versions
            .get(&entry.lock)
            .is_some_and(|held| *held > entry.version)
        {
            return;
        }
        self.lock_versions.insert(entry.lock, entry.version);
        let replicas = self.replicas.entry(entry.lock).or_default();
        for u in &entry.updates {
            replicas.insert(u.replica, (*u.payload).clone());
        }
    }

    /// Encodes the state as a snapshot image (`[magic][crc32][body]`).
    fn encode_snapshot(&self) -> Vec<u8> {
        let mut body = ByteWriter::with_capacity(64);
        body.put_u32(self.lock_versions.len() as u32);
        for (lock, version) in &self.lock_versions {
            lock.encode(&mut body);
            version.encode(&mut body);
            let empty = BTreeMap::new();
            let replicas = self.replicas.get(lock).unwrap_or(&empty);
            body.put_u32(replicas.len() as u32);
            for (replica, payload) in replicas {
                replica.encode(&mut body);
                payload.encode(&mut body);
            }
        }
        let body = body.into_bytes();
        let mut w = ByteWriter::with_capacity(body.len() + 8);
        w.put_u32(SNAPSHOT_MAGIC);
        w.put_u32(crc32(&body));
        w.put_raw(&body);
        w.into_bytes()
    }

    /// Decodes a snapshot image; `None` for anything damaged (bad magic,
    /// checksum mismatch, undecodable body). Never panics.
    fn decode_snapshot(bytes: &[u8]) -> Option<RecoveredState> {
        let mut r = ByteReader::new(bytes);
        if r.get_u32().ok()? != SNAPSHOT_MAGIC {
            return None;
        }
        let crc = r.get_u32().ok()?;
        let body = r.get_rest();
        if crc32(body) != crc {
            return None;
        }
        let mut r = ByteReader::new(body);
        let mut state = RecoveredState::default();
        let locks = r.get_u32().ok()? as usize;
        // Each lock entry is at least 16 bytes (id + version + count).
        if locks.saturating_mul(16) > r.remaining() {
            return None;
        }
        for _ in 0..locks {
            let lock = LockId::decode(&mut r).ok()?;
            let version = Version::decode(&mut r).ok()?;
            state.lock_versions.insert(lock, version);
            let n = r.get_u32().ok()? as usize;
            if n.saturating_mul(5) > r.remaining() {
                return None;
            }
            let replicas = state.replicas.entry(lock).or_default();
            for _ in 0..n {
                let replica = ReplicaId::decode(&mut r).ok()?;
                let payload = ReplicaPayload::decode(&mut r).ok()?;
                replicas.insert(replica, payload);
            }
        }
        r.finish().ok()?;
        Some(state)
    }
}

const SNAPSHOT_MAGIC: u32 = 0x4D43_4853; // "MCHS"

/// What recovery found and did at open.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// A snapshot was present and loaded.
    pub snapshot_loaded: bool,
    /// A snapshot was present but damaged, and was discarded.
    pub snapshot_corrupt: bool,
    /// WAL records replayed on top of the snapshot.
    pub wal_records: usize,
    /// Why the WAL tail was truncated, if it was.
    pub wal_corruption: Option<String>,
}

/// One site's open durability store.
///
/// `open` recovers, `append` logs one applied `(lock, version, payloads)`
/// statement, and compaction folds the log into a snapshot every
/// [`StoreConfig::snapshot_every`] records.
#[derive(Debug)]
pub struct SiteStore {
    device: Device,
    config: StoreConfig,
    state: RecoveredState,
    records_since_snapshot: usize,
    report: RecoveryReport,
}

impl SiteStore {
    /// Opens the store described by `handle`, recovering snapshot + WAL
    /// and repairing (truncating) any corrupt WAL tail in place.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the backing device only; corruption
    /// degrades and is reported, never returned as an error.
    pub fn open(handle: &StoreHandle) -> io::Result<SiteStore> {
        let device = handle.device.clone();
        let mut report = RecoveryReport::default();

        let snap_bytes = device.read_snapshot()?;
        let mut state = if snap_bytes.is_empty() {
            RecoveredState::default()
        } else if let Some(state) = RecoveredState::decode_snapshot(&snap_bytes) {
            report.snapshot_loaded = true;
            state
        } else {
            // A damaged snapshot is discarded; the WAL still replays —
            // each record is absolute, so we merely recover an older
            // (possibly empty) state and catch up over the network.
            report.snapshot_corrupt = true;
            RecoveredState::default()
        };

        let wal_bytes = device.read_wal()?;
        let scanned = scan(&wal_bytes);
        for entry in &scanned.entries {
            state.apply(entry);
        }
        report.wal_records = scanned.entries.len();
        report.wal_corruption = scanned.corruption;
        if report.wal_corruption.is_some() {
            device.truncate_wal(scanned.valid_len)?;
        }

        Ok(SiteStore {
            device,
            config: handle.config,
            state,
            records_since_snapshot: scanned.entries.len(),
            report,
        })
    }

    /// The recovered (and since-appended) state.
    pub fn recovered(&self) -> &RecoveredState {
        &self.state
    }

    /// What recovery found at open.
    pub fn report(&self) -> &RecoveryReport {
        &self.report
    }

    /// The `(lock, version)` pairs to announce on rejoin.
    pub fn announcement(&self) -> Vec<(LockId, Version)> {
        self.state.announcement()
    }

    /// Logs one applied version: the full payloads of every replica of
    /// `lock` as of `version`. Compacts when the configured record count
    /// is reached.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the backing device.
    pub fn append(
        &mut self,
        lock: LockId,
        version: Version,
        updates: &[ReplicaUpdate],
    ) -> io::Result<()> {
        let entry = WalEntry {
            lock,
            version,
            updates: updates.to_vec(),
        };
        let payload = entry.encode();
        self.device
            .append_wal(&wal::frame(&payload), self.config.fsync == FsyncPolicy::Always)?;
        self.state.apply(&entry);
        self.records_since_snapshot += 1;
        if self.config.snapshot_every > 0 && self.records_since_snapshot >= self.config.snapshot_every
        {
            self.compact()?;
        }
        Ok(())
    }

    /// Folds the current state into a snapshot and empties the WAL.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the backing device.
    pub fn compact(&mut self) -> io::Result<()> {
        let image = self.state.encode_snapshot();
        self.device
            .install_snapshot(&image, self.config.fsync == FsyncPolicy::Always)?;
        self.records_since_snapshot = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn updates(vals: &[i64]) -> Vec<ReplicaUpdate> {
        vec![ReplicaUpdate::new(
            ReplicaId(1),
            ReplicaPayload::I64s(vals.to_vec()),
        )]
    }

    fn mem_handle(snapshot_every: usize) -> StoreHandle {
        StoreHandle::mem(StoreConfig {
            fsync: FsyncPolicy::Always,
            snapshot_every,
        })
    }

    #[test]
    fn append_and_reopen_recovers_state() {
        let handle = mem_handle(0);
        let mut s = handle.open().unwrap();
        s.append(LockId(1), Version(1), &updates(&[10])).unwrap();
        s.append(LockId(1), Version(2), &updates(&[20])).unwrap();
        s.append(LockId(2), Version(1), &updates(&[7])).unwrap();
        drop(s);

        let s = handle.open().unwrap();
        assert_eq!(s.recovered().lock_versions[&LockId(1)], Version(2));
        assert_eq!(s.recovered().lock_versions[&LockId(2)], Version(1));
        assert_eq!(
            s.recovered().replicas[&LockId(1)][&ReplicaId(1)],
            ReplicaPayload::I64s(vec![20])
        );
        assert_eq!(s.report().wal_records, 3);
        assert!(!s.report().snapshot_loaded);
        assert!(s.report().wal_corruption.is_none());
        assert_eq!(
            s.announcement(),
            vec![(LockId(1), Version(2)), (LockId(2), Version(1))]
        );
    }

    #[test]
    fn compaction_snapshots_and_truncates_wal() {
        let handle = mem_handle(2);
        let mut s = handle.open().unwrap();
        s.append(LockId(1), Version(1), &updates(&[1])).unwrap();
        assert!(handle.device().wal_len().unwrap() > 0);
        s.append(LockId(1), Version(2), &updates(&[2])).unwrap();
        // Second append hit snapshot_every: WAL is empty, snapshot holds
        // the state.
        assert_eq!(handle.device().wal_len().unwrap(), 0);
        assert!(handle.device().snapshot_len().unwrap() > 8);
        drop(s);

        let s = handle.open().unwrap();
        assert!(s.report().snapshot_loaded);
        assert_eq!(s.report().wal_records, 0);
        assert_eq!(s.recovered().lock_versions[&LockId(1)], Version(2));
    }

    #[test]
    fn snapshot_plus_wal_tail_recovers_both() {
        let handle = mem_handle(2);
        let mut s = handle.open().unwrap();
        s.append(LockId(1), Version(1), &updates(&[1])).unwrap();
        s.append(LockId(1), Version(2), &updates(&[2])).unwrap(); // compacts
        s.append(LockId(1), Version(3), &updates(&[3])).unwrap(); // tail
        drop(s);

        let s = handle.open().unwrap();
        assert!(s.report().snapshot_loaded);
        assert_eq!(s.report().wal_records, 1);
        assert_eq!(s.recovered().lock_versions[&LockId(1)], Version(3));
        assert_eq!(
            s.recovered().replicas[&LockId(1)][&ReplicaId(1)],
            ReplicaPayload::I64s(vec![3])
        );
    }

    #[test]
    fn torn_tail_truncates_and_recovers_older_version() {
        let handle = mem_handle(0);
        let mut s = handle.open().unwrap();
        s.append(LockId(1), Version(1), &updates(&[1])).unwrap();
        let keep = handle.device().wal_len().unwrap();
        s.append(LockId(1), Version(2), &updates(&[2])).unwrap();
        drop(s);
        // Tear off half of the second record.
        let torn = keep + (handle.device().wal_len().unwrap() - keep) / 2;
        handle.device().truncate_wal(torn).unwrap();

        let s = handle.open().unwrap();
        assert_eq!(s.recovered().lock_versions[&LockId(1)], Version(1));
        assert!(s.report().wal_corruption.is_some());
        // The repair is persistent: the damaged tail is gone, and a
        // second open is clean.
        assert_eq!(handle.device().wal_len().unwrap(), keep);
        let s2 = handle.open().unwrap();
        assert!(s2.report().wal_corruption.is_none());
        assert_eq!(s2.recovered(), s.recovered());
    }

    #[test]
    fn bit_flip_in_wal_degrades_to_prefix() {
        let handle = mem_handle(0);
        let mut s = handle.open().unwrap();
        s.append(LockId(1), Version(1), &updates(&[1])).unwrap();
        let first = handle.device().wal_len().unwrap();
        s.append(LockId(1), Version(2), &updates(&[2])).unwrap();
        drop(s);
        handle.device().flip_wal_bit(first + 9, 5).unwrap();

        let s = handle.open().unwrap();
        assert_eq!(s.recovered().lock_versions[&LockId(1)], Version(1));
        assert!(s.report().wal_corruption.is_some());
    }

    #[test]
    fn corrupt_snapshot_discarded_wal_still_replays() {
        let handle = mem_handle(2);
        let mut s = handle.open().unwrap();
        s.append(LockId(1), Version(1), &updates(&[1])).unwrap();
        s.append(LockId(1), Version(2), &updates(&[2])).unwrap(); // compacts
        s.append(LockId(2), Version(1), &updates(&[9])).unwrap(); // tail
        drop(s);
        handle.device().flip_snapshot_bit(10, 2).unwrap();

        let s = handle.open().unwrap();
        assert!(s.report().snapshot_corrupt);
        assert!(!s.report().snapshot_loaded);
        // Lock 1 lived only in the snapshot — gone (an *older* state,
        // which is safe); lock 2's WAL record still replays.
        assert_eq!(s.recovered().lock_versions.get(&LockId(1)), None);
        assert_eq!(s.recovered().lock_versions[&LockId(2)], Version(1));
    }

    #[test]
    fn short_read_behaves_like_torn_tail_without_repairing_device() {
        let handle = mem_handle(0);
        let mut s = handle.open().unwrap();
        s.append(LockId(1), Version(1), &updates(&[1])).unwrap();
        let first = handle.device().wal_len().unwrap();
        s.append(LockId(1), Version(2), &updates(&[2])).unwrap();
        drop(s);
        handle.device().set_wal_read_limit(Some(first + 3));
        let s = handle.open().unwrap();
        assert_eq!(s.recovered().lock_versions[&LockId(1)], Version(1));
        assert!(s.report().wal_corruption.is_some());
        // Once the device reads fully again, everything is still there up
        // to the repair point.
        handle.device().set_wal_read_limit(None);
        let s2 = handle.open().unwrap();
        assert!(s2.recovered().lock_versions[&LockId(1)] >= Version(1));
    }

    #[test]
    fn stale_entry_does_not_regress_state() {
        let handle = mem_handle(0);
        let mut s = handle.open().unwrap();
        s.append(LockId(1), Version(5), &updates(&[5])).unwrap();
        s.append(LockId(1), Version(3), &updates(&[3])).unwrap();
        assert_eq!(s.recovered().lock_versions[&LockId(1)], Version(5));
        drop(s);
        let s = handle.open().unwrap();
        assert_eq!(s.recovered().lock_versions[&LockId(1)], Version(5));
        assert_eq!(
            s.recovered().replicas[&LockId(1)][&ReplicaId(1)],
            ReplicaPayload::I64s(vec![5])
        );
    }

    #[test]
    #[cfg_attr(miri, ignore)] // touches the real filesystem
    fn disk_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("mocha-store-lib-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let handle = StoreHandle::disk(dir.clone(), StoreConfig::default());
        let mut s = handle.open().unwrap();
        s.append(LockId(1), Version(4), &updates(&[44])).unwrap();
        drop(s);
        // A brand-new handle over the directory — the process-restart
        // story.
        let again = StoreHandle::disk(dir.clone(), StoreConfig::default());
        let s = again.open().unwrap();
        assert_eq!(s.recovered().lock_versions[&LockId(1)], Version(4));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[cfg(test)]
mod proptests;
