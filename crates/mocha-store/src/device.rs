//! Storage backing for one site's durability files.
//!
//! Two backings share one interface:
//!
//! * [`Device::mem`] — an in-memory device whose contents are shared via
//!   `Arc` across clones, so a simulated site's next incarnation
//!   (`restart_site`) reads what the previous one wrote;
//! * [`Device::disk`] — a directory of real files (`wal.bin`,
//!   `snapshot.bin`) for the socket runtime's `mochad` processes.
//!
//! Appends are *not* assumed atomic on either backing: recovery tolerates
//! torn record tails (see [`crate::wal::scan`]). Snapshot installation is
//! atomic on disk (write-temp + rename), so a crash mid-compaction leaves
//! either the old or the new snapshot, never a spliced one.

use std::fs;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

/// In-memory files shared across device clones.
#[derive(Debug, Default)]
struct MemFiles {
    snapshot: Vec<u8>,
    wal: Vec<u8>,
    /// When set, reads of the WAL return only this many bytes — the
    /// short-read fault used by the corruption tests.
    read_limit: Option<usize>,
}

#[derive(Debug, Clone)]
enum Backing {
    Mem(Arc<Mutex<MemFiles>>),
    Disk(PathBuf),
}

/// One site's durable storage: a snapshot file and an append-only WAL.
#[derive(Debug, Clone)]
pub struct Device {
    backing: Backing,
}

const WAL_FILE: &str = "wal.bin";
const SNAPSHOT_FILE: &str = "snapshot.bin";
const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// Recovers a poisoned lock: the mem device holds plain bytes, which are
/// never left in a torn state by a panicking holder worse than a real
/// crash would leave a file — and recovery is built for exactly that.
fn relock(files: &Mutex<MemFiles>) -> MutexGuard<'_, MemFiles> {
    files.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Device {
    /// Creates a fresh in-memory device. Clones share contents.
    pub fn mem() -> Device {
        Device {
            backing: Backing::Mem(Arc::new(Mutex::new(MemFiles::default()))),
        }
    }

    /// Creates a device over `dir` (created on first write).
    pub fn disk(dir: PathBuf) -> Device {
        Device {
            backing: Backing::Disk(dir),
        }
    }

    /// Reads the whole snapshot file; empty if none exists yet.
    pub fn read_snapshot(&self) -> io::Result<Vec<u8>> {
        match &self.backing {
            Backing::Mem(files) => Ok(relock(files).snapshot.clone()),
            Backing::Disk(dir) => read_or_empty(&dir.join(SNAPSHOT_FILE)),
        }
    }

    /// Reads the whole WAL file; empty if none exists yet.
    pub fn read_wal(&self) -> io::Result<Vec<u8>> {
        match &self.backing {
            Backing::Mem(files) => {
                let f = relock(files);
                let mut bytes = f.wal.clone();
                if let Some(limit) = f.read_limit {
                    bytes.truncate(limit);
                }
                Ok(bytes)
            }
            Backing::Disk(dir) => read_or_empty(&dir.join(WAL_FILE)),
        }
    }

    /// Appends `bytes` to the WAL, optionally forcing them to stable
    /// storage before returning.
    pub fn append_wal(&self, bytes: &[u8], fsync: bool) -> io::Result<()> {
        match &self.backing {
            Backing::Mem(files) => {
                relock(files).wal.extend_from_slice(bytes);
                Ok(())
            }
            Backing::Disk(dir) => {
                fs::create_dir_all(dir)?;
                let mut f = fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(dir.join(WAL_FILE))?;
                // Synchronous on purpose, even on a reactor shard: the
                // durability contract is that a release's version is on
                // stable storage before the release message leaves, so the
                // append must complete inline. The record is tens of bytes;
                // FsyncPolicy::Never exists for deployments that refuse the
                // sync cost.
                f.write_all(bytes)?; // lint: allow(blocking)
                if fsync {
                    f.sync_data()?;
                }
                Ok(())
            }
        }
    }

    /// Truncates the WAL to its first `keep` bytes — recovery's repair
    /// step after a torn or corrupt tail.
    pub fn truncate_wal(&self, keep: usize) -> io::Result<()> {
        match &self.backing {
            Backing::Mem(files) => {
                relock(files).wal.truncate(keep);
                Ok(())
            }
            Backing::Disk(dir) => {
                let path = dir.join(WAL_FILE);
                if path.exists() {
                    let f = fs::OpenOptions::new().write(true).open(path)?;
                    f.set_len(keep as u64)?;
                    f.sync_data()?;
                }
                Ok(())
            }
        }
    }

    /// Atomically installs a new snapshot and empties the WAL (the two
    /// halves of a compaction). On disk the snapshot goes through a
    /// write-temp + rename so a crash leaves either the old or the new
    /// snapshot intact; the WAL is truncated only after the snapshot is
    /// durable, so a crash between the two steps merely replays entries
    /// the snapshot already covers.
    pub fn install_snapshot(&self, snapshot: &[u8], fsync: bool) -> io::Result<()> {
        match &self.backing {
            Backing::Mem(files) => {
                let mut f = relock(files);
                f.snapshot = snapshot.to_vec();
                f.wal.clear();
                Ok(())
            }
            Backing::Disk(dir) => {
                fs::create_dir_all(dir)?;
                let tmp = dir.join(SNAPSHOT_TMP);
                let mut f = fs::File::create(&tmp)?;
                // Same contract as append_wal: compaction happens inline on
                // the appending thread so the WAL is never truncated before
                // its replacement snapshot is durable.
                f.write_all(snapshot)?; // lint: allow(blocking)
                if fsync {
                    f.sync_data()?;
                }
                drop(f);
                fs::rename(&tmp, dir.join(SNAPSHOT_FILE))?;
                self.truncate_wal(0)
            }
        }
    }
}

/// Deterministic corruption hooks for the durable-reboot tests. Bit flips
/// work on both backings (read-modify-write on disk); the short-read limit
/// is a property of the in-memory device only — disk tests shorten the
/// file itself.
#[cfg(any(test, feature = "fault-injection"))]
impl Device {
    /// Current WAL length in bytes (ignores any read limit).
    pub fn wal_len(&self) -> io::Result<usize> {
        match &self.backing {
            Backing::Mem(files) => Ok(relock(files).wal.len()),
            Backing::Disk(dir) => Ok(read_or_empty(&dir.join(WAL_FILE))?.len()),
        }
    }

    /// Current snapshot length in bytes.
    pub fn snapshot_len(&self) -> io::Result<usize> {
        Ok(self.read_snapshot()?.len())
    }

    /// Flips one bit of the WAL in place.
    pub fn flip_wal_bit(&self, byte: usize, bit: u32) -> io::Result<()> {
        match &self.backing {
            Backing::Mem(files) => {
                flip(&mut relock(files).wal, byte, bit);
                Ok(())
            }
            Backing::Disk(dir) => {
                let path = dir.join(WAL_FILE);
                let mut bytes = read_or_empty(&path)?;
                flip(&mut bytes, byte, bit);
                fs::write(path, bytes)
            }
        }
    }

    /// Flips one bit of the snapshot in place.
    pub fn flip_snapshot_bit(&self, byte: usize, bit: u32) -> io::Result<()> {
        match &self.backing {
            Backing::Mem(files) => {
                flip(&mut relock(files).snapshot, byte, bit);
                Ok(())
            }
            Backing::Disk(dir) => {
                let path = dir.join(SNAPSHOT_FILE);
                let mut bytes = read_or_empty(&path)?;
                flip(&mut bytes, byte, bit);
                fs::write(path, bytes)
            }
        }
    }

    /// Sets (or clears) the short-read limit on the in-memory WAL; no-op
    /// on disk.
    pub fn set_wal_read_limit(&self, limit: Option<usize>) {
        if let Backing::Mem(files) = &self.backing {
            relock(files).read_limit = limit;
        }
    }
}

#[cfg(any(test, feature = "fault-injection"))]
fn flip(bytes: &mut [u8], byte: usize, bit: u32) {
    if let Some(b) = bytes.get_mut(byte) {
        *b ^= 1 << (bit % 8);
    }
}

fn read_or_empty(path: &std::path::Path) -> io::Result<Vec<u8>> {
    match fs::read(path) {
        Ok(bytes) => Ok(bytes),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_clones_share_contents() {
        let a = Device::mem();
        let b = a.clone();
        a.append_wal(b"abc", false).unwrap();
        assert_eq!(b.read_wal().unwrap(), b"abc");
        b.install_snapshot(b"snap", false).unwrap();
        assert_eq!(a.read_snapshot().unwrap(), b"snap");
        assert!(a.read_wal().unwrap().is_empty(), "compaction empties WAL");
    }

    #[test]
    fn mem_short_read_limit() {
        let d = Device::mem();
        d.append_wal(b"0123456789", false).unwrap();
        d.set_wal_read_limit(Some(4));
        assert_eq!(d.read_wal().unwrap(), b"0123");
        d.set_wal_read_limit(None);
        assert_eq!(d.read_wal().unwrap().len(), 10);
    }

    #[test]
    fn mem_bit_flip_and_truncate() {
        let d = Device::mem();
        d.append_wal(&[0x00, 0xFF], false).unwrap();
        d.flip_wal_bit(0, 3).unwrap();
        assert_eq!(d.read_wal().unwrap(), vec![0x08, 0xFF]);
        d.truncate_wal(1).unwrap();
        assert_eq!(d.wal_len().unwrap(), 1);
        // Out-of-range flips are ignored, not panics.
        d.flip_wal_bit(99, 0).unwrap();
    }

    #[test]
    #[cfg_attr(miri, ignore)] // touches the real filesystem
    fn disk_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("mocha-store-dev-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let d = Device::disk(dir.clone());
        assert!(d.read_wal().unwrap().is_empty(), "missing files read empty");
        d.append_wal(b"one", true).unwrap();
        d.append_wal(b"two", true).unwrap();
        // A fresh device over the same directory sees the same bytes —
        // the process-restart story.
        let e = Device::disk(dir.clone());
        assert_eq!(e.read_wal().unwrap(), b"onetwo");
        e.install_snapshot(b"snap", true).unwrap();
        assert_eq!(d.read_snapshot().unwrap(), b"snap");
        assert!(d.read_wal().unwrap().is_empty());
        d.flip_snapshot_bit(0, 0).unwrap();
        assert_ne!(e.read_snapshot().unwrap(), b"snap");
        let _ = fs::remove_dir_all(&dir);
    }
}
