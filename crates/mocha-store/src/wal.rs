//! WAL record format and the corruption-tolerant scanner.
//!
//! Each record is framed as
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! where the payload is a [`WalEntry`] in `mocha-wire` encoding: one
//! applied `(lock, version, full replica payloads)` statement. Records are
//! absolute (never differential), so replaying any prefix of the WAL over
//! any snapshot yields a state the site actually held — the property that
//! lets recovery truncate a corrupt tail instead of aborting.
//!
//! [`scan`] walks the log from the front and stops at the first torn,
//! checksum-mismatched, or undecodable record, reporting how many bytes
//! were valid. It never panics, whatever the input.

use mocha_wire::io::{ByteReader, ByteWriter, WireError};
use mocha_wire::message::ReplicaUpdate;
use mocha_wire::{LockId, ReplicaId, ReplicaPayload, Version};

use crate::crc::crc32;

/// Bytes of framing before each record payload (length + checksum).
pub const RECORD_HEADER: usize = 8;

/// One WAL record: the full replica payloads a site held for `lock` at
/// `version` when it applied or released that version.
#[derive(Debug, Clone, PartialEq)]
pub struct WalEntry {
    /// The lock whose replica set this records.
    pub lock: LockId,
    /// The version the payloads correspond to.
    pub version: Version,
    /// Full payloads of every replica guarded by the lock.
    pub updates: Vec<ReplicaUpdate>,
}

impl WalEntry {
    /// Encodes the entry payload (unframed).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(32);
        self.lock.encode(&mut w);
        self.version.encode(&mut w);
        w.put_u32(self.updates.len() as u32);
        for u in &self.updates {
            u.replica.encode(&mut w);
            u.payload.encode(&mut w);
        }
        w.into_bytes()
    }

    /// Decodes an entry payload, requiring all input consumed.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated input, hostile length
    /// prefixes, bad payload tags, or trailing bytes — never panics.
    pub fn decode(bytes: &[u8]) -> Result<WalEntry, WireError> {
        let mut r = ByteReader::new(bytes);
        let lock = LockId::decode(&mut r)?;
        let version = Version::decode(&mut r)?;
        let n = r.get_u32()? as usize;
        // Each update is at least 5 bytes (replica id + payload tag);
        // reject counts the input cannot possibly satisfy.
        if n.saturating_mul(5) > r.remaining() {
            return Err(WireError::LengthOverrun {
                declared: n * 5,
                remaining: r.remaining(),
            });
        }
        let mut updates = Vec::with_capacity(n);
        for _ in 0..n {
            let replica = ReplicaId::decode(&mut r)?;
            let payload = ReplicaPayload::decode(&mut r)?;
            updates.push(ReplicaUpdate::new(replica, payload));
        }
        r.finish()?;
        Ok(WalEntry {
            lock,
            version,
            updates,
        })
    }
}

/// Frames an encoded entry payload as one WAL record.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(payload.len() + RECORD_HEADER);
    w.put_u32(payload.len() as u32);
    w.put_u32(crc32(payload));
    w.put_raw(payload);
    w.into_bytes()
}

/// The result of walking a WAL image from the front.
#[derive(Debug)]
pub struct WalScan {
    /// Entries recovered, in append order.
    pub entries: Vec<WalEntry>,
    /// Byte length of the valid prefix; everything after it is garbage
    /// and should be truncated away before appending again.
    pub valid_len: usize,
    /// Why the scan stopped early, if it did.
    pub corruption: Option<String>,
}

/// Scans `bytes` as a sequence of framed records, stopping at the first
/// torn, checksum-mismatched, or undecodable record.
pub fn scan(bytes: &[u8]) -> WalScan {
    let mut entries = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            return WalScan {
                entries,
                valid_len: pos,
                corruption: None,
            };
        }
        if rest.len() < RECORD_HEADER {
            return WalScan {
                entries,
                valid_len: pos,
                corruption: Some(format!("torn record header ({} trailing bytes)", rest.len())),
            };
        }
        // Infallible: RECORD_HEADER bytes are present.
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if rest.len() - RECORD_HEADER < len {
            return WalScan {
                entries,
                valid_len: pos,
                corruption: Some(format!(
                    "torn record payload (declared {len}, {} present)",
                    rest.len() - RECORD_HEADER
                )),
            };
        }
        let payload = &rest[RECORD_HEADER..RECORD_HEADER + len];
        if crc32(payload) != crc {
            return WalScan {
                entries,
                valid_len: pos,
                corruption: Some(format!("checksum mismatch at offset {pos}")),
            };
        }
        match WalEntry::decode(payload) {
            Ok(entry) => entries.push(entry),
            // A record whose checksum matches but whose payload does not
            // decode means the *writer* was corrupt, not the medium;
            // treat it exactly like tail damage.
            Err(e) => {
                return WalScan {
                    entries,
                    valid_len: pos,
                    corruption: Some(format!("undecodable record at offset {pos}: {e}")),
                }
            }
        }
        pos += RECORD_HEADER + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(v: u64) -> WalEntry {
        WalEntry {
            lock: LockId(1),
            version: Version(v),
            updates: vec![ReplicaUpdate::new(
                ReplicaId(7),
                ReplicaPayload::I64s(vec![v as i64, -1]),
            )],
        }
    }

    fn log_of(entries: &[WalEntry]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for e in entries {
            bytes.extend_from_slice(&frame(&e.encode()));
        }
        bytes
    }

    #[test]
    fn entry_roundtrips() {
        let e = WalEntry {
            lock: LockId(3),
            version: Version(9),
            updates: vec![
                ReplicaUpdate::new(ReplicaId(1), ReplicaPayload::Bytes(vec![1, 2, 3])),
                ReplicaUpdate::new(ReplicaId(2), ReplicaPayload::Utf8("hi".into())),
            ],
        };
        assert_eq!(WalEntry::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn clean_log_scans_fully() {
        let entries = vec![entry(1), entry(2), entry(3)];
        let bytes = log_of(&entries);
        let s = scan(&bytes);
        assert_eq!(s.entries, entries);
        assert_eq!(s.valid_len, bytes.len());
        assert!(s.corruption.is_none());
    }

    #[test]
    fn torn_tail_recovers_prefix() {
        let entries = vec![entry(1), entry(2)];
        let mut bytes = log_of(&entries);
        let clean_len = bytes.len();
        let torn = frame(&entry(3).encode());
        // Every strict prefix of the torn record must recover exactly the
        // first two entries.
        for cut in 1..torn.len() {
            bytes.truncate(clean_len);
            bytes.extend_from_slice(&torn[..cut]);
            let s = scan(&bytes);
            assert_eq!(s.entries, entries, "cut={cut}");
            assert_eq!(s.valid_len, clean_len, "cut={cut}");
            assert!(s.corruption.is_some(), "cut={cut}");
        }
    }

    #[test]
    fn bit_flip_stops_scan_at_damaged_record() {
        let entries = vec![entry(1), entry(2), entry(3)];
        let clean = log_of(&entries);
        let first_len = frame(&entry(1).encode()).len();
        // Flip one bit in every byte position of the second record.
        for byte in first_len..first_len + frame(&entry(2).encode()).len() {
            let mut bytes = clean.clone();
            bytes[byte] ^= 0x04;
            let s = scan(&bytes);
            assert!(s.corruption.is_some(), "byte={byte}");
            assert!(
                s.entries.len() <= 1 || s.valid_len <= first_len || s.entries[0] == entries[0],
                "byte={byte}"
            );
            // The valid prefix always rescans clean.
            let again = scan(&bytes[..s.valid_len]);
            assert!(again.corruption.is_none(), "byte={byte}");
            assert_eq!(again.entries.len(), s.entries.len(), "byte={byte}");
        }
    }

    #[test]
    fn hostile_update_count_is_tail_damage_not_panic() {
        // A record whose payload claims 2^31 updates but checksums
        // correctly (writer bug): scan must stop gracefully.
        let mut w = ByteWriter::new();
        LockId(1).encode(&mut w);
        Version(1).encode(&mut w);
        w.put_u32(1 << 31);
        let payload = w.into_bytes();
        let bytes = frame(&payload);
        let s = scan(&bytes);
        assert!(s.entries.is_empty());
        assert_eq!(s.valid_len, 0);
        assert!(s.corruption.unwrap().contains("undecodable"));
    }

    #[test]
    fn empty_log_is_clean() {
        let s = scan(&[]);
        assert!(s.entries.is_empty());
        assert_eq!(s.valid_len, 0);
        assert!(s.corruption.is_none());
    }
}
