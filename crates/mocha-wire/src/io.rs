//! Minimal binary encoding primitives.
//!
//! All integers are little-endian. Variable-length collections are prefixed
//! with a `u32` length that readers bound-check against the remaining input,
//! so malformed datagrams produce [`WireError`]s instead of panics or huge
//! allocations.

use std::error::Error;
use std::fmt;

/// Error decoding a wire value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    UnexpectedEof {
        /// Bytes needed to continue decoding.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A length prefix exceeded the bytes remaining in the input.
    LengthOverrun {
        /// Declared length.
        declared: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// Context for the failing decode (e.g. type name).
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Trailing bytes remained after a complete decode where none were
    /// expected.
    TrailingBytes {
        /// Number of leftover bytes.
        count: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {remaining} remaining"
                )
            }
            WireError::LengthOverrun {
                declared,
                remaining,
            } => {
                write!(
                    f,
                    "declared length {declared} exceeds remaining input {remaining}"
                )
            }
            WireError::BadTag { what, tag } => write!(f, "invalid tag {tag:#04x} for {what}"),
            WireError::BadUtf8 => write!(f, "string field was not valid utf-8"),
            WireError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after complete value")
            }
        }
    }
}

impl Error for WireError {}

/// Append-only binary writer.
///
/// ```
/// use mocha_wire::io::{ByteWriter, ByteReader};
///
/// let mut w = ByteWriter::new();
/// w.put_u32(7);
/// w.put_str("hello");
/// let bytes = w.into_bytes();
///
/// let mut r = ByteReader::new(&bytes);
/// assert_eq!(r.get_u32().unwrap(), 7);
/// assert_eq!(r.get_string().unwrap(), "hello");
/// r.finish().unwrap();
/// ```
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Creates a writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> ByteWriter {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a `u32` length prefix followed by the bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(u32::try_from(v.len()).expect("byte slice longer than u32::MAX"));
        self.put_raw(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Bounds-checked binary reader over a byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if the input is exhausted.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool encoded as one byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadTag`] for values other than 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what: "bool", tag }),
        }
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if fewer than 2 bytes remain.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if fewer than 4 bytes remain.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if fewer than 8 bytes remain.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i32`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if fewer than 4 bytes remain.
    pub fn get_i32(&mut self) -> Result<i32, WireError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if fewer than 8 bytes remain.
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `f64`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if fewer than 8 bytes remain.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u32` length prefix, validates it against the remaining
    /// input, and returns that many bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::LengthOverrun`] if the prefix exceeds the
    /// remaining input — the defence against adversarial or corrupt length
    /// fields triggering huge allocations.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.get_u32()? as usize;
        if len > self.remaining() {
            return Err(WireError::LengthOverrun {
                declared: len,
                remaining: self.remaining(),
            });
        }
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadUtf8`] if the bytes are not valid UTF-8, or a
    /// length error as for [`get_bytes`](Self::get_bytes).
    pub fn get_string(&mut self) -> Result<String, WireError> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// Reads all remaining bytes.
    pub fn get_rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    /// Asserts the input is fully consumed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::TrailingBytes`] if input remains.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                count: self.remaining(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_bool(true);
        w.put_bool(false);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_i32(-42);
        w.put_i64(-1_000_000_000_000);
        w.put_f64(3.5);
        w.put_bytes(b"abc");
        w.put_str("héllo");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_i32().unwrap(), -42);
        assert_eq!(r.get_i64().unwrap(), -1_000_000_000_000);
        assert_eq!(r.get_f64().unwrap().to_bits(), 3.5f64.to_bits());
        assert_eq!(r.get_bytes().unwrap(), b"abc");
        assert_eq!(r.get_string().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn eof_is_an_error_not_a_panic() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(
            r.get_u32(),
            Err(WireError::UnexpectedEof {
                needed: 4,
                remaining: 2
            })
        ));
    }

    #[test]
    fn length_overrun_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_u32(1_000_000); // declared length far beyond actual content
        w.put_raw(b"xy");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.get_bytes(),
            Err(WireError::LengthOverrun { .. })
        ));
    }

    #[test]
    fn bad_bool_tag_is_rejected() {
        let mut r = ByteReader::new(&[7]);
        assert!(matches!(
            r.get_bool(),
            Err(WireError::BadTag {
                what: "bool",
                tag: 7
            })
        ));
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_string(), Err(WireError::BadUtf8));
    }

    #[test]
    fn trailing_bytes_detected() {
        let r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.finish(), Err(WireError::TrailingBytes { count: 3 }));
    }

    #[test]
    fn get_rest_consumes_everything() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.get_u8().unwrap(), 1);
        assert_eq!(r.get_rest(), &[2, 3]);
        assert!(r.is_empty());
        r.finish().unwrap();
    }

    #[test]
    fn errors_display_meaningfully() {
        let e = WireError::UnexpectedEof {
            needed: 4,
            remaining: 1,
        };
        assert!(e.to_string().contains("unexpected end"));
        let e = WireError::BadTag {
            what: "Msg",
            tag: 0x99,
        };
        assert!(e.to_string().contains("Msg"));
    }
}
