//! Replica payloads.
//!
//! The paper's base `Replica` carries "homogeneous arrays of primitive data
//! types"; generated subclasses (MochaGen) carry an arbitrary serializable
//! object as an opaque byte array plus its type name. [`ReplicaPayload`]
//! models both. Payload size may "grow and shrink as the needs of the
//! Replica vary during application execution" — payloads are plain values,
//! replaced wholesale on update.

use std::fmt;

use crate::io::{ByteReader, ByteWriter, WireError};

/// The typed contents of one shared replica.
#[derive(Clone, PartialEq)]
pub enum ReplicaPayload {
    /// Homogeneous `byte[]`.
    Bytes(Vec<u8>),
    /// Homogeneous `int[]`.
    I32s(Vec<i32>),
    /// Homogeneous `long[]`.
    I64s(Vec<i64>),
    /// Homogeneous `double[]`.
    F64s(Vec<f64>),
    /// A shared string (the paper's `StringReplica`).
    Utf8(String),
    /// A serialized complex object: the MochaGen path. `type_name`
    /// identifies the application type so the receiving side can
    /// unserialize into the right structure.
    Object {
        /// Application-level type identifier.
        type_name: String,
        /// Serialized object bytes (producer-defined format, typically a
        /// serde encoding in this reproduction).
        bytes: Vec<u8>,
    },
}

impl ReplicaPayload {
    /// An empty byte-array payload, the default state of a replica that has
    /// been registered but never written.
    pub fn empty() -> ReplicaPayload {
        ReplicaPayload::Bytes(Vec::new())
    }

    /// The *signature* of the payload: a short name for its type, matching
    /// the paper's "signature methods that enable the application to
    /// determine the type and amount of data the Replica represents".
    pub fn signature(&self) -> &'static str {
        match self {
            ReplicaPayload::Bytes(_) => "byte[]",
            ReplicaPayload::I32s(_) => "int[]",
            ReplicaPayload::I64s(_) => "long[]",
            ReplicaPayload::F64s(_) => "double[]",
            ReplicaPayload::Utf8(_) => "String",
            ReplicaPayload::Object { .. } => "Object",
        }
    }

    /// Number of elements (bytes, ints, doubles, chars, or serialized
    /// bytes) the payload holds.
    pub fn len(&self) -> usize {
        match self {
            ReplicaPayload::Bytes(v) => v.len(),
            ReplicaPayload::I32s(v) => v.len(),
            ReplicaPayload::I64s(v) => v.len(),
            ReplicaPayload::F64s(v) => v.len(),
            ReplicaPayload::Utf8(s) => s.len(),
            ReplicaPayload::Object { bytes, .. } => bytes.len(),
        }
    }

    /// Whether the payload holds no data.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size in bytes of the payload's data (what marshaling must touch).
    pub fn data_bytes(&self) -> usize {
        match self {
            ReplicaPayload::Bytes(v) => v.len(),
            ReplicaPayload::I32s(v) => v.len() * 4,
            ReplicaPayload::I64s(v) => v.len() * 8,
            ReplicaPayload::F64s(v) => v.len() * 8,
            ReplicaPayload::Utf8(s) => s.len(),
            ReplicaPayload::Object { type_name, bytes } => type_name.len() + bytes.len(),
        }
    }

    /// Encodes the payload (tag + contents) onto a writer.
    pub fn encode(&self, w: &mut ByteWriter) {
        match self {
            ReplicaPayload::Bytes(v) => {
                w.put_u8(0);
                w.put_bytes(v);
            }
            ReplicaPayload::I32s(v) => {
                w.put_u8(1);
                w.put_u32(v.len() as u32);
                for x in v {
                    w.put_i32(*x);
                }
            }
            ReplicaPayload::I64s(v) => {
                w.put_u8(2);
                w.put_u32(v.len() as u32);
                for x in v {
                    w.put_i64(*x);
                }
            }
            ReplicaPayload::F64s(v) => {
                w.put_u8(3);
                w.put_u32(v.len() as u32);
                for x in v {
                    w.put_f64(*x);
                }
            }
            ReplicaPayload::Utf8(s) => {
                w.put_u8(4);
                w.put_str(s);
            }
            ReplicaPayload::Object { type_name, bytes } => {
                w.put_u8(5);
                w.put_str(type_name);
                w.put_bytes(bytes);
            }
        }
    }

    /// Decodes a payload from a reader.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated input, bad tags, length overruns
    /// or invalid UTF-8.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<ReplicaPayload, WireError> {
        let tag = r.get_u8()?;
        match tag {
            0 => Ok(ReplicaPayload::Bytes(r.get_bytes()?.to_vec())),
            1 => {
                let n = checked_len(r, 4)?;
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(r.get_i32()?);
                }
                Ok(ReplicaPayload::I32s(v))
            }
            2 => {
                let n = checked_len(r, 8)?;
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(r.get_i64()?);
                }
                Ok(ReplicaPayload::I64s(v))
            }
            3 => {
                let n = checked_len(r, 8)?;
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(r.get_f64()?);
                }
                Ok(ReplicaPayload::F64s(v))
            }
            4 => Ok(ReplicaPayload::Utf8(r.get_string()?)),
            5 => {
                let type_name = r.get_string()?;
                let bytes = r.get_bytes()?.to_vec();
                Ok(ReplicaPayload::Object { type_name, bytes })
            }
            tag => Err(WireError::BadTag {
                what: "ReplicaPayload",
                tag,
            }),
        }
    }
}

/// Reads a `u32` element count and checks `count * elem_size` fits in the
/// remaining input, guarding against hostile length prefixes.
fn checked_len(r: &mut ByteReader<'_>, elem_size: usize) -> Result<usize, WireError> {
    let n = r.get_u32()? as usize;
    let need = n.saturating_mul(elem_size);
    if need > r.remaining() {
        return Err(WireError::LengthOverrun {
            declared: need,
            remaining: r.remaining(),
        });
    }
    Ok(n)
}

impl Default for ReplicaPayload {
    fn default() -> Self {
        ReplicaPayload::empty()
    }
}

impl fmt::Debug for ReplicaPayload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicaPayload::Object { type_name, bytes } => f
                .debug_struct("Object")
                .field("type_name", type_name)
                .field("len", &bytes.len())
                .finish(),
            other => write!(f, "{}[len={}]", other.signature(), other.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: &ReplicaPayload) -> ReplicaPayload {
        let mut w = ByteWriter::new();
        p.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let out = ReplicaPayload::decode(&mut r).unwrap();
        r.finish().unwrap();
        out
    }

    #[test]
    fn all_variants_roundtrip() {
        let cases = vec![
            ReplicaPayload::Bytes(vec![1, 2, 3]),
            ReplicaPayload::I32s(vec![-1, 0, i32::MAX]),
            ReplicaPayload::I64s(vec![i64::MIN, 42]),
            ReplicaPayload::F64s(vec![1.5, -2.25]),
            ReplicaPayload::Utf8("Good Choice".to_string()),
            ReplicaPayload::Object {
                type_name: "java.util.Hashtable".to_string(),
                bytes: vec![9; 100],
            },
            ReplicaPayload::empty(),
        ];
        for p in &cases {
            assert_eq!(&roundtrip(p), p);
        }
    }

    #[test]
    fn signatures_match_variants() {
        assert_eq!(ReplicaPayload::I32s(vec![]).signature(), "int[]");
        assert_eq!(ReplicaPayload::Utf8(String::new()).signature(), "String");
        assert_eq!(
            ReplicaPayload::Object {
                type_name: "X".into(),
                bytes: vec![]
            }
            .signature(),
            "Object"
        );
    }

    #[test]
    fn data_bytes_accounts_for_element_width() {
        assert_eq!(ReplicaPayload::I32s(vec![0; 10]).data_bytes(), 40);
        assert_eq!(ReplicaPayload::F64s(vec![0.0; 10]).data_bytes(), 80);
        assert_eq!(ReplicaPayload::Bytes(vec![0; 10]).data_bytes(), 10);
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        // Tag 1 (I32s) claiming u32::MAX elements with 4 bytes of content.
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_u32(u32::MAX);
        w.put_u32(0);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            ReplicaPayload::decode(&mut r),
            Err(WireError::LengthOverrun { .. })
        ));
    }

    #[test]
    fn bad_tag_is_rejected() {
        let mut r = ByteReader::new(&[200]);
        assert!(matches!(
            ReplicaPayload::decode(&mut r),
            Err(WireError::BadTag {
                what: "ReplicaPayload",
                ..
            })
        ));
    }

    #[test]
    fn empty_default_and_is_empty() {
        let p = ReplicaPayload::default();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn debug_is_compact_for_large_payloads() {
        let p = ReplicaPayload::Bytes(vec![0; 1_000_000]);
        let s = format!("{p:?}");
        assert!(s.len() < 64, "debug was {s}");
    }
}
