//! Delta encoding for replica payloads.
//!
//! Mocha's §4 availability scheme pushes the *whole* payload to every
//! update-recipient at each release, so wide-area bandwidth scales with
//! object size rather than write size. A [`PayloadDelta`] instead carries
//! a **segment edit script** against a base version the receiver already
//! holds: each segment either copies a range from the base or supplies
//! fresh elements. Applying the script is pure concatenation, so it stays
//! correct when the array grows or shrinks (an overwrite-in-place format
//! would mis-place the suffix whenever the length changes).
//!
//! Deltas are strictly an optimization: a receiver whose base version
//! does not match — or whose apply fails for any reason — NACKs back to a
//! full-payload transfer. Correctness never depends on delta
//! availability, only bandwidth does.

use crate::io::{ByteReader, ByteWriter, WireError};
use crate::payload::ReplicaPayload;

/// One edit-script segment over elements of type `T`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Seg<T> {
    /// Copy `len` elements starting at `offset` from the receiver's base
    /// payload.
    Copy {
        /// Start index into the base payload, in elements.
        offset: u32,
        /// Number of elements to copy.
        len: u32,
    },
    /// Splice in fresh elements carried on the wire.
    Fresh(Vec<T>),
}

/// An edit script turning one [`ReplicaPayload`] into another of the same
/// variant. `Object` payloads have no delta form (their bytes are an
/// opaque producer-defined encoding) and always travel in full.
#[derive(Debug, Clone, PartialEq)]
pub enum PayloadDelta {
    /// Script over `byte[]` elements.
    Bytes(Vec<Seg<u8>>),
    /// Script over `int[]` elements.
    I32s(Vec<Seg<i32>>),
    /// Script over `long[]` elements.
    I64s(Vec<Seg<i64>>),
    /// Script over `double[]` elements (compared bitwise when diffing, so
    /// NaNs and signed zeros round-trip exactly).
    F64s(Vec<Seg<f64>>),
    /// Script over the UTF-8 *bytes* of a string; the applied result is
    /// re-validated as UTF-8.
    Utf8(Vec<Seg<u8>>),
}

/// Computes the common-prefix/common-suffix edit script from `base` to
/// `new`. Runs of unchanged elements in the middle are not detected —
/// the paper's workloads write one contiguous region per release, which
/// this captures exactly at O(n) cost.
fn diff_slice<T: Clone>(base: &[T], new: &[T], eq: fn(&T, &T) -> bool) -> Vec<Seg<T>> {
    let mut p = 0;
    while p < base.len() && p < new.len() && eq(&base[p], &new[p]) {
        p += 1;
    }
    let mut s = 0;
    while s < base.len() - p
        && s < new.len() - p
        && eq(&base[base.len() - 1 - s], &new[new.len() - 1 - s])
    {
        s += 1;
    }
    let mut segs = Vec::new();
    if p > 0 {
        segs.push(Seg::Copy {
            offset: 0,
            len: p as u32,
        });
    }
    let mid = &new[p..new.len() - s];
    if !mid.is_empty() {
        segs.push(Seg::Fresh(mid.to_vec()));
    }
    if s > 0 {
        segs.push(Seg::Copy {
            offset: (base.len() - s) as u32,
            len: s as u32,
        });
    }
    segs
}

/// Applies an edit script to a base slice by concatenating segments.
fn apply_slice<T: Clone>(base: &[T], segs: &[Seg<T>]) -> Result<Vec<T>, WireError> {
    let mut out = Vec::new();
    for seg in segs {
        match seg {
            Seg::Copy { offset, len } => {
                let start = *offset as usize;
                let end = start.saturating_add(*len as usize);
                let range = base.get(start..end).ok_or(WireError::LengthOverrun {
                    declared: end,
                    remaining: base.len(),
                })?;
                out.extend_from_slice(range);
            }
            Seg::Fresh(v) => out.extend_from_slice(v),
        }
    }
    Ok(out)
}

fn encode_segs<T>(w: &mut ByteWriter, segs: &[Seg<T>], put: fn(&mut ByteWriter, &T)) {
    w.put_u32(segs.len() as u32);
    for seg in segs {
        match seg {
            Seg::Copy { offset, len } => {
                w.put_u8(0);
                w.put_u32(*offset);
                w.put_u32(*len);
            }
            Seg::Fresh(v) => {
                w.put_u8(1);
                w.put_u32(v.len() as u32);
                for x in v {
                    put(w, x);
                }
            }
        }
    }
}

/// Reads a `u32` element count and checks `count * elem_size` fits in the
/// remaining input, guarding against hostile length prefixes.
fn checked_len(r: &mut ByteReader<'_>, elem_size: usize) -> Result<usize, WireError> {
    let n = r.get_u32()? as usize;
    let need = n.saturating_mul(elem_size);
    if need > r.remaining() {
        return Err(WireError::LengthOverrun {
            declared: need,
            remaining: r.remaining(),
        });
    }
    Ok(n)
}

fn decode_segs<'b, T>(
    r: &mut ByteReader<'b>,
    elem_size: usize,
    get: fn(&mut ByteReader<'b>) -> Result<T, WireError>,
) -> Result<Vec<Seg<T>>, WireError> {
    // The smallest segment is a Fresh of zero elements: 1 tag + 4 count.
    let n = checked_len(r, 5)?;
    let mut segs = Vec::with_capacity(n);
    for _ in 0..n {
        match r.get_u8()? {
            0 => segs.push(Seg::Copy {
                offset: r.get_u32()?,
                len: r.get_u32()?,
            }),
            1 => {
                let k = checked_len(r, elem_size)?;
                let mut v = Vec::with_capacity(k);
                for _ in 0..k {
                    v.push(get(r)?);
                }
                segs.push(Seg::Fresh(v));
            }
            tag => return Err(WireError::BadTag { what: "Seg", tag }),
        }
    }
    Ok(segs)
}

fn segs_cost<T>(segs: &[Seg<T>], elem_size: usize) -> usize {
    // 1 variant tag + 4 count + per segment: 1 tag + (Copy: 8 | Fresh: 4 + data).
    5 + segs
        .iter()
        .map(|seg| match seg {
            Seg::Copy { .. } => 9,
            Seg::Fresh(v) => 5 + v.len() * elem_size,
        })
        .sum::<usize>()
}

impl PayloadDelta {
    /// Diffs `new` against `base`, producing the edit script that turns the
    /// base into the new payload. Returns `None` when the variants differ
    /// or the payload is an `Object` (no delta form) — the caller falls
    /// back to a full transfer.
    pub fn diff(base: &ReplicaPayload, new: &ReplicaPayload) -> Option<PayloadDelta> {
        match (base, new) {
            (ReplicaPayload::Bytes(b), ReplicaPayload::Bytes(n)) => {
                Some(PayloadDelta::Bytes(diff_slice(b, n, u8::eq)))
            }
            (ReplicaPayload::I32s(b), ReplicaPayload::I32s(n)) => {
                Some(PayloadDelta::I32s(diff_slice(b, n, i32::eq)))
            }
            (ReplicaPayload::I64s(b), ReplicaPayload::I64s(n)) => {
                Some(PayloadDelta::I64s(diff_slice(b, n, i64::eq)))
            }
            (ReplicaPayload::F64s(b), ReplicaPayload::F64s(n)) => {
                Some(PayloadDelta::F64s(diff_slice(b, n, |a, b| {
                    a.to_bits() == b.to_bits()
                })))
            }
            (ReplicaPayload::Utf8(b), ReplicaPayload::Utf8(n)) => Some(PayloadDelta::Utf8(
                diff_slice(b.as_bytes(), n.as_bytes(), u8::eq),
            )),
            _ => None,
        }
    }

    /// Applies the edit script to `base`, producing the new payload.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] when the base variant does not match the
    /// delta, a `Copy` segment reaches past the base, or a `Utf8` result is
    /// not valid UTF-8. Receivers treat any error as "delta unusable" and
    /// NACK for a full transfer.
    pub fn apply(&self, base: &ReplicaPayload) -> Result<ReplicaPayload, WireError> {
        let mismatch = WireError::BadTag {
            what: "PayloadDelta base",
            tag: 0,
        };
        match (self, base) {
            (PayloadDelta::Bytes(segs), ReplicaPayload::Bytes(b)) => {
                Ok(ReplicaPayload::Bytes(apply_slice(b, segs)?))
            }
            (PayloadDelta::I32s(segs), ReplicaPayload::I32s(b)) => {
                Ok(ReplicaPayload::I32s(apply_slice(b, segs)?))
            }
            (PayloadDelta::I64s(segs), ReplicaPayload::I64s(b)) => {
                Ok(ReplicaPayload::I64s(apply_slice(b, segs)?))
            }
            (PayloadDelta::F64s(segs), ReplicaPayload::F64s(b)) => {
                Ok(ReplicaPayload::F64s(apply_slice(b, segs)?))
            }
            (PayloadDelta::Utf8(segs), ReplicaPayload::Utf8(b)) => {
                let bytes = apply_slice(b.as_bytes(), segs)?;
                let s = String::from_utf8(bytes).map_err(|_| WireError::BadUtf8)?;
                Ok(ReplicaPayload::Utf8(s))
            }
            _ => Err(mismatch),
        }
    }

    /// Approximate encoded size in bytes, used by the sender to decide
    /// whether the delta actually beats a full payload.
    pub fn cost_bytes(&self) -> usize {
        match self {
            PayloadDelta::Bytes(segs) | PayloadDelta::Utf8(segs) => segs_cost(segs, 1),
            PayloadDelta::I32s(segs) => segs_cost(segs, 4),
            PayloadDelta::I64s(segs) => segs_cost(segs, 8),
            PayloadDelta::F64s(segs) => segs_cost(segs, 8),
        }
    }

    /// Encodes the delta (variant tag + segments) onto a writer.
    pub fn encode(&self, w: &mut ByteWriter) {
        match self {
            PayloadDelta::Bytes(segs) => {
                w.put_u8(0);
                encode_segs(w, segs, |w, x| w.put_u8(*x));
            }
            PayloadDelta::I32s(segs) => {
                w.put_u8(1);
                encode_segs(w, segs, |w, x| w.put_i32(*x));
            }
            PayloadDelta::I64s(segs) => {
                w.put_u8(2);
                encode_segs(w, segs, |w, x| w.put_i64(*x));
            }
            PayloadDelta::F64s(segs) => {
                w.put_u8(3);
                encode_segs(w, segs, |w, x| w.put_f64(*x));
            }
            PayloadDelta::Utf8(segs) => {
                w.put_u8(4);
                encode_segs(w, segs, |w, x| w.put_u8(*x));
            }
        }
    }

    /// Decodes a delta from a reader.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated input, bad tags, or hostile
    /// length prefixes.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<PayloadDelta, WireError> {
        match r.get_u8()? {
            0 => Ok(PayloadDelta::Bytes(decode_segs(r, 1, ByteReader::get_u8)?)),
            1 => Ok(PayloadDelta::I32s(decode_segs(r, 4, ByteReader::get_i32)?)),
            2 => Ok(PayloadDelta::I64s(decode_segs(r, 8, ByteReader::get_i64)?)),
            3 => Ok(PayloadDelta::F64s(decode_segs(r, 8, ByteReader::get_f64)?)),
            4 => Ok(PayloadDelta::Utf8(decode_segs(r, 1, ByteReader::get_u8)?)),
            tag => Err(WireError::BadTag {
                what: "PayloadDelta",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(d: &PayloadDelta) -> PayloadDelta {
        let mut w = ByteWriter::new();
        d.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let out = PayloadDelta::decode(&mut r).unwrap();
        r.finish().unwrap();
        out
    }

    fn wire_bytes(p: &ReplicaPayload) -> Vec<u8> {
        let mut w = ByteWriter::new();
        p.encode(&mut w);
        w.into_bytes()
    }

    fn diff_apply(base: &ReplicaPayload, new: &ReplicaPayload) {
        let d = PayloadDelta::diff(base, new).unwrap();
        let d = roundtrip(&d);
        // Compare wire encodings, not PartialEq: NaN f64 elements must
        // round-trip bit-exactly even though NaN != NaN.
        assert_eq!(wire_bytes(&d.apply(base).unwrap()), wire_bytes(new));
    }

    #[test]
    fn diff_then_apply_reconstructs_every_variant() {
        diff_apply(
            &ReplicaPayload::Bytes(vec![1, 2, 3, 4]),
            &ReplicaPayload::Bytes(vec![1, 9, 3, 4]),
        );
        diff_apply(
            &ReplicaPayload::I32s(vec![5; 100]),
            &ReplicaPayload::I32s(vec![5; 100]),
        );
        diff_apply(
            &ReplicaPayload::I64s(vec![1, 2, 3]),
            &ReplicaPayload::I64s(vec![]),
        );
        diff_apply(
            &ReplicaPayload::F64s(vec![1.0, f64::NAN]),
            &ReplicaPayload::F64s(vec![1.0, 2.0, f64::NAN]),
        );
        diff_apply(
            &ReplicaPayload::Utf8("Good Choice".into()),
            &ReplicaPayload::Utf8("Good Voice".into()),
        );
    }

    #[test]
    fn length_change_keeps_suffix_aligned() {
        // The classic overwrite-in-place bug: insert in the middle shifts
        // the suffix. The edit script must still reproduce it exactly.
        let base = ReplicaPayload::I32s(vec![1, 2, 3, 4, 5]);
        let new = ReplicaPayload::I32s(vec![1, 2, 99, 98, 97, 3, 4, 5]);
        diff_apply(&base, &new);
        let shrunk = ReplicaPayload::I32s(vec![1, 5]);
        diff_apply(&base, &shrunk);
    }

    #[test]
    fn small_write_in_large_object_yields_small_delta() {
        let mut v = vec![0u8; 64 * 1024];
        let base = ReplicaPayload::Bytes(v.clone());
        v[1000] = 7;
        let new = ReplicaPayload::Bytes(v);
        let d = PayloadDelta::diff(&base, &new).unwrap();
        assert!(d.cost_bytes() < 64, "cost was {}", d.cost_bytes());
        assert_eq!(d.apply(&base).unwrap(), new);
    }

    #[test]
    fn objects_and_variant_mismatch_have_no_delta() {
        let obj = ReplicaPayload::Object {
            type_name: "X".into(),
            bytes: vec![1],
        };
        assert!(PayloadDelta::diff(&obj, &obj).is_none());
        assert!(PayloadDelta::diff(
            &ReplicaPayload::I32s(vec![1]),
            &ReplicaPayload::I64s(vec![1]),
        )
        .is_none());
    }

    #[test]
    fn apply_rejects_wrong_base_variant_and_bad_copy() {
        let d = PayloadDelta::diff(
            &ReplicaPayload::I32s(vec![1, 2]),
            &ReplicaPayload::I32s(vec![1, 3]),
        )
        .unwrap();
        assert!(d.apply(&ReplicaPayload::Bytes(vec![1, 2])).is_err());
        let oob = PayloadDelta::I32s(vec![Seg::Copy { offset: 1, len: 9 }]);
        assert!(matches!(
            oob.apply(&ReplicaPayload::I32s(vec![0; 4])),
            Err(WireError::LengthOverrun { .. })
        ));
    }

    #[test]
    fn utf8_apply_revalidates() {
        // Splitting a multi-byte char between Copy and Fresh is legal on
        // the wire; an invalid recombination must be rejected.
        let bad = PayloadDelta::Utf8(vec![Seg::Fresh(vec![0xFF, 0xFE])]);
        assert!(matches!(
            bad.apply(&ReplicaPayload::Utf8(String::new())),
            Err(WireError::BadUtf8)
        ));
        // And a valid split recombines fine.
        let base = ReplicaPayload::Utf8("héllo".into());
        let new = ReplicaPayload::Utf8("héllö".into());
        diff_apply(&base, &new);
    }

    #[test]
    fn hostile_segment_count_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_u8(1); // I32s
        w.put_u32(u32::MAX); // segment count
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            PayloadDelta::decode(&mut r),
            Err(WireError::LengthOverrun { .. })
        ));
    }

    #[test]
    fn truncated_delta_is_rejected() {
        let d = PayloadDelta::diff(
            &ReplicaPayload::F64s(vec![1.0, 2.0]),
            &ReplicaPayload::F64s(vec![1.0, 3.0]),
        )
        .unwrap();
        let mut w = ByteWriter::new();
        d.encode(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(
                PayloadDelta::decode(&mut r).is_err() || r.finish().is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }
}
