//! The Mocha control protocol.
//!
//! These are the messages exchanged between application threads, the
//! home-site synchronization thread and the per-site daemon threads, taken
//! directly from the paper's §3 pseudocode (`ACQUIRELOCK`, `RELEASELOCK`,
//! `GRANT`, `REGISTERREPLICA`, `TRANSFERREPLICA`) plus the §4
//! failure-handling refinements (version polls, heartbeats, lock
//! revocation, push-based dissemination) and the §2 remote-evaluation
//! (spawn / code shipping) messages.

use std::sync::Arc;

use crate::delta::PayloadDelta;
use crate::ids::{LockId, ReplicaId, RequestId, SiteId, ThreadId, Version};
use crate::io::{ByteReader, ByteWriter, WireError};
use crate::payload::ReplicaPayload;

/// The access mode of a lock acquisition. The paper describes the basic
/// algorithm with exclusive locks and notes it "can easily be modified to
/// support shared (i.e., read-only) locks" — both are supported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockMode {
    /// Exclusive: sole holder, may modify replicas.
    Exclusive,
    /// Shared: concurrent read-only holders.
    Shared,
}

impl LockMode {
    fn encode(self, w: &mut ByteWriter) {
        w.put_u8(match self {
            LockMode::Exclusive => 0,
            LockMode::Shared => 1,
        });
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(LockMode::Exclusive),
            1 => Ok(LockMode::Shared),
            tag => Err(WireError::BadTag {
                what: "LockMode",
                tag,
            }),
        }
    }
}

/// The flag carried in a [`Msg::Grant`]: does the grantee already hold the
/// current version of the replicas, or must it wait for a transfer?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionFlag {
    /// The grantee's local copies are current; it may proceed immediately.
    VersionOk,
    /// A new version is in flight from the previous owner's daemon; the
    /// grantee must wait for the matching [`Msg::ReplicaData`].
    NeedNewVersion,
}

impl VersionFlag {
    fn encode(self, w: &mut ByteWriter) {
        w.put_u8(match self {
            VersionFlag::VersionOk => 0,
            VersionFlag::NeedNewVersion => 1,
        });
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(VersionFlag::VersionOk),
            1 => Ok(VersionFlag::NeedNewVersion),
            tag => Err(WireError::BadTag {
                what: "VersionFlag",
                tag,
            }),
        }
    }
}

/// One versioned replica value as carried in transfers and pushes.
///
/// The payload is reference-counted so that a `UR = 4` release clones
/// pointers, not bytes: the daemon's store, its shadow snapshot, and every
/// in-flight push share one allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaUpdate {
    /// Which replica this value belongs to.
    pub replica: ReplicaId,
    /// The value (shared, immutable once published).
    pub payload: Arc<ReplicaPayload>,
}

impl ReplicaUpdate {
    /// Wraps an owned payload for sending.
    pub fn new(replica: ReplicaId, payload: ReplicaPayload) -> ReplicaUpdate {
        ReplicaUpdate {
            replica,
            payload: Arc::new(payload),
        }
    }

    /// Builds an update around an already-shared payload without copying.
    pub fn shared(replica: ReplicaId, payload: Arc<ReplicaPayload>) -> ReplicaUpdate {
        ReplicaUpdate { replica, payload }
    }

    fn encode(&self, w: &mut ByteWriter) {
        self.replica.encode(w);
        self.payload.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(ReplicaUpdate {
            replica: ReplicaId::decode(r)?,
            payload: Arc::new(ReplicaPayload::decode(r)?),
        })
    }
}

/// One replica's edit script as carried in delta transfers and pushes.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaDeltaUpdate {
    /// Which replica the script belongs to.
    pub replica: ReplicaId,
    /// The edit script against the receiver's base copy.
    pub delta: PayloadDelta,
}

impl ReplicaDeltaUpdate {
    fn encode(&self, w: &mut ByteWriter) {
        self.replica.encode(w);
        self.delta.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(ReplicaDeltaUpdate {
            replica: ReplicaId::decode(r)?,
            delta: PayloadDelta::decode(r)?,
        })
    }
}

/// A Mocha protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    // ------------------------------------------------------------------
    // §3 basic consistency algorithm
    // ------------------------------------------------------------------
    /// Application thread → synchronization thread: request the lock.
    AcquireLock {
        /// The lock being requested.
        lock: LockId,
        /// Requesting site.
        site: SiteId,
        /// Requesting application thread within the site.
        thread: ThreadId,
        /// §4 refinement: how long the thread expects to hold the lock, in
        /// milliseconds (0 = no hint; the coordinator applies its default
        /// lease).
        lease_hint_ms: u32,
        /// Exclusive or shared (read-only) access.
        mode: LockMode,
    },
    /// Synchronization thread → application thread: the lock is granted.
    Grant {
        /// The granted lock.
        lock: LockId,
        /// New version number the grantee will hold.
        version: Version,
        /// Whether fresh replica data is on its way.
        flag: VersionFlag,
    },
    /// Application thread → synchronization thread: release the lock.
    ReleaseLock {
        /// The lock being released.
        lock: LockId,
        /// Releasing site.
        site: SiteId,
        /// Version number after this owner's updates.
        new_version: Version,
        /// §4 refinement: sites to which the releaser's daemon pushed the
        /// new value (the paper's "set of identifiers (i.e., a bit
        /// vector)"), so the coordinator can skip redundant transfers.
        disseminated_to: Vec<SiteId>,
    },
    /// Application thread / daemon → synchronization thread and local
    /// daemon: a replica now exists at this site and wants updates.
    RegisterReplica {
        /// Lock guarding the replica.
        lock: LockId,
        /// The replica.
        replica: ReplicaId,
        /// Registering site.
        site: SiteId,
        /// Human-readable replica name (interned to `replica` at the home
        /// site; carried for bootstrap and debugging).
        name: String,
    },
    /// Synchronization thread → daemon: transfer your current copy of the
    /// replicas guarded by `lock` to `dest`.
    TransferReplica {
        /// Lock whose replica set must be transferred.
        lock: LockId,
        /// Destination site.
        dest: SiteId,
        /// Version the coordinator believes the daemon holds (sanity
        /// check; a daemon with an older copy answers with what it has).
        version: Version,
        /// Correlates coordinator-initiated transfers for timeout tracking.
        req: RequestId,
    },
    /// Daemon → requesting site: the marshaled replica values.
    ReplicaData {
        /// Lock whose replica set this is.
        lock: LockId,
        /// Version of these values.
        version: Version,
        /// The values.
        updates: Vec<ReplicaUpdate>,
        /// Echo of the `TransferReplica` request id (0 for owner-initiated
        /// sends that weren't coordinator-directed).
        req: RequestId,
    },
    /// Daemon → daemon: push-based dissemination of a new version (§4),
    /// applied directly by the receiving daemon.
    PushUpdate {
        /// Lock whose replica set this is.
        lock: LockId,
        /// Version of these values.
        version: Version,
        /// The values.
        updates: Vec<ReplicaUpdate>,
        /// Correlates the push with its ack for failure detection.
        req: RequestId,
    },
    /// Daemon → pushing daemon: the push was applied.
    PushAck {
        /// Lock acknowledged.
        lock: LockId,
        /// Version acknowledged.
        version: Version,
        /// Acking site.
        site: SiteId,
        /// Echo of the push request id.
        req: RequestId,
    },

    // ------------------------------------------------------------------
    // Delta dissemination (bandwidth refinement over §4's full-payload
    // transfers; strictly an optimization, never required for correctness)
    // ------------------------------------------------------------------
    /// Daemon → requesting site: replica values as edit scripts against
    /// `base_version`, replacing a full [`Msg::ReplicaData`] when the
    /// sender believes the receiver holds that base. A receiver on any
    /// other version answers [`Msg::DeltaNack`].
    ReplicaDelta {
        /// Lock whose replica set this is.
        lock: LockId,
        /// Version the scripts apply against.
        base_version: Version,
        /// Version the scripts produce.
        version: Version,
        /// Per-replica edit scripts.
        deltas: Vec<ReplicaDeltaUpdate>,
        /// Echo of the `TransferReplica` request id (0 for owner-initiated
        /// sends).
        req: RequestId,
    },
    /// Daemon → daemon: push-based dissemination as edit scripts against
    /// `base_version`; the delta form of [`Msg::PushUpdate`]. Applied and
    /// acknowledged with [`Msg::PushAck`] exactly like a full push, or
    /// refused with [`Msg::DeltaNack`].
    PushDelta {
        /// Lock whose replica set this is.
        lock: LockId,
        /// Version the scripts apply against.
        base_version: Version,
        /// Version the scripts produce.
        version: Version,
        /// Per-replica edit scripts.
        deltas: Vec<ReplicaDeltaUpdate>,
        /// Correlates the push with its ack for failure detection.
        req: RequestId,
    },
    /// Receiver → delta sender: my base version does not match (or the
    /// script failed to apply) — send the full payload instead.
    DeltaNack {
        /// Lock refused.
        lock: LockId,
        /// Refusing site.
        site: SiteId,
        /// The version the refusing site actually holds.
        have: Version,
        /// Echo of the delta's request id.
        req: RequestId,
    },
    /// Restarted durable daemon → coordinator: the versions it recovered
    /// from its snapshot + write-ahead log. The coordinator records them
    /// in its dissemination bookkeeping and forwards the announcement to
    /// each lock's member daemons so subsequent transfers to the rebooted
    /// site can ship `(recovered → current)` edit scripts instead of full
    /// payloads.
    SiteRecovered {
        /// The rebooted site.
        site: SiteId,
        /// `(lock, version)` pairs recovered from stable storage.
        versions: Vec<(LockId, Version)>,
    },

    // ------------------------------------------------------------------
    // §4 failure handling
    // ------------------------------------------------------------------
    /// Synchronization thread → daemon: what is the newest version you hold
    /// for `lock`? Used when the expected holder of the freshest copy has
    /// failed.
    PollVersion {
        /// Lock being polled.
        lock: LockId,
        /// Correlation id.
        req: RequestId,
    },
    /// Daemon → synchronization thread: poll answer.
    PollResponse {
        /// Lock polled.
        lock: LockId,
        /// Newest version held (INITIAL if never updated).
        version: Version,
        /// Answering site.
        site: SiteId,
        /// Echo of the poll request id.
        req: RequestId,
    },
    /// Synchronization thread → suspected owner's application layer: are
    /// you alive, and do you still hold `lock`? (Confirms a suspected
    /// owner failure before breaking a lock; also detects *phantom* holds
    /// whose release was lost with a dead coordinator.)
    Heartbeat {
        /// The lock whose hold is being checked.
        lock: LockId,
        /// Correlation id.
        req: RequestId,
    },
    /// Application layer → synchronization thread: alive, with the hold
    /// status.
    HeartbeatAck {
        /// Answering site.
        site: SiteId,
        /// Echo of the heartbeat request id.
        req: RequestId,
        /// Whether the lock is still held at the answering site.
        holding: bool,
    },
    /// Synchronization thread → (possibly dead) owner: your lock was
    /// broken. A live-but-slow owner must discard its grant.
    LockRevoked {
        /// The broken lock.
        lock: LockId,
        /// Version at which it was broken.
        version: Version,
    },

    // ------------------------------------------------------------------
    // §2 remote evaluation (spawn / code shipping)
    // ------------------------------------------------------------------
    /// Home → site manager: spawn this task class with these parameters.
    /// `pushed_classes` are the initial "push" of application code; the
    /// site demand-pulls anything else it encounters.
    SpawnRequest {
        /// Task class to instantiate (the paper's `"Myhello"`).
        task_class: String,
        /// Serialized `Parameter` travel-bag contents.
        params: Vec<u8>,
        /// Class names shipped up-front.
        pushed_classes: Vec<String>,
        /// Correlation id for the eventual result.
        req: RequestId,
    },
    /// Site → home: the spawned task's serialized `Result` travel bag.
    SpawnResult {
        /// Echo of the spawn request id.
        req: RequestId,
        /// Serialized `Result` contents (empty on failure).
        result: Vec<u8>,
        /// Whether the task completed without throwing.
        ok: bool,
    },
    /// Site → home: demand-pull of a class encountered during execution.
    CodeRequest {
        /// Class name needed.
        class: String,
        /// Correlation id.
        req: RequestId,
    },
    /// Home → site: the requested class "bytecode".
    CodeResponse {
        /// Class name.
        class: String,
        /// Opaque code unit bytes.
        code: Vec<u8>,
        /// Echo of the code request id.
        req: RequestId,
    },
    /// Synchronization thread → its own site's daemon: the next
    /// `ReplicaData` carrying `req` is not for us — forward it to `dest`.
    /// Only used in the *relay* ablation configuration, which deliberately
    /// disables the paper's locality optimisation (data normally travels
    /// daemon-to-daemon, never through the home site).
    ExpectRelay {
        /// Lock whose data will pass through.
        lock: LockId,
        /// Final destination site.
        dest: SiteId,
        /// Transfer correlation id.
        req: RequestId,
    },
    /// Surrogate synchronization thread → daemons: the coordinator now
    /// lives at `new_home` (§4's sketched recovery from synchronization-
    /// thread failure: "a new synchronization thread is spawned which
    /// informs the daemon threads of its existence").
    SyncMoved {
        /// Site now hosting the synchronization thread.
        new_home: SiteId,
    },
    /// Site → home: remote `mochaPrintln` output (the paper's remote
    /// printing / debugging support).
    RemotePrint {
        /// Printing site.
        site: SiteId,
        /// The printed line.
        text: String,
    },

    /// Daemon → daemon: an *unsynchronized* update to a cached replica
    /// (one not associated with a `ReplicaLock`). The paper's §7 future
    /// work — "non-synchronization based solutions for maintaining
    /// consistency" in the style of Bayou/Rover — realised as last-writer-
    /// wins publication ordered by a Lamport stamp.
    CacheUpdate {
        /// The cached replica.
        replica: ReplicaId,
        /// Lamport counter of the publication.
        counter: u64,
        /// Publishing site (tie-break).
        origin: SiteId,
        /// The value.
        payload: ReplicaPayload,
    },

    // ------------------------------------------------------------------
    // Directory and home migration (consistent-hash object directory with
    // dynamic coordinator handoff; opt-in via `HomeConfig`)
    // ------------------------------------------------------------------
    /// Current home coordinator → proposed new home: offer to hand over
    /// coordination of `lock`, fenced at `epoch`. The offer carries no
    /// state; the receiver only records its willingness.
    MigrateOffer {
        /// Lock whose coordination is offered.
        lock: LockId,
        /// Fence epoch the handoff will commit at (strictly greater than
        /// any epoch either side has seen for this lock).
        epoch: u64,
        /// Correlation id for the accept.
        req: RequestId,
    },
    /// Proposed new home → old home: offer accepted, ship the state.
    MigrateAccept {
        /// Lock being migrated.
        lock: LockId,
        /// Echo of the offer's fence epoch.
        epoch: u64,
        /// Accepting site (the new home).
        site: SiteId,
        /// Echo of the offer's correlation id.
        req: RequestId,
    },
    /// Old home → new home: the fenced per-lock coordinator state. On
    /// receipt the new home installs the lock and takes over; the old home
    /// retired the lock when it sent this (the version fence).
    MigrateCommit {
        /// Lock being migrated.
        lock: LockId,
        /// Fence epoch of this handoff.
        epoch: u64,
        /// Replica-set version at the fence point.
        version: Version,
        /// Site that produced the current version, if any.
        last_owner: Option<SiteId>,
        /// Registered member sites.
        members: Vec<SiteId>,
        /// Sites known to hold the current version.
        up_to_date: Vec<SiteId>,
        /// Last version each site is known to have held.
        site_versions: Vec<(SiteId, Version)>,
        /// Replicas associated with the lock.
        replicas: Vec<ReplicaId>,
        /// Echo of the offer's correlation id.
        req: RequestId,
    },
    /// Any site → the sender of a SYNC-port message it does not
    /// coordinate: redirect to the best home this site knows. The NACK of
    /// the directory protocol — stale directory caches self-correct on
    /// first contact, so correctness never depends on gossip freshness.
    StaleHome {
        /// Lock the refused message was about.
        lock: LockId,
        /// Best known home for that lock.
        home: SiteId,
        /// Directory epoch of that knowledge (0 = hash-ring default).
        epoch: u64,
    },
    /// New home → member daemons: directory-update gossip after a commit.
    HomeUpdate {
        /// Migrated lock.
        lock: LockId,
        /// Its new home.
        home: SiteId,
        /// Fence epoch of the migration (receivers ignore stale epochs).
        epoch: u64,
    },

    // ------------------------------------------------------------------
    // Benchmarks
    // ------------------------------------------------------------------
    /// Round-trip probe used by the small-message benchmark (§5's claim
    /// that MochaNet is ~2× TCP for messages under 256 bytes).
    Ping {
        /// Correlation id.
        req: RequestId,
        /// Probe payload.
        payload: Vec<u8>,
    },
    /// Probe reply.
    Pong {
        /// Echo of the ping id.
        req: RequestId,
        /// Echoed payload.
        payload: Vec<u8>,
    },
}

// Message tags. Explicit constants rather than a derive so the wire format
// is stable and documented.
const T_ACQUIRE: u8 = 1;
const T_GRANT: u8 = 2;
const T_RELEASE: u8 = 3;
const T_REGISTER: u8 = 4;
const T_TRANSFER: u8 = 5;
const T_REPLICA_DATA: u8 = 6;
const T_PUSH: u8 = 7;
const T_PUSH_ACK: u8 = 8;
const T_POLL: u8 = 9;
const T_POLL_RESP: u8 = 10;
const T_HEARTBEAT: u8 = 11;
const T_HEARTBEAT_ACK: u8 = 12;
const T_REVOKED: u8 = 13;
const T_SPAWN: u8 = 14;
const T_SPAWN_RESULT: u8 = 15;
const T_CODE_REQ: u8 = 16;
const T_CODE_RESP: u8 = 17;
const T_PRINT: u8 = 18;
const T_PING: u8 = 19;
const T_PONG: u8 = 20;
const T_SYNC_MOVED: u8 = 21;
const T_EXPECT_RELAY: u8 = 22;
const T_CACHE_UPDATE: u8 = 23;
const T_REPLICA_DELTA: u8 = 24;
const T_PUSH_DELTA: u8 = 25;
const T_DELTA_NACK: u8 = 26;
const T_SITE_RECOVERED: u8 = 27;
const T_MIGRATE_OFFER: u8 = 28;
const T_MIGRATE_ACCEPT: u8 = 29;
const T_MIGRATE_COMMIT: u8 = 30;
const T_STALE_HOME: u8 = 31;
const T_HOME_UPDATE: u8 = 32;

impl Msg {
    /// Encodes the message to a fresh byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(32);
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Encodes the message onto an existing writer.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        match self {
            Msg::AcquireLock {
                lock,
                site,
                thread,
                lease_hint_ms,
                mode,
            } => {
                w.put_u8(T_ACQUIRE);
                lock.encode(w);
                site.encode(w);
                thread.encode(w);
                w.put_u32(*lease_hint_ms);
                mode.encode(w);
            }
            Msg::Grant {
                lock,
                version,
                flag,
            } => {
                w.put_u8(T_GRANT);
                lock.encode(w);
                version.encode(w);
                flag.encode(w);
            }
            Msg::ReleaseLock {
                lock,
                site,
                new_version,
                disseminated_to,
            } => {
                w.put_u8(T_RELEASE);
                lock.encode(w);
                site.encode(w);
                new_version.encode(w);
                w.put_u32(disseminated_to.len() as u32);
                for s in disseminated_to {
                    s.encode(w);
                }
            }
            Msg::RegisterReplica {
                lock,
                replica,
                site,
                name,
            } => {
                w.put_u8(T_REGISTER);
                lock.encode(w);
                replica.encode(w);
                site.encode(w);
                w.put_str(name);
            }
            Msg::TransferReplica {
                lock,
                dest,
                version,
                req,
            } => {
                w.put_u8(T_TRANSFER);
                lock.encode(w);
                dest.encode(w);
                version.encode(w);
                req.encode(w);
            }
            Msg::ReplicaData {
                lock,
                version,
                updates,
                req,
            } => {
                w.put_u8(T_REPLICA_DATA);
                Self::encode_updates(w, *lock, *version, updates, *req);
            }
            Msg::PushUpdate {
                lock,
                version,
                updates,
                req,
            } => {
                w.put_u8(T_PUSH);
                Self::encode_updates(w, *lock, *version, updates, *req);
            }
            Msg::PushAck {
                lock,
                version,
                site,
                req,
            } => {
                w.put_u8(T_PUSH_ACK);
                lock.encode(w);
                version.encode(w);
                site.encode(w);
                req.encode(w);
            }
            Msg::ReplicaDelta {
                lock,
                base_version,
                version,
                deltas,
                req,
            } => {
                w.put_u8(T_REPLICA_DELTA);
                Self::encode_deltas(w, *lock, *base_version, *version, deltas, *req);
            }
            Msg::PushDelta {
                lock,
                base_version,
                version,
                deltas,
                req,
            } => {
                w.put_u8(T_PUSH_DELTA);
                Self::encode_deltas(w, *lock, *base_version, *version, deltas, *req);
            }
            Msg::DeltaNack {
                lock,
                site,
                have,
                req,
            } => {
                w.put_u8(T_DELTA_NACK);
                lock.encode(w);
                site.encode(w);
                have.encode(w);
                req.encode(w);
            }
            Msg::SiteRecovered { site, versions } => {
                w.put_u8(T_SITE_RECOVERED);
                site.encode(w);
                w.put_u32(versions.len() as u32);
                for (lock, version) in versions {
                    lock.encode(w);
                    version.encode(w);
                }
            }
            Msg::PollVersion { lock, req } => {
                w.put_u8(T_POLL);
                lock.encode(w);
                req.encode(w);
            }
            Msg::PollResponse {
                lock,
                version,
                site,
                req,
            } => {
                w.put_u8(T_POLL_RESP);
                lock.encode(w);
                version.encode(w);
                site.encode(w);
                req.encode(w);
            }
            Msg::Heartbeat { lock, req } => {
                w.put_u8(T_HEARTBEAT);
                lock.encode(w);
                req.encode(w);
            }
            Msg::HeartbeatAck { site, req, holding } => {
                w.put_u8(T_HEARTBEAT_ACK);
                site.encode(w);
                req.encode(w);
                w.put_bool(*holding);
            }
            Msg::LockRevoked { lock, version } => {
                w.put_u8(T_REVOKED);
                lock.encode(w);
                version.encode(w);
            }
            Msg::SpawnRequest {
                task_class,
                params,
                pushed_classes,
                req,
            } => {
                w.put_u8(T_SPAWN);
                w.put_str(task_class);
                w.put_bytes(params);
                w.put_u32(pushed_classes.len() as u32);
                for c in pushed_classes {
                    w.put_str(c);
                }
                req.encode(w);
            }
            Msg::SpawnResult { req, result, ok } => {
                w.put_u8(T_SPAWN_RESULT);
                req.encode(w);
                w.put_bytes(result);
                w.put_bool(*ok);
            }
            Msg::CodeRequest { class, req } => {
                w.put_u8(T_CODE_REQ);
                w.put_str(class);
                req.encode(w);
            }
            Msg::CodeResponse { class, code, req } => {
                w.put_u8(T_CODE_RESP);
                w.put_str(class);
                w.put_bytes(code);
                req.encode(w);
            }
            Msg::SyncMoved { new_home } => {
                w.put_u8(T_SYNC_MOVED);
                new_home.encode(w);
            }
            Msg::ExpectRelay { lock, dest, req } => {
                w.put_u8(T_EXPECT_RELAY);
                lock.encode(w);
                dest.encode(w);
                req.encode(w);
            }
            Msg::RemotePrint { site, text } => {
                w.put_u8(T_PRINT);
                site.encode(w);
                w.put_str(text);
            }
            Msg::CacheUpdate {
                replica,
                counter,
                origin,
                payload,
            } => {
                w.put_u8(T_CACHE_UPDATE);
                replica.encode(w);
                w.put_u64(*counter);
                origin.encode(w);
                payload.encode(w);
            }
            Msg::MigrateOffer { lock, epoch, req } => {
                w.put_u8(T_MIGRATE_OFFER);
                lock.encode(w);
                w.put_u64(*epoch);
                req.encode(w);
            }
            Msg::MigrateAccept {
                lock,
                epoch,
                site,
                req,
            } => {
                w.put_u8(T_MIGRATE_ACCEPT);
                lock.encode(w);
                w.put_u64(*epoch);
                site.encode(w);
                req.encode(w);
            }
            Msg::MigrateCommit {
                lock,
                epoch,
                version,
                last_owner,
                members,
                up_to_date,
                site_versions,
                replicas,
                req,
            } => {
                w.put_u8(T_MIGRATE_COMMIT);
                lock.encode(w);
                w.put_u64(*epoch);
                version.encode(w);
                w.put_bool(last_owner.is_some());
                if let Some(owner) = last_owner {
                    owner.encode(w);
                }
                w.put_u32(members.len() as u32);
                for s in members {
                    s.encode(w);
                }
                w.put_u32(up_to_date.len() as u32);
                for s in up_to_date {
                    s.encode(w);
                }
                w.put_u32(site_versions.len() as u32);
                for (site, version) in site_versions {
                    site.encode(w);
                    version.encode(w);
                }
                w.put_u32(replicas.len() as u32);
                for r in replicas {
                    r.encode(w);
                }
                req.encode(w);
            }
            Msg::StaleHome { lock, home, epoch } => {
                w.put_u8(T_STALE_HOME);
                lock.encode(w);
                home.encode(w);
                w.put_u64(*epoch);
            }
            Msg::HomeUpdate { lock, home, epoch } => {
                w.put_u8(T_HOME_UPDATE);
                lock.encode(w);
                home.encode(w);
                w.put_u64(*epoch);
            }
            Msg::Ping { req, payload } => {
                w.put_u8(T_PING);
                req.encode(w);
                w.put_bytes(payload);
            }
            Msg::Pong { req, payload } => {
                w.put_u8(T_PONG);
                req.encode(w);
                w.put_bytes(payload);
            }
        }
    }

    fn encode_updates(
        w: &mut ByteWriter,
        lock: LockId,
        version: Version,
        updates: &[ReplicaUpdate],
        req: RequestId,
    ) {
        lock.encode(w);
        version.encode(w);
        w.put_u32(updates.len() as u32);
        for u in updates {
            u.encode(w);
        }
        req.encode(w);
    }

    fn encode_deltas(
        w: &mut ByteWriter,
        lock: LockId,
        base_version: Version,
        version: Version,
        deltas: &[ReplicaDeltaUpdate],
        req: RequestId,
    ) {
        lock.encode(w);
        base_version.encode(w);
        version.encode(w);
        w.put_u32(deltas.len() as u32);
        for d in deltas {
            d.encode(w);
        }
        req.encode(w);
    }

    #[allow(clippy::type_complexity)]
    fn decode_deltas(
        r: &mut ByteReader<'_>,
    ) -> Result<(LockId, Version, Version, Vec<ReplicaDeltaUpdate>, RequestId), WireError> {
        let lock = LockId::decode(r)?;
        let base_version = Version::decode(r)?;
        let version = Version::decode(r)?;
        let n = r.get_u32()? as usize;
        // Each delta update is at least 9 bytes (replica id + delta variant
        // tag + segment count); reject counts the input cannot satisfy.
        if n.saturating_mul(9) > r.remaining() {
            return Err(WireError::LengthOverrun {
                declared: n * 9,
                remaining: r.remaining(),
            });
        }
        let mut deltas = Vec::with_capacity(n);
        for _ in 0..n {
            deltas.push(ReplicaDeltaUpdate::decode(r)?);
        }
        let req = RequestId::decode(r)?;
        Ok((lock, base_version, version, deltas, req))
    }

    /// Decodes a `u32`-prefixed list of site ids, rejecting counts the
    /// input cannot possibly satisfy (each id is exactly 4 bytes).
    fn decode_sites(r: &mut ByteReader<'_>) -> Result<Vec<SiteId>, WireError> {
        let n = r.get_u32()? as usize;
        if n.saturating_mul(4) > r.remaining() {
            return Err(WireError::LengthOverrun {
                declared: n * 4,
                remaining: r.remaining(),
            });
        }
        let mut sites = Vec::with_capacity(n);
        for _ in 0..n {
            sites.push(SiteId::decode(r)?);
        }
        Ok(sites)
    }

    fn decode_updates(
        r: &mut ByteReader<'_>,
    ) -> Result<(LockId, Version, Vec<ReplicaUpdate>, RequestId), WireError> {
        let lock = LockId::decode(r)?;
        let version = Version::decode(r)?;
        let n = r.get_u32()? as usize;
        // Each update is at least 5 bytes (replica id + payload tag);
        // reject counts the input cannot possibly satisfy.
        if n.saturating_mul(5) > r.remaining() {
            return Err(WireError::LengthOverrun {
                declared: n * 5,
                remaining: r.remaining(),
            });
        }
        let mut updates = Vec::with_capacity(n);
        for _ in 0..n {
            updates.push(ReplicaUpdate::decode(r)?);
        }
        let req = RequestId::decode(r)?;
        Ok((lock, version, updates, req))
    }

    /// Decodes a message from a full datagram, requiring all input consumed.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on any malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Msg, WireError> {
        let mut r = ByteReader::new(bytes);
        let msg = Msg::decode_from(&mut r)?;
        r.finish()?;
        Ok(msg)
    }

    /// Decodes a message from a reader, leaving any trailing bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on any malformed input.
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Msg, WireError> {
        let tag = r.get_u8()?;
        match tag {
            T_ACQUIRE => Ok(Msg::AcquireLock {
                lock: LockId::decode(r)?,
                site: SiteId::decode(r)?,
                thread: ThreadId::decode(r)?,
                lease_hint_ms: r.get_u32()?,
                mode: LockMode::decode(r)?,
            }),
            T_GRANT => Ok(Msg::Grant {
                lock: LockId::decode(r)?,
                version: Version::decode(r)?,
                flag: VersionFlag::decode(r)?,
            }),
            T_RELEASE => {
                let lock = LockId::decode(r)?;
                let site = SiteId::decode(r)?;
                let new_version = Version::decode(r)?;
                let n = r.get_u32()? as usize;
                if n.saturating_mul(4) > r.remaining() {
                    return Err(WireError::LengthOverrun {
                        declared: n * 4,
                        remaining: r.remaining(),
                    });
                }
                let mut disseminated_to = Vec::with_capacity(n);
                for _ in 0..n {
                    disseminated_to.push(SiteId::decode(r)?);
                }
                Ok(Msg::ReleaseLock {
                    lock,
                    site,
                    new_version,
                    disseminated_to,
                })
            }
            T_REGISTER => Ok(Msg::RegisterReplica {
                lock: LockId::decode(r)?,
                replica: ReplicaId::decode(r)?,
                site: SiteId::decode(r)?,
                name: r.get_string()?,
            }),
            T_TRANSFER => Ok(Msg::TransferReplica {
                lock: LockId::decode(r)?,
                dest: SiteId::decode(r)?,
                version: Version::decode(r)?,
                req: RequestId::decode(r)?,
            }),
            T_REPLICA_DATA => {
                let (lock, version, updates, req) = Self::decode_updates(r)?;
                Ok(Msg::ReplicaData {
                    lock,
                    version,
                    updates,
                    req,
                })
            }
            T_PUSH => {
                let (lock, version, updates, req) = Self::decode_updates(r)?;
                Ok(Msg::PushUpdate {
                    lock,
                    version,
                    updates,
                    req,
                })
            }
            T_PUSH_ACK => Ok(Msg::PushAck {
                lock: LockId::decode(r)?,
                version: Version::decode(r)?,
                site: SiteId::decode(r)?,
                req: RequestId::decode(r)?,
            }),
            T_REPLICA_DELTA => {
                let (lock, base_version, version, deltas, req) = Self::decode_deltas(r)?;
                Ok(Msg::ReplicaDelta {
                    lock,
                    base_version,
                    version,
                    deltas,
                    req,
                })
            }
            T_PUSH_DELTA => {
                let (lock, base_version, version, deltas, req) = Self::decode_deltas(r)?;
                Ok(Msg::PushDelta {
                    lock,
                    base_version,
                    version,
                    deltas,
                    req,
                })
            }
            T_DELTA_NACK => Ok(Msg::DeltaNack {
                lock: LockId::decode(r)?,
                site: SiteId::decode(r)?,
                have: Version::decode(r)?,
                req: RequestId::decode(r)?,
            }),
            T_SITE_RECOVERED => {
                let site = SiteId::decode(r)?;
                let n = r.get_u32()? as usize;
                // Each pair is exactly 12 bytes (u32 lock + u64 version);
                // reject counts the input cannot possibly satisfy.
                if n.saturating_mul(12) > r.remaining() {
                    return Err(WireError::LengthOverrun {
                        declared: n * 12,
                        remaining: r.remaining(),
                    });
                }
                let mut versions = Vec::with_capacity(n);
                for _ in 0..n {
                    versions.push((LockId::decode(r)?, Version::decode(r)?));
                }
                Ok(Msg::SiteRecovered { site, versions })
            }
            T_POLL => Ok(Msg::PollVersion {
                lock: LockId::decode(r)?,
                req: RequestId::decode(r)?,
            }),
            T_POLL_RESP => Ok(Msg::PollResponse {
                lock: LockId::decode(r)?,
                version: Version::decode(r)?,
                site: SiteId::decode(r)?,
                req: RequestId::decode(r)?,
            }),
            T_HEARTBEAT => Ok(Msg::Heartbeat {
                lock: LockId::decode(r)?,
                req: RequestId::decode(r)?,
            }),
            T_HEARTBEAT_ACK => Ok(Msg::HeartbeatAck {
                site: SiteId::decode(r)?,
                req: RequestId::decode(r)?,
                holding: r.get_bool()?,
            }),
            T_REVOKED => Ok(Msg::LockRevoked {
                lock: LockId::decode(r)?,
                version: Version::decode(r)?,
            }),
            T_SPAWN => {
                let task_class = r.get_string()?;
                let params = r.get_bytes()?.to_vec();
                let n = r.get_u32()? as usize;
                if n.saturating_mul(4) > r.remaining() {
                    return Err(WireError::LengthOverrun {
                        declared: n * 4,
                        remaining: r.remaining(),
                    });
                }
                let mut pushed_classes = Vec::with_capacity(n);
                for _ in 0..n {
                    pushed_classes.push(r.get_string()?);
                }
                let req = RequestId::decode(r)?;
                Ok(Msg::SpawnRequest {
                    task_class,
                    params,
                    pushed_classes,
                    req,
                })
            }
            T_SPAWN_RESULT => Ok(Msg::SpawnResult {
                req: RequestId::decode(r)?,
                result: r.get_bytes()?.to_vec(),
                ok: r.get_bool()?,
            }),
            T_CODE_REQ => Ok(Msg::CodeRequest {
                class: r.get_string()?,
                req: RequestId::decode(r)?,
            }),
            T_CODE_RESP => Ok(Msg::CodeResponse {
                class: r.get_string()?,
                code: r.get_bytes()?.to_vec(),
                req: RequestId::decode(r)?,
            }),
            T_SYNC_MOVED => Ok(Msg::SyncMoved {
                new_home: SiteId::decode(r)?,
            }),
            T_EXPECT_RELAY => Ok(Msg::ExpectRelay {
                lock: LockId::decode(r)?,
                dest: SiteId::decode(r)?,
                req: RequestId::decode(r)?,
            }),
            T_PRINT => Ok(Msg::RemotePrint {
                site: SiteId::decode(r)?,
                text: r.get_string()?,
            }),
            T_CACHE_UPDATE => Ok(Msg::CacheUpdate {
                replica: ReplicaId::decode(r)?,
                counter: r.get_u64()?,
                origin: SiteId::decode(r)?,
                payload: ReplicaPayload::decode(r)?,
            }),
            T_MIGRATE_OFFER => Ok(Msg::MigrateOffer {
                lock: LockId::decode(r)?,
                epoch: r.get_u64()?,
                req: RequestId::decode(r)?,
            }),
            T_MIGRATE_ACCEPT => Ok(Msg::MigrateAccept {
                lock: LockId::decode(r)?,
                epoch: r.get_u64()?,
                site: SiteId::decode(r)?,
                req: RequestId::decode(r)?,
            }),
            T_MIGRATE_COMMIT => {
                let lock = LockId::decode(r)?;
                let epoch = r.get_u64()?;
                let version = Version::decode(r)?;
                let last_owner = if r.get_bool()? {
                    Some(SiteId::decode(r)?)
                } else {
                    None
                };
                let members = Self::decode_sites(r)?;
                let up_to_date = Self::decode_sites(r)?;
                let n = r.get_u32()? as usize;
                // Each pair is exactly 12 bytes (u32 site + u64 version).
                if n.saturating_mul(12) > r.remaining() {
                    return Err(WireError::LengthOverrun {
                        declared: n * 12,
                        remaining: r.remaining(),
                    });
                }
                let mut site_versions = Vec::with_capacity(n);
                for _ in 0..n {
                    site_versions.push((SiteId::decode(r)?, Version::decode(r)?));
                }
                let n = r.get_u32()? as usize;
                if n.saturating_mul(4) > r.remaining() {
                    return Err(WireError::LengthOverrun {
                        declared: n * 4,
                        remaining: r.remaining(),
                    });
                }
                let mut replicas = Vec::with_capacity(n);
                for _ in 0..n {
                    replicas.push(ReplicaId::decode(r)?);
                }
                let req = RequestId::decode(r)?;
                Ok(Msg::MigrateCommit {
                    lock,
                    epoch,
                    version,
                    last_owner,
                    members,
                    up_to_date,
                    site_versions,
                    replicas,
                    req,
                })
            }
            T_STALE_HOME => Ok(Msg::StaleHome {
                lock: LockId::decode(r)?,
                home: SiteId::decode(r)?,
                epoch: r.get_u64()?,
            }),
            T_HOME_UPDATE => Ok(Msg::HomeUpdate {
                lock: LockId::decode(r)?,
                home: SiteId::decode(r)?,
                epoch: r.get_u64()?,
            }),
            T_PING => Ok(Msg::Ping {
                req: RequestId::decode(r)?,
                payload: r.get_bytes()?.to_vec(),
            }),
            T_PONG => Ok(Msg::Pong {
                req: RequestId::decode(r)?,
                payload: r.get_bytes()?.to_vec(),
            }),
            tag => Err(WireError::BadTag { what: "Msg", tag }),
        }
    }

    /// Whether this message carries bulk replica data (and therefore goes
    /// over the bulk path in the hybrid protocol).
    pub fn is_bulk(&self) -> bool {
        matches!(
            self,
            Msg::ReplicaData { .. }
                | Msg::PushUpdate { .. }
                | Msg::CacheUpdate { .. }
                | Msg::ReplicaDelta { .. }
                | Msg::PushDelta { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Msg> {
        vec![
            Msg::AcquireLock {
                lock: LockId(1),
                site: SiteId(2),
                thread: ThreadId(3),
                lease_hint_ms: 5000,
                mode: LockMode::Exclusive,
            },
            Msg::AcquireLock {
                lock: LockId(1),
                site: SiteId(2),
                thread: ThreadId(4),
                lease_hint_ms: 0,
                mode: LockMode::Shared,
            },
            Msg::Grant {
                lock: LockId(1),
                version: Version(9),
                flag: VersionFlag::VersionOk,
            },
            Msg::Grant {
                lock: LockId(1),
                version: Version(9),
                flag: VersionFlag::NeedNewVersion,
            },
            Msg::ReleaseLock {
                lock: LockId(1),
                site: SiteId(2),
                new_version: Version(10),
                disseminated_to: vec![SiteId(3), SiteId(4)],
            },
            Msg::RegisterReplica {
                lock: LockId(1),
                replica: ReplicaId(5),
                site: SiteId(2),
                name: "flatwareIndex".into(),
            },
            Msg::TransferReplica {
                lock: LockId(1),
                dest: SiteId(4),
                version: Version(10),
                req: RequestId(42),
            },
            Msg::ReplicaData {
                lock: LockId(1),
                version: Version(10),
                updates: vec![
                    ReplicaUpdate::new(ReplicaId(5), ReplicaPayload::I32s(vec![1, 2, 3])),
                    ReplicaUpdate::new(ReplicaId(6), ReplicaPayload::Utf8("Good Choice".into())),
                ],
                req: RequestId(42),
            },
            Msg::PushUpdate {
                lock: LockId(1),
                version: Version(11),
                updates: vec![ReplicaUpdate::new(
                    ReplicaId(5),
                    ReplicaPayload::Bytes(vec![0; 64]),
                )],
                req: RequestId(7),
            },
            Msg::ReplicaDelta {
                lock: LockId(1),
                base_version: Version(10),
                version: Version(11),
                deltas: vec![ReplicaDeltaUpdate {
                    replica: ReplicaId(5),
                    delta: PayloadDelta::diff(
                        &ReplicaPayload::I32s(vec![1, 2, 3]),
                        &ReplicaPayload::I32s(vec![1, 9, 3]),
                    )
                    .unwrap(),
                }],
                req: RequestId(42),
            },
            Msg::PushDelta {
                lock: LockId(1),
                base_version: Version(11),
                version: Version(12),
                deltas: vec![ReplicaDeltaUpdate {
                    replica: ReplicaId(5),
                    delta: PayloadDelta::diff(
                        &ReplicaPayload::Bytes(vec![0; 64]),
                        &ReplicaPayload::Bytes(vec![1; 64]),
                    )
                    .unwrap(),
                }],
                req: RequestId(7),
            },
            Msg::DeltaNack {
                lock: LockId(1),
                site: SiteId(3),
                have: Version(9),
                req: RequestId(7),
            },
            Msg::SiteRecovered {
                site: SiteId(3),
                versions: vec![(LockId(1), Version(9)), (LockId(2), Version(4))],
            },
            Msg::PushAck {
                lock: LockId(1),
                version: Version(11),
                site: SiteId(3),
                req: RequestId(7),
            },
            Msg::PollVersion {
                lock: LockId(1),
                req: RequestId(8),
            },
            Msg::PollResponse {
                lock: LockId(1),
                version: Version(11),
                site: SiteId(3),
                req: RequestId(8),
            },
            Msg::Heartbeat {
                lock: LockId(1),
                req: RequestId(9),
            },
            Msg::HeartbeatAck {
                site: SiteId(3),
                req: RequestId(9),
                holding: true,
            },
            Msg::LockRevoked {
                lock: LockId(1),
                version: Version(11),
            },
            Msg::SpawnRequest {
                task_class: "Myhello".into(),
                params: vec![1, 2, 3],
                pushed_classes: vec!["Myhello".into(), "Helper".into()],
                req: RequestId(10),
            },
            Msg::SpawnResult {
                req: RequestId(10),
                result: vec![4, 5],
                ok: true,
            },
            Msg::CodeRequest {
                class: "Helper2".into(),
                req: RequestId(11),
            },
            Msg::CodeResponse {
                class: "Helper2".into(),
                code: vec![0xCA, 0xFE],
                req: RequestId(11),
            },
            Msg::SyncMoved {
                new_home: SiteId(3),
            },
            Msg::ExpectRelay {
                lock: LockId(1),
                dest: SiteId(4),
                req: RequestId(77),
            },
            Msg::RemotePrint {
                site: SiteId(2),
                text: "Returning as a return value 6.0".into(),
            },
            Msg::CacheUpdate {
                replica: ReplicaId(9),
                counter: 4,
                origin: SiteId(2),
                payload: ReplicaPayload::Bytes(vec![1, 2, 3]),
            },
            Msg::MigrateOffer {
                lock: LockId(1),
                epoch: 3,
                req: RequestId(13),
            },
            Msg::MigrateAccept {
                lock: LockId(1),
                epoch: 3,
                site: SiteId(4),
                req: RequestId(13),
            },
            Msg::MigrateCommit {
                lock: LockId(1),
                epoch: 3,
                version: Version(11),
                last_owner: Some(SiteId(2)),
                members: vec![SiteId(2), SiteId(3), SiteId(4)],
                up_to_date: vec![SiteId(2)],
                site_versions: vec![(SiteId(2), Version(11)), (SiteId(3), Version(9))],
                replicas: vec![ReplicaId(5), ReplicaId(6)],
                req: RequestId(13),
            },
            Msg::MigrateCommit {
                lock: LockId(2),
                epoch: 1,
                version: Version(0),
                last_owner: None,
                members: vec![],
                up_to_date: vec![],
                site_versions: vec![],
                replicas: vec![],
                req: RequestId(14),
            },
            Msg::StaleHome {
                lock: LockId(1),
                home: SiteId(4),
                epoch: 3,
            },
            Msg::HomeUpdate {
                lock: LockId(1),
                home: SiteId(4),
                epoch: 3,
            },
            Msg::Ping {
                req: RequestId(12),
                payload: vec![0; 256],
            },
            Msg::Pong {
                req: RequestId(12),
                payload: vec![0; 256],
            },
        ]
    }

    #[test]
    fn every_variant_roundtrips() {
        for msg in sample_messages() {
            let bytes = msg.encode();
            let decoded = Msg::decode(&bytes).unwrap_or_else(|e| panic!("{msg:?}: {e}"));
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(matches!(
            Msg::decode(&[0xEE]),
            Err(WireError::BadTag { what: "Msg", .. })
        ));
    }

    #[test]
    fn truncated_messages_rejected() {
        for msg in sample_messages() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                // Every strict prefix must fail to decode (no variant here
                // is a prefix of another's encoding).
                assert!(
                    Msg::decode(&bytes[..cut]).is_err(),
                    "prefix of len {cut} of {msg:?} decoded"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = Msg::Heartbeat {
            lock: LockId(1),
            req: RequestId(1),
        }
        .encode();
        bytes.push(0xFF);
        assert!(matches!(
            Msg::decode(&bytes),
            Err(WireError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn hostile_update_count_rejected() {
        // Hand-craft a ReplicaData header claiming 2^31 updates.
        let mut w = ByteWriter::new();
        w.put_u8(6); // T_REPLICA_DATA
        LockId(1).encode(&mut w);
        Version(1).encode(&mut w);
        w.put_u32(1 << 31);
        let bytes = w.into_bytes();
        assert!(matches!(
            Msg::decode(&bytes),
            Err(WireError::LengthOverrun { .. })
        ));
    }

    #[test]
    fn is_bulk_classification() {
        assert!(Msg::ReplicaData {
            lock: LockId(1),
            version: Version(1),
            updates: vec![],
            req: RequestId(0),
        }
        .is_bulk());
        assert!(Msg::PushUpdate {
            lock: LockId(1),
            version: Version(1),
            updates: vec![],
            req: RequestId(0),
        }
        .is_bulk());
        assert!(Msg::PushDelta {
            lock: LockId(1),
            base_version: Version(1),
            version: Version(2),
            deltas: vec![],
            req: RequestId(0),
        }
        .is_bulk());
        assert!(!Msg::DeltaNack {
            lock: LockId(1),
            site: SiteId(2),
            have: Version(1),
            req: RequestId(0),
        }
        .is_bulk());
        assert!(!Msg::Heartbeat {
            lock: LockId(1),
            req: RequestId(1)
        }
        .is_bulk());
        assert!(!Msg::Grant {
            lock: LockId(1),
            version: Version(1),
            flag: VersionFlag::VersionOk
        }
        .is_bulk());
    }

    #[test]
    fn small_control_messages_are_compact() {
        // MochaNet's efficiency claim rests on small control messages; keep
        // the encodings tight.
        let acquire = Msg::AcquireLock {
            lock: LockId(1),
            site: SiteId(2),
            thread: ThreadId(3),
            lease_hint_ms: 0,
            mode: LockMode::Exclusive,
        }
        .encode();
        assert!(
            acquire.len() <= 32,
            "AcquireLock is {} bytes",
            acquire.len()
        );
        let grant = Msg::Grant {
            lock: LockId(1),
            version: Version(1),
            flag: VersionFlag::VersionOk,
        }
        .encode();
        assert!(grant.len() <= 32, "Grant is {} bytes", grant.len());
        let nack = Msg::DeltaNack {
            lock: LockId(1),
            site: SiteId(2),
            have: Version(3),
            req: RequestId(4),
        }
        .encode();
        assert!(nack.len() <= 32, "DeltaNack is {} bytes", nack.len());
        let stale = Msg::StaleHome {
            lock: LockId(1),
            home: SiteId(2),
            epoch: 3,
        }
        .encode();
        assert!(stale.len() <= 32, "StaleHome is {} bytes", stale.len());
    }

    #[test]
    fn hostile_delta_count_rejected() {
        // Hand-craft a PushDelta header claiming 2^31 delta updates.
        let mut w = ByteWriter::new();
        w.put_u8(25); // T_PUSH_DELTA
        LockId(1).encode(&mut w);
        Version(1).encode(&mut w);
        Version(2).encode(&mut w);
        w.put_u32(1 << 31);
        let bytes = w.into_bytes();
        assert!(matches!(
            Msg::decode(&bytes),
            Err(WireError::LengthOverrun { .. })
        ));
    }
}
