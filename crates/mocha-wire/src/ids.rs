//! Identifier newtypes shared across the whole system.
//!
//! Each identifier is a thin wrapper over an integer with `Display`/`Debug`
//! and wire encode/decode helpers. Keeping them distinct types prevents the
//! classic bug of passing a lock id where a replica id is expected.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::io::{ByteReader, ByteWriter, WireError};

macro_rules! id_u32 {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Constructs from the raw integer.
            pub const fn from_raw(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw integer.
            pub const fn as_raw(self) -> u32 {
                self.0
            }

            /// Encodes onto a wire writer.
            pub fn encode(self, w: &mut ByteWriter) {
                w.put_u32(self.0);
            }

            /// Decodes from a wire reader.
            ///
            /// # Errors
            ///
            /// Propagates reader errors on truncated input.
            pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
                Ok(Self(r.get_u32()?))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }
    };
}

id_u32!(
    /// A participating site (one Mocha Server / daemon-thread pair). Maps
    /// 1:1 onto the simulator's `NodeId` and onto one OS thread group in
    /// the thread runtime.
    SiteId,
    "site"
);

id_u32!(
    /// A `ReplicaLock` instance, named by the application (the paper uses
    /// small integers: `new ReplicaLock(1, mocha)`).
    LockId,
    "lock"
);

id_u32!(
    /// A shared `Replica` object. The application-facing API names replicas
    /// by string (e.g. `"flatwareIndex"`); the runtime interns the string to
    /// a `ReplicaId` at registration.
    ReplicaId,
    "replica"
);

id_u32!(
    /// An application thread within a site.
    ThreadId,
    "thread"
);

/// Monotonic version number of a lock's associated replica set.
///
/// Incremented by the synchronization thread at every release; used to
/// decide whether a grantee needs a fresh copy, and during failure recovery
/// to identify the most recent surviving value.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Version(pub u64);

impl Version {
    /// The version before any write.
    pub const INITIAL: Version = Version(0);

    /// The next version.
    #[must_use]
    pub fn next(self) -> Version {
        Version(self.0 + 1)
    }

    /// Encodes onto a wire writer.
    pub fn encode(self, w: &mut ByteWriter) {
        w.put_u64(self.0);
    }

    /// Decodes from a wire reader.
    ///
    /// # Errors
    ///
    /// Propagates reader errors on truncated input.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(Version(r.get_u64()?))
    }
}

impl fmt::Debug for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Correlates a request with its response across the network (e.g. a
/// version poll during failure recovery).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct RequestId(pub u64);

impl RequestId {
    /// Constructs from the raw integer.
    pub const fn from_raw(raw: u64) -> Self {
        RequestId(raw)
    }

    /// The raw integer.
    pub const fn as_raw(self) -> u64 {
        self.0
    }

    /// The next request id.
    #[must_use]
    pub fn next(self) -> RequestId {
        RequestId(self.0 + 1)
    }

    /// Encodes onto a wire writer.
    pub fn encode(self, w: &mut ByteWriter) {
        w.put_u64(self.0);
    }

    /// Decodes from a wire reader.
    ///
    /// # Errors
    ///
    /// Propagates reader errors on truncated input.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(RequestId(r.get_u64()?))
    }
}

impl fmt::Debug for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_on_the_wire() {
        let mut w = ByteWriter::new();
        SiteId(3).encode(&mut w);
        LockId(9).encode(&mut w);
        ReplicaId(11).encode(&mut w);
        ThreadId(2).encode(&mut w);
        Version(77).encode(&mut w);
        RequestId(123).encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(SiteId::decode(&mut r).unwrap(), SiteId(3));
        assert_eq!(LockId::decode(&mut r).unwrap(), LockId(9));
        assert_eq!(ReplicaId::decode(&mut r).unwrap(), ReplicaId(11));
        assert_eq!(ThreadId::decode(&mut r).unwrap(), ThreadId(2));
        assert_eq!(Version::decode(&mut r).unwrap(), Version(77));
        assert_eq!(RequestId::decode(&mut r).unwrap(), RequestId(123));
        r.finish().unwrap();
    }

    #[test]
    fn version_next_is_monotonic() {
        let v = Version::INITIAL;
        assert!(v.next() > v);
        assert_eq!(v.next().next(), Version(2));
    }

    #[test]
    fn display_formats_are_prefixed() {
        assert_eq!(SiteId(4).to_string(), "site4");
        assert_eq!(LockId(1).to_string(), "lock1");
        assert_eq!(Version(9).to_string(), "v9");
        assert_eq!(RequestId(2).to_string(), "req2");
        assert_eq!(format!("{:?}", ReplicaId(5)), "replica5");
        assert_eq!(format!("{:?}", ThreadId(6)), "thread6");
    }

    #[test]
    fn from_u32_conversion() {
        let s: SiteId = 7u32.into();
        assert_eq!(s.as_raw(), 7);
        assert_eq!(SiteId::from_raw(7), s);
    }
}
