//! # mocha-wire — wire formats and marshaling for the Mocha reproduction
//!
//! Everything that crosses the (simulated or real) network in this
//! reproduction is a real byte sequence produced by this crate:
//!
//! * [`io`] — minimal binary reader/writer primitives with explicit error
//!   handling (no panics on malformed input).
//! * [`ids`] — newtype identifiers shared by every layer (sites, locks,
//!   replicas, versions, requests).
//! * [`payload`] — [`payload::ReplicaPayload`], the typed
//!   data a Mocha `Replica` carries: homogeneous arrays of primitives (the
//!   paper's base `Replica`) or a serialized "complex object" (the paper's
//!   MochaGen-generated subclasses).
//! * [`message`] — the Mocha control protocol: lock acquire/release/grant,
//!   replica transfer directives, replica data, failure-handling polls and
//!   heartbeats, and the remote-evaluation (spawn) messages.
//! * [`codec`] — marshaling of payloads into byte arrays *with an abstract
//!   cost report*. [`codec::ByteAtATime`] models JDK 1.1 serialization
//!   (single-byte writes into dynamically grown arrays — the cause of
//!   Figure 8's expensive marshaling); [`codec::Bulk`] is the "custom
//!   marshaling library" the paper describes as future work.
//!
//! The crate is deliberately free of any networking or simulation
//! dependency so that every other layer can share these types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod delta;
pub mod ids;
pub mod io;
pub mod message;
pub mod payload;
pub mod serbin;

pub use codec::{Bulk, ByteAtATime, MarshalCost, Marshaller};
pub use delta::{PayloadDelta, Seg};
pub use ids::{LockId, ReplicaId, RequestId, SiteId, ThreadId, Version};
pub use message::Msg;
pub use payload::ReplicaPayload;
