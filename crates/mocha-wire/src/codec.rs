//! Marshaling codecs with explicit cost accounting.
//!
//! §5 of the paper shows (Figure 8) that marshaling a replica into a byte
//! array "can be somewhat expensive for large replicas" because JDK 1.1's
//! generic constructs "utilize dynamic arrays and marshal a single byte at a
//! time". The paper's future work is "a custom marshaling library that is
//! more efficient".
//!
//! Both are implemented here. The two codecs produce **identical bytes**
//! (the wire format of [`ReplicaUpdate`] lists); what differs is their
//! [`MarshalCost`] — the abstract operation count that the simulator prices
//! into virtual CPU time, and that Figure 8's reproduction plots:
//!
//! * [`ByteAtATime`] — models JDK 1.1 serialization: a fixed per-object
//!   reflection overhead plus ~2 operations per data byte (one single-byte
//!   stream write plus amortised dynamic-array growth copies).
//! * [`Bulk`] — the optimized library: small per-object overhead plus one
//!   operation per 8 data bytes (word-sized copies).

use crate::io::{ByteReader, ByteWriter, WireError};
use crate::message::ReplicaUpdate;

/// Abstract cost of a marshal or unmarshal operation, in marshal-ops.
///
/// Priced into time by `mocha_sim::CpuProfile::per_marshal_op`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MarshalCost {
    /// Abstract operations performed.
    pub ops: u64,
}

impl MarshalCost {
    /// Zero cost.
    pub const ZERO: MarshalCost = MarshalCost { ops: 0 };

    /// Sums two costs.
    #[must_use]
    pub fn plus(self, other: MarshalCost) -> MarshalCost {
        MarshalCost {
            ops: self.ops.saturating_add(other.ops),
        }
    }
}

/// A marshaling strategy: how replica values become byte arrays, and what
/// it costs.
///
/// This trait is sealed in spirit — the two implementations correspond to
/// the paper's present and future marshaling libraries — but is left open
/// so applications can model hand-optimized serialization for specific
/// objects (the paper's "more experienced Java users are permitted to
/// replace the code that the MochaGen tool generates").
pub trait Marshaller: Send + Sync {
    /// Short name for reports ("jdk11", "bulk").
    fn name(&self) -> &'static str;

    /// Cost of marshaling `updates` without producing bytes (for cost
    /// estimation and benches).
    fn marshal_cost(&self, updates: &[ReplicaUpdate]) -> MarshalCost;

    /// Cost of unmarshaling a byte array of length `len` containing
    /// `n_payloads` values.
    fn unmarshal_cost(&self, len: usize, n_payloads: usize) -> MarshalCost;

    /// Marshals `updates` into bytes, reporting the cost.
    fn marshal(&self, updates: &[ReplicaUpdate]) -> (Vec<u8>, MarshalCost) {
        let mut w = ByteWriter::new();
        encode_updates(&mut w, updates);
        let cost = self.marshal_cost(updates);
        (w.into_bytes(), cost)
    }

    /// Unmarshals bytes produced by [`marshal`](Self::marshal).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input.
    fn unmarshal(&self, bytes: &[u8]) -> Result<(Vec<ReplicaUpdate>, MarshalCost), WireError> {
        let updates = decode_updates(bytes)?;
        let cost = self.unmarshal_cost(bytes.len(), updates.len());
        Ok((updates, cost))
    }
}

/// Encodes an update list (shared wire format for both codecs).
pub fn encode_updates(w: &mut ByteWriter, updates: &[ReplicaUpdate]) {
    w.put_u32(updates.len() as u32);
    for u in updates {
        u.replica.encode(w);
        u.payload.encode(w);
    }
}

/// Decodes an update list.
///
/// # Errors
///
/// Returns a [`WireError`] on malformed input.
pub fn decode_updates(bytes: &[u8]) -> Result<Vec<ReplicaUpdate>, WireError> {
    let mut r = ByteReader::new(bytes);
    let n = r.get_u32()? as usize;
    if n.saturating_mul(5) > r.remaining() {
        return Err(WireError::LengthOverrun {
            declared: n * 5,
            remaining: r.remaining(),
        });
    }
    let mut updates = Vec::with_capacity(n);
    for _ in 0..n {
        let replica = crate::ids::ReplicaId::decode(&mut r)?;
        let payload = crate::payload::ReplicaPayload::decode(&mut r)?;
        updates.push(ReplicaUpdate::new(replica, payload));
    }
    r.finish()?;
    Ok(updates)
}

fn total_data_bytes(updates: &[ReplicaUpdate]) -> u64 {
    updates.iter().map(|u| u.payload.data_bytes() as u64).sum()
}

/// JDK 1.1-style generic serialization: dynamic arrays, one byte at a time.
///
/// Cost model: `PER_OBJECT_OPS` of reflection/stream setup per payload, plus
/// `OPS_PER_BYTE` per data byte (a single-byte write call plus the amortised
/// copy from dynamic array doubling).
#[derive(Debug, Clone, Copy, Default)]
pub struct ByteAtATime;

impl ByteAtATime {
    /// Fixed reflection/setup operations per payload object.
    pub const PER_OBJECT_OPS: u64 = 1_000;
    /// Operations per data byte.
    pub const OPS_PER_BYTE: u64 = 2;
}

impl Marshaller for ByteAtATime {
    fn name(&self) -> &'static str {
        "jdk11"
    }

    fn marshal_cost(&self, updates: &[ReplicaUpdate]) -> MarshalCost {
        let bytes = total_data_bytes(updates);
        MarshalCost {
            ops: Self::PER_OBJECT_OPS * updates.len() as u64 + Self::OPS_PER_BYTE * bytes,
        }
    }

    fn unmarshal_cost(&self, len: usize, n_payloads: usize) -> MarshalCost {
        MarshalCost {
            ops: Self::PER_OBJECT_OPS * n_payloads as u64 + Self::OPS_PER_BYTE * len as u64,
        }
    }
}

/// The optimized "custom marshaling library" (the paper's future work):
/// word-at-a-time block copies with small per-object overhead.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bulk;

impl Bulk {
    /// Fixed setup operations per payload object.
    pub const PER_OBJECT_OPS: u64 = 64;
    /// Data bytes moved per operation (word-sized copies).
    pub const BYTES_PER_OP: u64 = 8;
}

impl Marshaller for Bulk {
    fn name(&self) -> &'static str {
        "bulk"
    }

    fn marshal_cost(&self, updates: &[ReplicaUpdate]) -> MarshalCost {
        let bytes = total_data_bytes(updates);
        MarshalCost {
            ops: Self::PER_OBJECT_OPS * updates.len() as u64 + bytes / Self::BYTES_PER_OP,
        }
    }

    fn unmarshal_cost(&self, len: usize, n_payloads: usize) -> MarshalCost {
        MarshalCost {
            ops: Self::PER_OBJECT_OPS * n_payloads as u64 + len as u64 / Self::BYTES_PER_OP,
        }
    }
}

/// Which codec a runtime is configured with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CodecKind {
    /// [`ByteAtATime`]: the paper's measured configuration.
    #[default]
    ByteAtATime,
    /// [`Bulk`]: the paper's future-work optimized library.
    Bulk,
}

impl CodecKind {
    /// Returns the codec implementation.
    pub fn marshaller(self) -> &'static dyn Marshaller {
        match self {
            CodecKind::ByteAtATime => &ByteAtATime,
            CodecKind::Bulk => &Bulk,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ReplicaId;
    use crate::payload::ReplicaPayload;

    fn updates(sizes: &[usize]) -> Vec<ReplicaUpdate> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                ReplicaUpdate::new(ReplicaId(i as u32), ReplicaPayload::Bytes(vec![i as u8; n]))
            })
            .collect()
    }

    #[test]
    fn both_codecs_produce_identical_bytes() {
        let ups = updates(&[100, 200]);
        let (a, _) = ByteAtATime.marshal(&ups);
        let (b, _) = Bulk.marshal(&ups);
        assert_eq!(a, b);
    }

    #[test]
    fn marshal_unmarshal_roundtrips() {
        let ups = updates(&[0, 1, 1024]);
        for codec in [CodecKind::ByteAtATime, CodecKind::Bulk] {
            let m = codec.marshaller();
            let (bytes, mcost) = m.marshal(&ups);
            let (back, ucost) = m.unmarshal(&bytes).unwrap();
            assert_eq!(back, ups);
            assert!(mcost.ops > 0);
            assert!(ucost.ops > 0);
        }
    }

    #[test]
    fn byte_at_a_time_is_much_more_expensive_for_large_payloads() {
        let ups = updates(&[256 * 1024]);
        let slow = ByteAtATime.marshal_cost(&ups);
        let fast = Bulk.marshal_cost(&ups);
        assert!(
            slow.ops > fast.ops * 10,
            "slow {} fast {}",
            slow.ops,
            fast.ops
        );
    }

    #[test]
    fn cost_grows_linearly_with_size() {
        let small = ByteAtATime.marshal_cost(&updates(&[1024]));
        let large = ByteAtATime.marshal_cost(&updates(&[4096]));
        // Slope dominated by the per-byte term once past the fixed cost.
        let delta = large.ops - small.ops;
        assert_eq!(delta, ByteAtATime::OPS_PER_BYTE * (4096 - 1024));
    }

    #[test]
    fn per_object_overhead_counts_each_payload() {
        let one = ByteAtATime.marshal_cost(&updates(&[10]));
        let three = ByteAtATime.marshal_cost(&updates(&[10, 10, 10]));
        assert_eq!(
            three.ops - 3 * ByteAtATime::OPS_PER_BYTE * 10,
            3 * ByteAtATime::PER_OBJECT_OPS
        );
        assert!(three.ops > one.ops * 2);
    }

    #[test]
    fn i32_payload_costs_four_bytes_per_element() {
        let ups = vec![ReplicaUpdate::new(
            ReplicaId(0),
            ReplicaPayload::I32s(vec![0; 100]),
        )];
        let c = ByteAtATime.marshal_cost(&ups);
        assert_eq!(
            c.ops,
            ByteAtATime::PER_OBJECT_OPS + ByteAtATime::OPS_PER_BYTE * 400
        );
    }

    #[test]
    fn unmarshal_rejects_garbage() {
        assert!(ByteAtATime.unmarshal(&[1, 2, 3]).is_err());
    }

    #[test]
    fn cost_plus_accumulates() {
        let a = MarshalCost { ops: 3 };
        let b = MarshalCost { ops: 4 };
        assert_eq!(a.plus(b).ops, 7);
        assert_eq!(MarshalCost::ZERO.plus(a), a);
    }

    #[test]
    fn codec_kind_names() {
        assert_eq!(CodecKind::ByteAtATime.marshaller().name(), "jdk11");
        assert_eq!(CodecKind::Bulk.marshaller().name(), "bulk");
        assert_eq!(CodecKind::default(), CodecKind::ByteAtATime);
    }
}
