//! A compact, non-self-describing serde binary format.
//!
//! This is the reproduction's stand-in for Java object serialization
//! (`java.io.ObjectOutputStream` in the paper, [R+96]): the format complex
//! shared objects are pickled into before crossing the network. Like
//! Java serialization it is driven entirely by the object's structure; like
//! bincode it is compact (fixed-width little-endian integers,
//! `u32`-length-prefixed sequences).
//!
//! ```
//! use serde::{Serialize, Deserialize};
//!
//! #[derive(Serialize, Deserialize, PartialEq, Debug)]
//! struct TableSetting { flatware: i32, plates: i32, note: String }
//!
//! let value = TableSetting { flatware: 1, plates: 2, note: "Good Choice".into() };
//! let bytes = mocha_wire::serbin::to_bytes(&value).unwrap();
//! let back: TableSetting = mocha_wire::serbin::from_bytes(&bytes).unwrap();
//! assert_eq!(back, value);
//! ```

use std::fmt;

use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
use serde::ser::{self, Serialize};

use crate::io::{ByteReader, ByteWriter, WireError};

/// Error produced by [`to_bytes`] / [`from_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerbinError {
    /// Underlying wire-format problem (truncation, bad lengths, bad UTF-8).
    Wire(WireError),
    /// A serde-reported error (custom messages, unsupported shapes).
    Message(String),
}

impl fmt::Display for SerbinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerbinError::Wire(e) => write!(f, "{e}"),
            SerbinError::Message(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for SerbinError {}

impl ser::Error for SerbinError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        SerbinError::Message(msg.to_string())
    }
}

impl de::Error for SerbinError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        SerbinError::Message(msg.to_string())
    }
}

impl From<WireError> for SerbinError {
    fn from(e: WireError) -> Self {
        SerbinError::Wire(e)
    }
}

/// Serializes `value` to bytes.
///
/// # Errors
///
/// Returns an error for shapes the format cannot represent (sequences of
/// unknown length) or custom serialize failures.
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Vec<u8>, SerbinError> {
    let mut ser = Serializer {
        w: ByteWriter::new(),
    };
    value.serialize(&mut ser)?;
    Ok(ser.w.into_bytes())
}

/// Deserializes a `T` from bytes produced by [`to_bytes`].
///
/// # Errors
///
/// Returns an error on malformed or truncated input, or when trailing
/// bytes remain.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, SerbinError> {
    let mut de = Deserializer {
        r: ByteReader::new(bytes),
    };
    let value = T::deserialize(&mut de)?;
    de.r.finish()?;
    Ok(value)
}

struct Serializer {
    w: ByteWriter,
}

impl<'a> ser::Serializer for &'a mut Serializer {
    type Ok = ();
    type Error = SerbinError;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), SerbinError> {
        self.w.put_bool(v);
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), SerbinError> {
        self.w.put_u8(v as u8);
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), SerbinError> {
        self.w.put_u16(v as u16);
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), SerbinError> {
        self.w.put_i32(v);
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), SerbinError> {
        self.w.put_i64(v);
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), SerbinError> {
        self.w.put_u8(v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), SerbinError> {
        self.w.put_u16(v);
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), SerbinError> {
        self.w.put_u32(v);
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), SerbinError> {
        self.w.put_u64(v);
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), SerbinError> {
        self.w.put_u32(v.to_bits());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), SerbinError> {
        self.w.put_f64(v);
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), SerbinError> {
        self.w.put_u32(v as u32);
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), SerbinError> {
        self.w.put_str(v);
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), SerbinError> {
        self.w.put_bytes(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), SerbinError> {
        self.w.put_u8(0);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), SerbinError> {
        self.w.put_u8(1);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), SerbinError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), SerbinError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), SerbinError> {
        self.w.put_u32(variant_index);
        Ok(())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), SerbinError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), SerbinError> {
        self.w.put_u32(variant_index);
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Compound<'a>, SerbinError> {
        let len = len.ok_or_else(|| {
            SerbinError::Message("serbin requires sequences of known length".into())
        })?;
        self.w.put_u32(len as u32);
        Ok(Compound { ser: self })
    }
    fn serialize_tuple(self, _len: usize) -> Result<Compound<'a>, SerbinError> {
        Ok(Compound { ser: self })
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, SerbinError> {
        Ok(Compound { ser: self })
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, SerbinError> {
        self.w.put_u32(variant_index);
        Ok(Compound { ser: self })
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Compound<'a>, SerbinError> {
        let len =
            len.ok_or_else(|| SerbinError::Message("serbin requires maps of known length".into()))?;
        self.w.put_u32(len as u32);
        Ok(Compound { ser: self })
    }
    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, SerbinError> {
        Ok(Compound { ser: self })
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, SerbinError> {
        self.w.put_u32(variant_index);
        Ok(Compound { ser: self })
    }
}

struct Compound<'a> {
    ser: &'a mut Serializer,
}

macro_rules! compound_impl {
    ($trait:ident, $method:ident) => {
        impl<'a> ser::$trait for Compound<'a> {
            type Ok = ();
            type Error = SerbinError;
            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), SerbinError> {
                value.serialize(&mut *self.ser)
            }
            fn end(self) -> Result<(), SerbinError> {
                Ok(())
            }
        }
    };
}
compound_impl!(SerializeSeq, serialize_element);
compound_impl!(SerializeTuple, serialize_element);
compound_impl!(SerializeTupleStruct, serialize_field);
compound_impl!(SerializeTupleVariant, serialize_field);

impl<'a> ser::SerializeMap for Compound<'a> {
    type Ok = ();
    type Error = SerbinError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), SerbinError> {
        key.serialize(&mut *self.ser)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), SerbinError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), SerbinError> {
        Ok(())
    }
}

impl<'a> ser::SerializeStruct for Compound<'a> {
    type Ok = ();
    type Error = SerbinError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), SerbinError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), SerbinError> {
        Ok(())
    }
}

impl<'a> ser::SerializeStructVariant for Compound<'a> {
    type Ok = ();
    type Error = SerbinError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), SerbinError> {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), SerbinError> {
        Ok(())
    }
}

struct Deserializer<'de> {
    r: ByteReader<'de>,
}

impl<'de> Deserializer<'de> {
    fn bounded_len(&mut self, min_elem_size: usize) -> Result<usize, SerbinError> {
        let n = self.r.get_u32()? as usize;
        if n.saturating_mul(min_elem_size.max(1)) > self.r.remaining() {
            return Err(SerbinError::Wire(WireError::LengthOverrun {
                declared: n,
                remaining: self.r.remaining(),
            }));
        }
        Ok(n)
    }
}

impl<'de> de::Deserializer<'de> for &mut Deserializer<'de> {
    type Error = SerbinError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, SerbinError> {
        Err(SerbinError::Message(
            "serbin is not self-describing; deserialize_any unsupported".into(),
        ))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, SerbinError> {
        visitor.visit_bool(self.r.get_bool()?)
    }
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, SerbinError> {
        visitor.visit_i8(self.r.get_u8()? as i8)
    }
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, SerbinError> {
        visitor.visit_i16(self.r.get_u16()? as i16)
    }
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, SerbinError> {
        visitor.visit_i32(self.r.get_i32()?)
    }
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, SerbinError> {
        visitor.visit_i64(self.r.get_i64()?)
    }
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, SerbinError> {
        visitor.visit_u8(self.r.get_u8()?)
    }
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, SerbinError> {
        visitor.visit_u16(self.r.get_u16()?)
    }
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, SerbinError> {
        visitor.visit_u32(self.r.get_u32()?)
    }
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, SerbinError> {
        visitor.visit_u64(self.r.get_u64()?)
    }
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, SerbinError> {
        visitor.visit_f32(f32::from_bits(self.r.get_u32()?))
    }
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, SerbinError> {
        visitor.visit_f64(self.r.get_f64()?)
    }
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, SerbinError> {
        let raw = self.r.get_u32()?;
        let c = char::from_u32(raw)
            .ok_or_else(|| SerbinError::Message(format!("invalid char scalar {raw:#x}")))?;
        visitor.visit_char(c)
    }
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, SerbinError> {
        let bytes = self.r.get_bytes()?;
        let s = std::str::from_utf8(bytes).map_err(|_| SerbinError::Wire(WireError::BadUtf8))?;
        visitor.visit_borrowed_str(s)
    }
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, SerbinError> {
        self.deserialize_str(visitor)
    }
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, SerbinError> {
        visitor.visit_borrowed_bytes(self.r.get_bytes()?)
    }
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, SerbinError> {
        visitor.visit_byte_buf(self.r.get_bytes()?.to_vec())
    }
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, SerbinError> {
        match self.r.get_u8()? {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            tag => Err(SerbinError::Wire(WireError::BadTag {
                what: "Option",
                tag,
            })),
        }
    }
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, SerbinError> {
        visitor.visit_unit()
    }
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, SerbinError> {
        visitor.visit_unit()
    }
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, SerbinError> {
        visitor.visit_newtype_struct(self)
    }
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, SerbinError> {
        let len = self.bounded_len(1)?;
        visitor.visit_seq(SeqAccess { de: self, len })
    }
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, SerbinError> {
        visitor.visit_seq(SeqAccess { de: self, len })
    }
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, SerbinError> {
        visitor.visit_seq(SeqAccess { de: self, len })
    }
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, SerbinError> {
        let len = self.bounded_len(2)?;
        visitor.visit_map(MapAccess {
            de: self,
            remaining: len,
        })
    }
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, SerbinError> {
        visitor.visit_seq(SeqAccess {
            de: self,
            len: fields.len(),
        })
    }
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, SerbinError> {
        visitor.visit_enum(EnumAccess { de: self })
    }
    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, SerbinError> {
        Err(SerbinError::Message(
            "serbin does not encode identifiers".into(),
        ))
    }
    fn deserialize_ignored_any<V: Visitor<'de>>(
        self,
        _visitor: V,
    ) -> Result<V::Value, SerbinError> {
        Err(SerbinError::Message(
            "serbin cannot skip unknown content".into(),
        ))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct SeqAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    len: usize,
}

impl<'a, 'de> de::SeqAccess<'de> for SeqAccess<'a, 'de> {
    type Error = SerbinError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, SerbinError> {
        if self.len == 0 {
            return Ok(None);
        }
        self.len -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.len)
    }
}

struct MapAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    remaining: usize,
}

impl<'a, 'de> de::MapAccess<'de> for MapAccess<'a, 'de> {
    type Error = SerbinError;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, SerbinError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, SerbinError> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'a, 'de> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = SerbinError;
    type Variant = VariantAccess<'a, 'de>;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, VariantAccess<'a, 'de>), SerbinError> {
        let index = self.de.r.get_u32()?;
        let value = seed.deserialize(IntoDeserializer::<SerbinError>::into_deserializer(index))?;
        Ok((value, VariantAccess { de: self.de }))
    }
}

struct VariantAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'a, 'de> de::VariantAccess<'de> for VariantAccess<'a, 'de> {
    type Error = SerbinError;

    fn unit_variant(self) -> Result<(), SerbinError> {
        Ok(())
    }
    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, SerbinError> {
        seed.deserialize(self.de)
    }
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, SerbinError> {
        visitor.visit_seq(SeqAccess { de: self.de, len })
    }
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, SerbinError> {
        visitor.visit_seq(SeqAccess {
            de: self.de,
            len: fields.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + fmt::Debug>(value: T) {
        let bytes = to_bytes(&value).unwrap();
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(true);
        roundtrip(false);
        roundtrip(-5i8);
        roundtrip(1234i16);
        roundtrip(-77i32);
        roundtrip(1i64 << 40);
        roundtrip(200u8);
        roundtrip(60000u16);
        roundtrip(4_000_000_000u32);
        roundtrip(u64::MAX);
        roundtrip(1.5f32);
        roundtrip(-2.75f64);
        roundtrip('é');
        roundtrip("hello world".to_string());
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(vec![1i32, 2, 3]);
        roundtrip(Vec::<String>::new());
        let mut map = BTreeMap::new();
        map.insert("a".to_string(), 1i32);
        map.insert("b".to_string(), 2);
        roundtrip(map);
        roundtrip((1i32, "pair".to_string(), 2.5f64));
        roundtrip(Some(42i32));
        roundtrip(Option::<i32>::None);
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Nested {
        id: u32,
        tags: Vec<String>,
        inner: Option<Box<Nested>>,
    }

    #[test]
    fn structs_roundtrip() {
        roundtrip(Nested {
            id: 1,
            tags: vec!["x".into()],
            inner: Some(Box::new(Nested {
                id: 2,
                tags: vec![],
                inner: None,
            })),
        });
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Shape {
        Point,
        Circle(f64),
        Rect { w: f64, h: f64 },
    }

    #[test]
    fn enums_roundtrip() {
        roundtrip(Shape::Point);
        roundtrip(Shape::Circle(2.0));
        roundtrip(Shape::Rect { w: 1.0, h: 2.0 });
        roundtrip(vec![Shape::Point, Shape::Circle(1.0)]);
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = to_bytes(&vec![1i32, 2, 3]).unwrap();
        for cut in 0..bytes.len() {
            assert!(from_bytes::<Vec<i32>>(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn trailing_bytes_error() {
        let mut bytes = to_bytes(&7i32).unwrap();
        bytes.push(0);
        assert!(from_bytes::<i32>(&bytes).is_err());
    }

    #[test]
    fn hostile_length_rejected() {
        // A Vec<u64> claiming u32::MAX elements.
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        assert!(from_bytes::<Vec<u64>>(w.as_slice()).is_err());
    }

    #[test]
    fn invalid_char_rejected() {
        let mut w = ByteWriter::new();
        w.put_u32(0xD800); // surrogate
        assert!(from_bytes::<char>(w.as_slice()).is_err());
    }

    #[test]
    fn bad_option_tag_rejected() {
        assert!(from_bytes::<Option<i32>>(&[7]).is_err());
    }

    #[test]
    fn format_is_compact() {
        // 100 i32s = 4 bytes length + 400 bytes data.
        let bytes = to_bytes(&vec![0i32; 100]).unwrap();
        assert_eq!(bytes.len(), 404);
    }
}
