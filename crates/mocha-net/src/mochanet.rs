//! Mocha's network object library.
//!
//! A user-level reliable datagram protocol, modelled on the paper's
//! description: "This library implements reliable, sequenced, delivery of
//! messages as well as performing fragmentation and reassembly. It is
//! scalable in the number of hosts that communicate with the library
//! because it performs its own upward multiplexing of packets. It is
//! particularly well suited for sending small messages as it avoids the
//! heavy connection and tear-down overheads associated with other transport
//! protocols such as TCP."
//!
//! There is **no connection establishment**: the first datagram to a peer
//! is data. Reliability is per-fragment sequence numbers with cumulative
//! acks and a go-back-N retransmission timer per peer. Fragmentation and
//! reassembly run *at user level as interpreted code*, so every datagram
//! charges [`Work::events`] (a JVM thread wakeup) and [`Work::user_bytes`]
//! (interpreted byte handling) — the cost structure behind the paper's
//! Figures 9–14.
//!
//! Exhausted retransmissions surface as [`TransportEvent::SendFailed`] /
//! [`TransportEvent::PeerUnreachable`], which is exactly the timeout signal
//! Mocha's §4 failure handling consumes.
//!
//! Every endpoint carries an **incarnation epoch** in its datagrams: a
//! rebooted node comes back with a fresh endpoint whose sequence numbers
//! restart at zero, and the epoch lets peers distinguish that new
//! incarnation from duplicate traffic of the old one (resetting both their
//! receive and send state toward the peer).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU32, Ordering};

use mocha_sim::Work;
use mocha_wire::io::{ByteReader, ByteWriter, WireError};
use mocha_wire::SiteId;

use crate::action::{Action, ActionSink, Port, SendHandle, TransportEvent};
use crate::config::MochaNetConfig;

/// Protocol discriminator byte for MochaNet datagrams.
pub const PROTO_MOCHANET: u8 = 1;

/// Timer-token namespace for MochaNet retransmission timers.
const TIMER_NS: u64 = 0x01 << 56;

/// User-level cost (in interpreted bytes) of pushing one datagram through
/// the socket layer from Java.
const SEND_OVERHEAD_BYTES: u64 = 150;

/// User-level cost of receiving a single-datagram message: header parse
/// and hand-off, no reassembly. This fast path — no fragmentation
/// machinery at all for messages that fit one datagram — is why the
/// library "is particularly well suited for sending small messages".
const SMALL_RECV_BYTES: u64 = 48;

/// User-level cost of processing one cumulative ack.
const ACK_PROCESS_BYTES: u64 = 16;

/// Process-wide incarnation counter: every endpoint (and so every reboot,
/// which constructs a fresh endpoint) gets a distinct nonzero epoch.
static EPOCH_COUNTER: AtomicU32 = AtomicU32::new(1);

/// Returns the retransmission-timer token for `peer`.
pub fn timer_token(peer: SiteId) -> u64 {
    TIMER_NS | u64::from(peer.as_raw())
}

/// Whether `token` belongs to MochaNet's namespace; returns the peer if so.
pub fn timer_peer(token: u64) -> Option<SiteId> {
    if token & (0xff << 56) == TIMER_NS {
        Some(SiteId::from_raw((token & 0xffff_ffff) as u32))
    } else {
        None
    }
}

const T_DATA: u8 = 0;
const T_ACK: u8 = 1;

/// One fragment, pre-encoded and retransmittable.
#[derive(Debug, Clone)]
struct Frag {
    seq: u64,
    handle: SendHandle,
    /// This fragment completes its message; acking it acks the message.
    last: bool,
    datagram: Vec<u8>,
    /// User-level bytes charged when (re)transmitting this fragment:
    /// fragmentation copy for multi-fragment messages, fixed send
    /// overhead otherwise.
    charge_bytes: u64,
}

/// Per-peer sender state.
#[derive(Debug)]
struct PeerSend {
    /// Stream generation toward this peer: bumped whenever the stream is
    /// reset (retries exhausted, or the peer visibly rebooted), so stale
    /// buffered fragments and acks from the old stream can never be
    /// confused with the new one.
    stream_gen: u32,
    next_seq: u64,
    /// Transmitted fragments awaiting acknowledgement, in seq order.
    inflight: VecDeque<Frag>,
    /// Built fragments waiting for window space, in seq order.
    pending: VecDeque<Frag>,
    retries: u32,
    timer_armed: bool,
    unreachable: bool,
}

impl Default for PeerSend {
    fn default() -> Self {
        PeerSend {
            stream_gen: 1,
            next_seq: 0,
            inflight: VecDeque::new(),
            pending: VecDeque::new(),
            retries: 0,
            timer_armed: false,
            unreachable: false,
        }
    }
}

/// A message being reassembled.
#[derive(Debug)]
struct Reassembly {
    port: Port,
    frag_cnt: u16,
    next_idx: u16,
    bytes: Vec<u8>,
}

/// Per-peer receiver state.
#[derive(Debug, Default)]
struct PeerRecv {
    /// Epoch of the peer incarnation this state belongs to (0 = unset).
    sender_epoch: u32,
    /// Stream generation within that incarnation.
    sender_gen: u32,
    expected_seq: u64,
    /// Out-of-order fragments buffered until the gap fills.
    ooo: BTreeMap<u64, Vec<u8>>,
    /// In-progress reassemblies keyed by message id.
    reasm: HashMap<u64, Reassembly>,
}

/// A MochaNet endpoint: one per site, shared by all local services through
/// port multiplexing.
pub struct MochaNetEndpoint {
    cfg: MochaNetConfig,
    /// This endpoint's incarnation epoch, stamped on every datagram.
    epoch: u32,
    send_states: HashMap<SiteId, PeerSend>,
    recv_states: HashMap<SiteId, PeerRecv>,
    sink: ActionSink,
}

impl std::fmt::Debug for MochaNetEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MochaNetEndpoint")
            .field("peers_sending", &self.send_states.len())
            .field("peers_receiving", &self.recv_states.len())
            .finish()
    }
}

impl MochaNetEndpoint {
    /// Creates an endpoint with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MochaNetConfig::validate`].
    pub fn new(cfg: MochaNetConfig) -> MochaNetEndpoint {
        cfg.validate().expect("invalid MochaNetConfig");
        MochaNetEndpoint {
            cfg,
            epoch: EPOCH_COUNTER.fetch_add(1, Ordering::Relaxed),
            send_states: HashMap::new(),
            recv_states: HashMap::new(),
            sink: ActionSink::default(),
        }
    }

    /// Queues `bytes` for reliable, sequenced delivery to `(to, port)`.
    ///
    /// A peer previously declared unreachable gets a fresh chance: the
    /// flag is cleared and this send runs its own full retry cycle.
    /// (Sends that were *queued* when the peer failed were failed fast at
    /// that moment; callers retrying later may be probing a healed path.)
    pub fn send(&mut self, to: SiteId, port: Port, bytes: &[u8], handle: SendHandle) {
        let state = self.send_states.entry(to).or_default();
        if state.unreachable {
            state.unreachable = false;
            state.retries = 0;
        }
        let mtu = self.cfg.mtu;
        let frag_cnt = bytes.len().div_ceil(mtu).max(1);
        let frag_cnt_u16 =
            u16::try_from(frag_cnt).expect("message needs more than 65535 fragments");
        for (idx, chunk) in chunks_or_empty(bytes, mtu).enumerate() {
            let seq = state.next_seq;
            state.next_seq += 1;
            let mut w = ByteWriter::with_capacity(chunk.len() + 32);
            w.put_u8(PROTO_MOCHANET);
            w.put_u8(T_DATA);
            w.put_u32(self.epoch);
            w.put_u32(state.stream_gen);
            w.put_u64(seq);
            w.put_u64(handle.0);
            w.put_u16(idx as u16);
            w.put_u16(frag_cnt_u16);
            w.put_u16(port);
            w.put_raw(chunk);
            let charge_bytes = if frag_cnt <= 1 {
                SEND_OVERHEAD_BYTES
            } else {
                chunk.len() as u64 + SEND_OVERHEAD_BYTES
            };
            state.pending.push_back(Frag {
                seq,
                handle,
                last: idx + 1 == frag_cnt,
                datagram: w.into_bytes(),
                charge_bytes,
            });
        }
        self.pump(to);
    }

    /// Feeds an arriving datagram (including the protocol discriminator
    /// byte) into the endpoint.
    ///
    /// Malformed datagrams are counted and dropped — a wide-area endpoint
    /// cannot trust its inputs.
    pub fn on_datagram(&mut self, from: SiteId, datagram: &[u8]) {
        if let Err(_e) = self.try_on_datagram(from, datagram) {
            // Malformed datagram: drop. (A real stack would log; the trace
            // lives at the sim layer.)
        }
    }

    fn try_on_datagram(&mut self, from: SiteId, datagram: &[u8]) -> Result<(), WireError> {
        let mut r = ByteReader::new(datagram);
        let proto = r.get_u8()?;
        if proto != PROTO_MOCHANET {
            return Err(WireError::BadTag {
                what: "mochanet proto",
                tag: proto,
            });
        }
        match r.get_u8()? {
            T_DATA => {
                let epoch = r.get_u32()?;
                let gen = r.get_u32()?;
                let seq = r.get_u64()?;
                let msg_id = r.get_u64()?;
                let frag_idx = r.get_u16()?;
                let frag_cnt = r.get_u16()?;
                let port = r.get_u16()?;
                let payload = r.get_rest().to_vec();
                self.on_data(
                    from, epoch, gen, seq, msg_id, frag_idx, frag_cnt, port, payload,
                );
                Ok(())
            }
            T_ACK => {
                let epoch = r.get_u32()?;
                let gen = r.get_u32()?;
                let cum = r.get_u64()?;
                r.finish()?;
                self.on_ack(from, epoch, gen, cum);
                Ok(())
            }
            tag => Err(WireError::BadTag {
                what: "mochanet type",
                tag,
            }),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_data(
        &mut self,
        from: SiteId,
        epoch: u32,
        gen: u32,
        seq: u64,
        msg_id: u64,
        frag_idx: u16,
        frag_cnt: u16,
        port: Port,
        payload: Vec<u8>,
    ) {
        // A new incarnation of the peer (epoch) or a reset stream within
        // it (gen): the sequence space restarted; drop all buffered state.
        let state = self.recv_states.entry(from).or_default();
        if state.sender_epoch != epoch || state.sender_gen != gen {
            let new_incarnation = state.sender_epoch != 0 && state.sender_epoch != epoch;
            *state = PeerRecv {
                sender_epoch: epoch,
                sender_gen: gen,
                ..PeerRecv::default()
            };
            if new_incarnation {
                // Anything we had in flight toward the old incarnation is
                // void.
                self.reset_send_state(from);
            }
        }
        // Traffic from the peer proves it is alive again.
        if let Some(s) = self.send_states.get_mut(&from) {
            s.unreachable = false;
        }
        // JVM wakeup, plus interpreted reassembly copying for fragments of
        // multi-datagram messages — the user-level cost the paper's
        // evaluation turns on. Single-datagram messages skip reassembly.
        let recv_bytes = if frag_cnt <= 1 {
            SMALL_RECV_BYTES
        } else {
            payload.len() as u64
        };
        self.sink
            .charge(Work::events(1).plus(Work::user_bytes(recv_bytes)));

        let state = self.recv_states.entry(from).or_default();
        if seq < state.expected_seq {
            // Duplicate of something already processed: re-ack.
            let ack = state.expected_seq;
            self.send_ack(from, ack);
            return;
        }
        if seq > state.expected_seq {
            // Out of order: buffer the raw fragment fields and dup-ack.
            let mut w = ByteWriter::with_capacity(payload.len() + 8);
            w.put_u64(msg_id);
            w.put_u16(frag_idx);
            w.put_u16(frag_cnt);
            w.put_u16(port);
            w.put_raw(&payload);
            state.ooo.insert(seq, w.into_bytes());
            let ack = state.expected_seq;
            self.send_ack(from, ack);
            return;
        }
        // In order: process, then drain any now-contiguous buffered frags.
        self.process_fragment(from, msg_id, frag_idx, frag_cnt, port, payload);
        let state = self.recv_states.entry(from).or_default();
        state.expected_seq += 1;
        loop {
            let state = self.recv_states.entry(from).or_default();
            let next = state.expected_seq;
            let Some(buf) = state.ooo.remove(&next) else {
                break;
            };
            state.expected_seq += 1;
            let mut r = ByteReader::new(&buf);
            // Infallible: we encoded this buffer ourselves above.
            let msg_id = r.get_u64().expect("ooo buffer");
            let frag_idx = r.get_u16().expect("ooo buffer");
            let frag_cnt = r.get_u16().expect("ooo buffer");
            let port = r.get_u16().expect("ooo buffer");
            let payload = r.get_rest().to_vec();
            self.process_fragment(from, msg_id, frag_idx, frag_cnt, port, payload);
        }
        let ack = self.recv_states.entry(from).or_default().expected_seq;
        self.send_ack(from, ack);
    }

    fn process_fragment(
        &mut self,
        from: SiteId,
        msg_id: u64,
        frag_idx: u16,
        frag_cnt: u16,
        port: Port,
        payload: Vec<u8>,
    ) {
        let state = self.recv_states.entry(from).or_default();
        if frag_cnt <= 1 {
            // Single-fragment fast path.
            self.sink.event(TransportEvent::Delivered {
                from,
                port,
                bytes: payload,
            });
            return;
        }
        let reasm = state.reasm.entry(msg_id).or_insert_with(|| Reassembly {
            port,
            frag_cnt,
            next_idx: 0,
            bytes: Vec::new(),
        });
        if frag_idx != reasm.next_idx || frag_cnt != reasm.frag_cnt {
            // Protocol violation (sender bug or corruption): abandon the
            // message rather than deliver garbage.
            state.reasm.remove(&msg_id);
            return;
        }
        reasm.bytes.extend_from_slice(&payload);
        reasm.next_idx += 1;
        if reasm.next_idx == reasm.frag_cnt {
            let done = state.reasm.remove(&msg_id).expect("present");
            self.sink.event(TransportEvent::Delivered {
                from,
                port: done.port,
                bytes: done.bytes,
            });
        }
    }

    fn send_ack(&mut self, to: SiteId, cum_ack_exclusive: u64) {
        // The ack names the data-sender's (epoch, generation) so stale
        // acks from an earlier stream cannot confuse the current one.
        let (epoch, gen) = self
            .recv_states
            .get(&to)
            .map(|s| (s.sender_epoch, s.sender_gen))
            .unwrap_or((0, 0));
        let mut w = ByteWriter::with_capacity(18);
        w.put_u8(PROTO_MOCHANET);
        w.put_u8(T_ACK);
        w.put_u32(epoch);
        w.put_u32(gen);
        // Wire carries "next expected seq"; everything below it is acked.
        w.put_u64(cum_ack_exclusive);
        self.sink.charge(Work::user_bytes(ACK_PROCESS_BYTES));
        self.sink.transmit(to, w.into_bytes());
    }

    fn on_ack(&mut self, from: SiteId, epoch: u32, gen: u32, next_expected: u64) {
        self.sink.charge(Work::user_bytes(ACK_PROCESS_BYTES));
        if epoch != self.epoch {
            return; // ack addressed to a previous incarnation of us
        }
        let Some(state) = self.send_states.get_mut(&from) else {
            return;
        };
        if gen != state.stream_gen {
            return; // ack for an earlier, abandoned stream
        }
        state.unreachable = false;
        let mut acked_handles = Vec::new();
        let mut advanced = false;
        while let Some(front) = state.inflight.front() {
            if front.seq < next_expected {
                let f = state.inflight.pop_front().expect("front");
                if f.last {
                    acked_handles.push(f.handle);
                }
                advanced = true;
            } else {
                break;
            }
        }
        if advanced {
            state.retries = 0;
        }
        for handle in acked_handles {
            self.sink
                .event(TransportEvent::MsgAcked { to: from, handle });
        }
        self.pump(from);
    }

    /// Handles a timer fire. Returns `true` if the token belonged to this
    /// endpoint.
    pub fn on_timer(&mut self, token: u64) -> bool {
        let Some(peer) = timer_peer(token) else {
            return false;
        };
        let Some(state) = self.send_states.get_mut(&peer) else {
            return true;
        };
        state.timer_armed = false;
        if state.inflight.is_empty() {
            return true;
        }
        state.retries += 1;
        if state.retries > self.cfg.max_retries {
            self.fail_peer(peer);
            return true;
        }
        // Go-back-N: retransmit everything in flight.
        let frags: Vec<(Vec<u8>, u64)> = state
            .inflight
            .iter()
            .map(|f| (f.datagram.clone(), f.charge_bytes))
            .collect();
        for (datagram, charge_bytes) in frags {
            self.sink.charge(Work::user_bytes(charge_bytes));
            self.sink.transmit(peer, datagram);
        }
        self.arm_timer(peer);
        true
    }

    /// Voids all in-flight traffic toward a peer that has visibly
    /// rebooted: its new incarnation will never ack the old sequence
    /// numbers, so pending messages fail immediately.
    fn reset_send_state(&mut self, peer: SiteId) {
        let Some(state) = self.send_states.get_mut(&peer) else {
            return;
        };
        state.stream_gen += 1;
        state.next_seq = 0;
        state.retries = 0;
        if state.inflight.is_empty() && state.pending.is_empty() {
            return;
        }
        let mut failed = Vec::new();
        for f in state.inflight.drain(..).chain(state.pending.drain(..)) {
            if f.last {
                failed.push(f.handle);
            }
        }
        state.timer_armed = false;
        for handle in failed {
            self.sink
                .event(TransportEvent::SendFailed { to: peer, handle });
        }
        self.sink.cancel_timer(timer_token(peer));
    }

    fn fail_peer(&mut self, peer: SiteId) {
        let state = self.send_states.get_mut(&peer).expect("peer state");
        state.unreachable = true;
        // Abandon the stream: the next send starts a fresh generation, so
        // the receiver discards any buffered fragments of this one and
        // sequence numbers restart unambiguously.
        state.stream_gen += 1;
        state.next_seq = 0;
        let mut failed = Vec::new();
        for f in state.inflight.drain(..).chain(state.pending.drain(..)) {
            if f.last {
                failed.push(f.handle);
            }
        }
        state.retries = 0;
        for handle in failed {
            self.sink
                .event(TransportEvent::SendFailed { to: peer, handle });
        }
        self.sink
            .event(TransportEvent::PeerUnreachable { to: peer });
        self.sink.cancel_timer(timer_token(peer));
    }

    /// Moves pending fragments into the window and transmits them.
    fn pump(&mut self, peer: SiteId) {
        let window = self.cfg.window;
        let state = self.send_states.entry(peer).or_default();
        let mut transmitted = Vec::new();
        while state.inflight.len() < window {
            let Some(frag) = state.pending.pop_front() else {
                break;
            };
            transmitted.push((frag.datagram.clone(), frag.charge_bytes));
            state.inflight.push_back(frag);
        }
        let has_inflight = !state.inflight.is_empty();
        let timer_armed = state.timer_armed;
        for (datagram, charge_bytes) in transmitted {
            self.sink.charge(Work::user_bytes(charge_bytes));
            self.sink.transmit(peer, datagram);
        }
        if has_inflight && !timer_armed {
            self.arm_timer(peer);
        } else if !has_inflight && timer_armed {
            self.send_states.get_mut(&peer).expect("state").timer_armed = false;
            self.sink.cancel_timer(timer_token(peer));
        }
    }

    fn arm_timer(&mut self, peer: SiteId) {
        let rto = self.cfg.rto;
        self.send_states.get_mut(&peer).expect("state").timer_armed = true;
        self.sink.set_timer(timer_token(peer), rto);
    }

    /// Whether the endpoint has given up on `peer`.
    pub fn is_unreachable(&self, peer: SiteId) -> bool {
        self.send_states
            .get(&peer)
            .map(|s| s.unreachable)
            .unwrap_or(false)
    }

    /// Forgets a peer's failure state (e.g. after an out-of-band signal
    /// that it restarted).
    pub fn reset_peer(&mut self, peer: SiteId) {
        if let Some(s) = self.send_states.get_mut(&peer) {
            s.unreachable = false;
            s.retries = 0;
        }
    }

    /// Drains accumulated actions for the driver to execute, in order.
    pub fn drain_actions(&mut self) -> Vec<Action> {
        self.sink.drain()
    }

    /// Number of fragments awaiting acknowledgement to `peer`.
    pub fn inflight_to(&self, peer: SiteId) -> usize {
        self.send_states
            .get(&peer)
            .map(|s| s.inflight.len() + s.pending.len())
            .unwrap_or(0)
    }
}

/// Like `slice.chunks(n)` but yields exactly one empty chunk for an empty
/// slice (an empty message is still one datagram).
fn chunks_or_empty<'a>(bytes: &'a [u8], mtu: usize) -> Box<dyn Iterator<Item = &'a [u8]> + 'a> {
    if bytes.is_empty() {
        Box::new(std::iter::once(&bytes[0..0]))
    } else {
        Box::new(bytes.chunks(mtu))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const A: SiteId = SiteId(0);
    const B: SiteId = SiteId(1);

    fn cfg() -> MochaNetConfig {
        MochaNetConfig {
            mtu: 100,
            window: 4,
            rto: Duration::from_millis(50),
            max_retries: 3,
        }
    }

    /// Drives two endpoints directly, delivering every transmitted datagram
    /// immediately (optionally dropping by index). Returns delivered events.
    struct Pair {
        a: MochaNetEndpoint,
        b: MochaNetEndpoint,
        events_a: Vec<TransportEvent>,
        events_b: Vec<TransportEvent>,
    }

    impl Pair {
        fn new() -> Pair {
            Pair {
                a: MochaNetEndpoint::new(cfg()),
                b: MochaNetEndpoint::new(cfg()),
                events_a: Vec::new(),
                events_b: Vec::new(),
            }
        }

        /// Shuttles actions between the endpoints until quiescent.
        /// `drop_filter(from_is_a, counter)` returns true to drop.
        fn pump(&mut self, drop_filter: &mut dyn FnMut(bool, usize) -> bool) {
            let mut counter = 0usize;
            loop {
                let mut progressed = false;
                for from_a in [true, false] {
                    let (src, dst, events) = if from_a {
                        (&mut self.a, &mut self.b, &mut self.events_a)
                    } else {
                        (&mut self.b, &mut self.a, &mut self.events_b)
                    };
                    for action in src.drain_actions() {
                        progressed = true;
                        match action {
                            Action::Transmit { datagram, .. } => {
                                let drop = drop_filter(from_a, counter);
                                counter += 1;
                                if !drop {
                                    let from = if from_a { A } else { B };
                                    dst.on_datagram(from, &datagram);
                                }
                            }
                            Action::Event(e) => events.push(e),
                            Action::SetTimer { .. }
                            | Action::CancelTimer { .. }
                            | Action::Charge(_) => {}
                        }
                    }
                }
                if !progressed {
                    break;
                }
            }
        }

        fn pump_lossless(&mut self) {
            self.pump(&mut |_, _| false);
        }

        fn delivered_to_b(&self) -> Vec<(Port, Vec<u8>)> {
            self.events_b
                .iter()
                .filter_map(|e| match e {
                    TransportEvent::Delivered { port, bytes, .. } => Some((*port, bytes.clone())),
                    _ => None,
                })
                .collect()
        }
    }

    #[test]
    fn small_message_delivers_and_acks() {
        let mut p = Pair::new();
        p.a.send(B, 7, b"hello", SendHandle(1));
        p.pump_lossless();
        assert_eq!(p.delivered_to_b(), vec![(7, b"hello".to_vec())]);
        assert!(p.events_a.iter().any(|e| matches!(
            e,
            TransportEvent::MsgAcked {
                handle: SendHandle(1),
                ..
            }
        )));
    }

    #[test]
    fn empty_message_delivers() {
        let mut p = Pair::new();
        p.a.send(B, 7, b"", SendHandle(1));
        p.pump_lossless();
        assert_eq!(p.delivered_to_b(), vec![(7, vec![])]);
    }

    #[test]
    fn large_message_fragments_and_reassembles() {
        let mut p = Pair::new();
        let payload: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        p.a.send(B, 3, &payload, SendHandle(2));
        p.pump_lossless();
        assert_eq!(p.delivered_to_b(), vec![(3, payload)]);
    }

    #[test]
    fn window_limits_inflight_fragments() {
        let mut p = Pair::new();
        // 1000 bytes at mtu 100 = 10 fragments; window 4.
        p.a.send(B, 3, &vec![0u8; 1000], SendHandle(2));
        // Before any acks flow back, at most `window` datagrams transmitted.
        let transmitted: Vec<_> =
            p.a.drain_actions()
                .into_iter()
                .filter(|a| matches!(a, Action::Transmit { .. }))
                .collect();
        assert_eq!(transmitted.len(), 4);
        assert_eq!(p.a.inflight_to(B), 10);
    }

    #[test]
    fn messages_deliver_in_order() {
        let mut p = Pair::new();
        for i in 0..5u8 {
            p.a.send(B, 1, &[i], SendHandle(u64::from(i) + 1));
        }
        p.pump_lossless();
        let delivered: Vec<u8> = p.delivered_to_b().into_iter().map(|(_, b)| b[0]).collect();
        assert_eq!(delivered, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn lost_fragment_recovers_via_retransmission() {
        let mut p = Pair::new();
        let payload: Vec<u8> = (0..350).map(|i| i as u8).collect(); // 4 frags
        p.a.send(B, 1, &payload, SendHandle(1));
        // Drop the second datagram A transmits, then let retransmission run.
        p.pump(&mut |from_a, idx| from_a && idx == 1);
        // Nothing delivered yet (gap). Fire A's RTO.
        assert!(p.delivered_to_b().is_empty());
        assert!(p.a.on_timer(timer_token(B)));
        p.pump_lossless();
        assert_eq!(p.delivered_to_b(), vec![(1, payload)]);
    }

    #[test]
    fn duplicate_datagrams_do_not_duplicate_delivery() {
        let mut ep = MochaNetEndpoint::new(cfg());
        let mut src = MochaNetEndpoint::new(cfg());
        src.send(A, 1, b"x", SendHandle(1));
        let datagrams: Vec<Vec<u8>> = src
            .drain_actions()
            .into_iter()
            .filter_map(|a| match a {
                Action::Transmit { datagram, .. } => Some(datagram),
                _ => None,
            })
            .collect();
        assert_eq!(datagrams.len(), 1);
        ep.on_datagram(B, &datagrams[0]);
        ep.on_datagram(B, &datagrams[0]); // duplicate
        let delivered = ep
            .drain_actions()
            .into_iter()
            .filter(|a| matches!(a, Action::Event(TransportEvent::Delivered { .. })))
            .count();
        assert_eq!(delivered, 1);
    }

    #[test]
    fn reordered_fragments_reassemble() {
        let mut src = MochaNetEndpoint::new(MochaNetConfig {
            window: 16,
            ..cfg()
        });
        let payload: Vec<u8> = (0..250).map(|i| i as u8).collect(); // 3 frags
        src.send(A, 9, &payload, SendHandle(1));
        let datagrams: Vec<Vec<u8>> = src
            .drain_actions()
            .into_iter()
            .filter_map(|a| match a {
                Action::Transmit { datagram, .. } => Some(datagram),
                _ => None,
            })
            .collect();
        assert_eq!(datagrams.len(), 3);
        let mut dst = MochaNetEndpoint::new(cfg());
        // Deliver 2, 0, 1.
        dst.on_datagram(B, &datagrams[2]);
        dst.on_datagram(B, &datagrams[0]);
        dst.on_datagram(B, &datagrams[1]);
        let delivered: Vec<Vec<u8>> = dst
            .drain_actions()
            .into_iter()
            .filter_map(|a| match a {
                Action::Event(TransportEvent::Delivered { bytes, .. }) => Some(bytes),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![payload]);
    }

    #[test]
    fn retries_exhausted_fails_send_and_peer() {
        let mut ep = MochaNetEndpoint::new(cfg());
        ep.send(B, 1, b"doomed", SendHandle(5));
        ep.drain_actions();
        for _ in 0..cfg().max_retries {
            assert!(ep.on_timer(timer_token(B)));
            ep.drain_actions();
        }
        // One more fire exceeds max_retries.
        assert!(ep.on_timer(timer_token(B)));
        let events: Vec<TransportEvent> = ep
            .drain_actions()
            .into_iter()
            .filter_map(|a| match a {
                Action::Event(e) => Some(e),
                _ => None,
            })
            .collect();
        assert!(events.contains(&TransportEvent::SendFailed {
            to: B,
            handle: SendHandle(5)
        }));
        assert!(events.contains(&TransportEvent::PeerUnreachable { to: B }));
        assert!(ep.is_unreachable(B));

        // A subsequent send probes the peer again with a fresh retry
        // cycle (the path may have healed).
        ep.send(B, 1, b"more", SendHandle(6));
        assert!(!ep.is_unreachable(B), "new send clears the verdict");
        let transmitted = ep
            .drain_actions()
            .into_iter()
            .filter(|a| matches!(a, Action::Transmit { .. }))
            .count();
        assert_eq!(transmitted, 1, "the probe actually goes on the wire");

        // Explicit reset also works.
        ep.reset_peer(B);
        assert!(!ep.is_unreachable(B));
    }

    #[test]
    fn traffic_from_peer_clears_unreachable() {
        let mut ep = MochaNetEndpoint::new(cfg());
        ep.send(B, 1, b"doomed", SendHandle(5));
        ep.drain_actions();
        for _ in 0..=cfg().max_retries {
            ep.on_timer(timer_token(B));
            ep.drain_actions();
        }
        assert!(ep.is_unreachable(B));
        // B comes back and sends us something.
        let mut b = MochaNetEndpoint::new(cfg());
        b.send(A, 1, b"alive", SendHandle(9));
        for a in b.drain_actions() {
            if let Action::Transmit { datagram, .. } = a {
                ep.on_datagram(B, &datagram);
            }
        }
        assert!(!ep.is_unreachable(B));
    }

    #[test]
    fn malformed_datagrams_are_dropped() {
        let mut ep = MochaNetEndpoint::new(cfg());
        ep.on_datagram(B, &[]);
        ep.on_datagram(B, &[PROTO_MOCHANET]);
        ep.on_datagram(B, &[PROTO_MOCHANET, 99]);
        ep.on_datagram(B, &[42, 0, 0]);
        let events = ep
            .drain_actions()
            .into_iter()
            .filter(|a| matches!(a, Action::Event(_)))
            .count();
        assert_eq!(events, 0);
    }

    #[test]
    fn timer_tokens_roundtrip() {
        let t = timer_token(SiteId(42));
        assert_eq!(timer_peer(t), Some(SiteId(42)));
        assert_eq!(timer_peer(0xdead), None);
    }

    #[test]
    fn interleaved_bidirectional_traffic() {
        let mut p = Pair::new();
        p.a.send(B, 1, b"to-b", SendHandle(1));
        p.b.send(A, 2, b"to-a", SendHandle(2));
        p.pump_lossless();
        assert_eq!(p.delivered_to_b(), vec![(1, b"to-b".to_vec())]);
        let delivered_a: Vec<_> = p
            .events_a
            .iter()
            .filter(|e| matches!(e, TransportEvent::Delivered { .. }))
            .collect();
        assert_eq!(delivered_a.len(), 1);
    }

    #[test]
    fn charges_are_emitted_for_data_processing() {
        let mut ep = MochaNetEndpoint::new(cfg());
        ep.send(B, 1, &vec![0u8; 250], SendHandle(1));
        let charged: u64 = ep
            .drain_actions()
            .iter()
            .filter_map(|a| match a {
                Action::Charge(w) => Some(w.user_bytes),
                _ => None,
            })
            .sum();
        // 3 fragments * (payload + overhead) >= 250 + 3 * SEND_OVERHEAD.
        assert!(charged >= 250 + 3 * SEND_OVERHEAD_BYTES);
    }
}

#[cfg(test)]
mod epoch_tests {
    use super::*;
    use crate::action::{Action, SendHandle, TransportEvent};

    const A: SiteId = SiteId(0);
    const B: SiteId = SiteId(1);

    fn deliver_all(src: &mut MochaNetEndpoint, dst: &mut MochaNetEndpoint, from: SiteId) {
        for action in src.drain_actions() {
            if let Action::Transmit { datagram, .. } = action {
                dst.on_datagram(from, &datagram);
            }
        }
    }

    /// A rebooted peer (fresh endpoint, sequence numbers restarting at 0)
    /// must not have its traffic mistaken for duplicates of the old
    /// incarnation.
    #[test]
    fn new_incarnation_resets_receive_state() {
        let cfg = MochaNetConfig::default();
        let mut receiver = MochaNetEndpoint::new(cfg);

        // First incarnation sends two messages.
        let mut old = MochaNetEndpoint::new(cfg);
        old.send(A, 1, b"one", SendHandle(1));
        old.send(A, 1, b"two", SendHandle(2));
        deliver_all(&mut old, &mut receiver, B);
        let delivered = receiver
            .drain_actions()
            .into_iter()
            .filter(|a| matches!(a, Action::Event(TransportEvent::Delivered { .. })))
            .count();
        assert_eq!(delivered, 2);

        // The peer reboots: a brand-new endpoint with seq starting at 0.
        let mut rebooted = MochaNetEndpoint::new(cfg);
        rebooted.send(A, 1, b"after-reboot", SendHandle(1));
        deliver_all(&mut rebooted, &mut receiver, B);
        let delivered: Vec<Vec<u8>> = receiver
            .drain_actions()
            .into_iter()
            .filter_map(|a| match a {
                Action::Event(TransportEvent::Delivered { bytes, .. }) => Some(bytes),
                _ => None,
            })
            .collect();
        assert_eq!(
            delivered,
            vec![b"after-reboot".to_vec()],
            "the new incarnation's first message must be delivered, not treated as a duplicate"
        );
    }

    /// In-flight sends toward the old incarnation fail once the new one is
    /// seen (they can never be acknowledged).
    #[test]
    fn inflight_to_old_incarnation_fails_on_new_epoch() {
        let cfg = MochaNetConfig::default();
        let mut local = MochaNetEndpoint::new(cfg);
        // Learn the peer's first incarnation.
        let mut peer1 = MochaNetEndpoint::new(cfg);
        peer1.send(A, 1, b"hello", SendHandle(1));
        deliver_all(&mut peer1, &mut local, B);
        local.drain_actions();
        // We send something that the (about-to-die) peer never acks.
        local.send(B, 1, b"doomed", SendHandle(7));
        local.drain_actions();
        // The peer reboots and sends from its new incarnation.
        let mut peer2 = MochaNetEndpoint::new(cfg);
        peer2.send(A, 1, b"i am back", SendHandle(1));
        deliver_all(&mut peer2, &mut local, B);
        let events: Vec<TransportEvent> = local
            .drain_actions()
            .into_iter()
            .filter_map(|a| match a {
                Action::Event(e) => Some(e),
                _ => None,
            })
            .collect();
        assert!(
            events.contains(&TransportEvent::SendFailed {
                to: B,
                handle: SendHandle(7)
            }),
            "{events:?}"
        );
        assert!(events.iter().any(
            |e| matches!(e, TransportEvent::Delivered { bytes, .. } if bytes == b"i am back")
        ));
    }
}
